"""Ablation — flow-level max-min bandwidth sharing vs server-bottleneck-only.

DESIGN.md calls out the max-min fair-sharing network model as a design
choice.  This ablation quantifies what the receiver-side constraints add: on
a platform whose file server has more uplink capacity than one worker NIC,
ignoring the workers' downlinks (the "server-bottleneck-only" model) predicts
unrealistically fast distribution, while the full model caps each worker at
its own link speed.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.reporting import format_table, shape_check
from repro.bench.transfer import run_ftp_alone


def test_ablation_bandwidth_model(benchmark, scale):
    # 4 workers behind 125 MB/s NICs, server uplink 1 GB/s: the server is NOT
    # the bottleneck, so ignoring the receiver links matters.
    size_mb, n_nodes = 100.0, 4

    def experiment():
        full = run_ftp_alone(size_mb, n_nodes,
                             server_link_mbps=1000.0, node_link_mbps=125.0)
        # "Server-bottleneck-only": give workers effectively unlimited NICs so
        # only the server-side constraint remains.
        bottleneck_only = run_ftp_alone(size_mb, n_nodes,
                                        server_link_mbps=1000.0,
                                        node_link_mbps=1e6)
        return full, bottleneck_only

    full, bottleneck_only = run_once(benchmark, experiment)
    emit("Ablation — bandwidth model", format_table([
        {"model": "max-min (full)", "completion_s": full["completion_s"]},
        {"model": "server-bottleneck-only",
         "completion_s": bottleneck_only["completion_s"]},
    ]))

    checks = shape_check("ablation: bandwidth model")
    checks.is_true(
        "ignoring receiver links underestimates the completion time",
        bottleneck_only["completion_s"] < full["completion_s"])
    checks.within(
        "full model is limited by the 125 MB/s worker NIC (100 MB => ~0.87 s)",
        full["completion_s"], 0.75, 1.2)
    checks.within(
        "bottleneck-only model shares the 1 GB/s server uplink "
        "(4 x 100 MB => ~0.4 s + protocol setup)",
        bottleneck_only["completion_s"], 0.35, 0.65)
    checks.ratio_at_least(
        "the difference is large enough to matter",
        full["completion_s"] / bottleneck_only["completion_s"], 1.4)
    checks.verify()
