"""Figure 5 — BLAST master/worker total execution time vs number of workers.

Paper: with the 2.68 GB Genebase, distributing the shared data over FTP makes
the total time grow steeply with the worker count (the server uplink is the
bottleneck), while BitTorrent keeps it nearly flat; FTP is only competitive
for small worker counts (10-20).
"""

from benchmarks.conftest import emit, run_once
from repro.bench.blast import run_fig5
from repro.bench.reporting import format_table, shape_check


def test_fig5_blast_scaling(benchmark, scale):
    workers = scale["fig5_workers"]
    rows = run_once(benchmark, run_fig5, worker_counts=workers,
                    protocols=("ftp", "bittorrent"))

    emit("Figure 5 — BLAST total execution time (s)",
         format_table([{k: r[k] for k in
                        ("protocol", "n_workers", "makespan_s", "tasks_executed",
                         "results_collected")} for r in rows]))

    def makespan(protocol, n):
        for row in rows:
            if row["protocol"] == protocol and row["n_workers"] == n:
                return row["makespan_s"]
        raise KeyError((protocol, n))

    few, many = min(workers), max(workers)

    checks = shape_check("figure 5")
    checks.is_true("every submitted task produced a collected result",
                   all(r["results_collected"] == r["n_tasks"] for r in rows))
    checks.ratio_at_least(
        "FTP total time grows steeply with the worker count",
        makespan("ftp", many) / makespan("ftp", few), 2.0)
    checks.ratio_at_most(
        "BitTorrent total time stays nearly flat",
        makespan("bittorrent", many) / makespan("bittorrent", few), 1.6)
    checks.is_true(
        f"BitTorrent wins at {many} workers",
        makespan("bittorrent", many) < makespan("ftp", many))
    checks.ratio_at_most(
        f"FTP is competitive at {few} workers (paper: FTP better at 10-20)",
        makespan("ftp", few) / makespan("bittorrent", few), 1.2)
    checks.verify()
