"""Elastic-fabric benchmarks: zero-loss live rebalancing and the autoscaler.

Beyond the paper: PR 5 sharded the Data Catalog and Data Scheduler; this
layer makes the shard count a *runtime* knob.  These tests pin the two
claims the elasticity is for — a live split+merge under client traffic
loses and duplicates nothing while moving only ~the consistent-hashing
minimum of keys, and the SLO-driven autoscaler cuts the violation-seconds
integral of a diurnal day by ≥3× versus a fixed deployment — and record
both as BENCH trajectory points.

Both scenarios are pure simulation, so every asserted number is
deterministic.  Set ``REPRO_SCALE_QUICK=1`` for the reduced rebalance size
(the autoscale day is already compressed to 120 s and runs as-is).
"""

from __future__ import annotations

from repro.bench.elastic import run_fabric_autoscale, run_fabric_rebalance
from repro.bench.reporting import format_table, shape_check

from benchmarks.conftest import emit
from benchmarks.test_scale_grid import quick_scale, record_bench_point


class TestFabricRebalance:
    def test_live_split_and_merge_lose_nothing(self):
        """One forced split and one forced merge under sustained traffic.

        Clients publish unique key/value pairs (reading each back),
        synchronise periodically, and never stop while the coordinator
        reshapes the ring twice.  The ledger plus the post-run raw audit
        must show zero lost and zero duplicated pairs, the scheduler must
        keep every datum on exactly one shard, and each migration must
        move no more than 1.25× the ``K·1/max(S,S')`` minimum.
        """
        if quick_scale():
            metrics = run_fabric_rebalance(n_hosts=6, n_data=24,
                                           run_for_s=12.0, split_at=3.0,
                                           merge_at=8.0)
        else:
            metrics = run_fabric_rebalance()      # 8 hosts, 2→3→2 shards
        transitions = metrics["transitions"]
        emit("Fabric rebalance (%d hosts, %d→%d→%d shards)"
             % (metrics["n_hosts"], metrics["shards_before"],
                metrics["shards_before"] + 1, metrics["shards_after"]),
             format_table([
                 {k: t[k] for k in ("kind", "keys_moved", "minimum_moves",
                                    "move_ratio", "dirty_rounds",
                                    "duration_s")}
                 for t in transitions]))

        checks = shape_check("fabric rebalance")
        checks.is_true("split then merge both completed",
                       [t["kind"] for t in transitions]
                       == ["split", "merge"])
        checks.is_true("ring returned to its original shape",
                       metrics["shards_after"] == metrics["shards_before"])
        checks.is_true("traffic actually crossed the migrations",
                       metrics["completed_publishes"] > 0
                       and metrics["client_syncs"] > 0)
        checks.is_true("zero lost pairs", metrics["lost_pairs"] == 0)
        checks.is_true("zero duplicated pairs",
                       metrics["duplicated_pairs"] == 0)
        checks.is_true("zero misplaced pairs",
                       metrics["misplaced_pairs"] == 0)
        checks.is_true("every read-back observed its own write",
                       metrics["readback_misses"] == 0)
        checks.is_true("no request lost", metrics["lost_requests"] == 0)
        checks.is_true("no client saw an error",
                       metrics["client_errors"] == 0)
        checks.is_true("scheduler entries on exactly one shard each",
                       metrics["scheduler_multi_homed"] == 0)
        for t in transitions:
            checks.is_true(
                "%s moved ≤1.25× the consistent-hash minimum" % t["kind"],
                t["keys_moved"] <= t["minimum_moves"] * 1.25)
        checks.verify()

        point_id = ("fabric-rebalance-quick" if quick_scale()
                    else "fabric-rebalance")
        record_bench_point(point_id, {
            **{k: metrics[k] for k in (
                "scenario", "n_hosts", "n_data", "shards_before",
                "shards_after", "ring_vnodes", "publishes",
                "completed_publishes", "client_syncs", "lost_pairs",
                "duplicated_pairs", "misplaced_pairs", "lost_requests",
                "scheduler_multi_homed")},
            "split_keys_moved": transitions[0]["keys_moved"],
            "split_move_ratio": transitions[0]["move_ratio"],
            "merge_keys_moved": transitions[1]["keys_moved"],
            "merge_move_ratio": transitions[1]["move_ratio"],
        })


class TestFabricAutoscale:
    def test_autoscaler_cuts_violation_seconds_3x(self):
        """The compressed diurnal day, fixed single shard vs autoscaled.

        The midday hump exceeds one shard's database capacity, so the
        fixed deployment queues and violates the p99 target for most of
        the afternoon; the autoscaler splits live through the hump (and
        the flash spike on top of it), then merges back on the ebb.  The
        violation-seconds integral must improve ≥3×, and the decision
        trace must actually contain live splits *and* merges — elasticity,
        not a one-way ratchet.
        """
        metrics = run_fabric_autoscale()
        fixed = metrics["fixed"]
        autoscaled = metrics["autoscaled"]
        emit("Fabric autoscale (%.0f→%.0f rps day, %.0f rps/shard)"
             % (metrics["base_rps"], metrics["peak_rps"],
                metrics["shard_capacity_rps"]),
             format_table([
                 {"deployment": "fixed (1 shard)",
                  **{k: fixed[k] for k in (
                      "violation_seconds", "worst_p99_ms", "completed",
                      "final_shards")}},
                 {"deployment": "autoscaled (≤%d)" % metrics["max_shards"],
                  **{k: autoscaled[k] for k in (
                      "violation_seconds", "worst_p99_ms", "completed",
                      "final_shards")}},
             ]))

        checks = shape_check("fabric autoscale")
        checks.is_true("identical trace replayed on both deployments",
                       fixed["arrivals"] == autoscaled["arrivals"])
        checks.is_true("every request completed on both",
                       fixed["errors"] == 0 and autoscaled["errors"] == 0
                       and fixed["completed"] == fixed["arrivals"]
                       and autoscaled["completed"]
                       == autoscaled["arrivals"])
        checks.is_true("the day genuinely overloads one shard",
                       metrics["peak_rps"] > metrics["shard_capacity_rps"]
                       and fixed["violation_seconds"] > 0)
        checks.is_true("autoscaler both split and merged",
                       autoscaled["splits"] > 0
                       and autoscaled["merges"] > 0)
        checks.is_true("fabric scaled back down on the ebb",
                       autoscaled["final_shards"] == 1)
        checks.is_true("no request lost on either deployment",
                       fixed["lost_requests"] == 0
                       and autoscaled["lost_requests"] == 0)
        checks.ratio_at_least("violation-seconds improvement vs fixed",
                              metrics["violation_improvement_x"], 3.0)
        checks.verify()

        record_bench_point("fabric-autoscale", {
            **{k: metrics[k] for k in (
                "scenario", "base_rps", "peak_rps", "period_s", "horizon_s",
                "target_p99_ms", "max_shards", "shard_capacity_rps",
                "violation_improvement_x")},
            "fixed_violation_seconds": fixed["violation_seconds"],
            "autoscaled_violation_seconds": autoscaled["violation_seconds"],
            "fixed_worst_p99_ms": fixed["worst_p99_ms"],
            "autoscaled_worst_p99_ms": autoscaled["worst_p99_ms"],
            "splits": autoscaled["splits"],
            "merges": autoscaled["merges"],
        })
