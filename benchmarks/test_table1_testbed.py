"""Table 1 — hardware configuration of the Grid testbed.

Sanity benchmark: the topology model reproduces the four clusters of Table 1
(gdx, grelon, grillon, sagittaire) with the paper's CPU counts, locations and
memory; building the 400-node testbed is timed.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.micro import table1_testbed
from repro.bench.reporting import format_table, shape_check
from repro.net.topology import grid5000_testbed
from repro.sim.kernel import Environment


def test_table1_testbed(benchmark, scale):
    def experiment():
        rows = table1_testbed()
        env = Environment()
        topo = grid5000_testbed(env, total_nodes=scale["fig6_nodes"])
        return rows, topo

    rows, topo = run_once(benchmark, experiment)
    emit("Table 1 — Grid testbed configuration", format_table(rows))

    checks = shape_check("table 1")
    by_cluster = {r["cluster"]: r for r in rows}
    checks.is_true("four clusters", len(rows) == 4)
    checks.is_true("gdx is the largest cluster",
                   by_cluster["gdx"]["cpus"] == max(r["cpus"] for r in rows))
    checks.is_true("total CPUs match the paper (312+120+47+65)",
                   sum(r["cpus"] for r in rows) == 544)
    checks.is_true("every cluster provides 2 GB nodes",
                   all(r["memory_mb"] == 2048 for r in rows))
    checks.is_true("topology builds the requested node count",
                   abs(len(topo.worker_hosts) - scale["fig6_nodes"]) <= 4)
    checks.is_true("four clusters materialised in the topology",
                   len({h.cluster for h in topo.worker_hosts}) == 4)
    checks.verify()
