"""Federation benchmarks: cross-domain flash crowd, WAN healing, sovereignty.

Beyond the paper: `repro.federation` peers several sovereign BitDew
domains over shared-capacity WAN links.  These tests pin the three claims
the layer makes — scheduled replication amortises the WAN so a federated
flash crowd beats per-worker remote fetches by ≥2×; a partition in any
replication phase heals exactly-once; trust + visibility policy places
copies exactly where it should — and record the flash-crowd throughput
ratio as a BENCH trajectory point.

Everything is pure simulation: every asserted number is deterministic.
Set ``REPRO_SCALE_QUICK=1`` to run reduced sizes (the CI smoke job).
"""

from __future__ import annotations

from repro.bench.federation import (run_federation_flash_crowd,
                                    run_federation_partition_heal,
                                    run_federation_sovereignty)
from repro.bench.reporting import format_table, shape_check

from benchmarks.conftest import emit
from benchmarks.test_scale_grid import quick_scale, record_bench_point


class TestFederationFlashCrowd:
    def test_wan_replication_beats_per_worker_fetches(self):
        """Cross-domain flash crowd: federation on vs single-domain baseline.

        Same domains, same WAN, same staggered crowd; only the mechanism
        differs.  Federated: scheduled replication lands ONE copy per peer
        domain and the crowd pulls from its local repository.  Baseline:
        every remote worker fetches through the home gateway, serialising
        on the shared WAN pipes.  The makespan ratio is the BENCH point.
        """
        if quick_scale():
            metrics = run_federation_flash_crowd(workers_per_domain=6)
        else:
            metrics = run_federation_flash_crowd()
        federated = metrics["federated"]
        baseline = metrics["baseline"]
        emit("Federation flash crowd (%d domains x %d workers)"
             % (metrics["n_domains"], metrics["workers_per_domain"]),
             format_table([
                 {"arm": "federated", "makespan_s": federated["makespan_s"],
                  "wan_kb": federated["wan_kb"]},
                 {"arm": "baseline", "makespan_s": baseline["makespan_s"],
                  "wan_kb": baseline["wan_kb"]},
             ]))

        checks = shape_check("federation flash crowd")
        checks.is_true("every worker served (federated)",
                       federated["completed_workers"] == metrics["n_workers"])
        checks.is_true("every worker served (baseline)",
                       baseline["completed_workers"] == metrics["n_workers"])
        checks.is_true(
            "replication sent one WAN copy per peer domain",
            federated["replication"]["exported_copies"]
            == metrics["n_domains"] - 1)
        checks.is_true("federation moved fewer WAN bytes",
                       federated["wan_kb"] < baseline["wan_kb"])
        checks.is_true("no sovereignty leak in either arm",
                       federated["leaks"] == 0 and baseline["leaks"] == 0)
        checks.ratio_at_least(
            "federated crowd throughput vs per-worker WAN fetches",
            metrics["throughput_x"], 2.0)
        checks.verify()

        point_id = ("federation-flash-crowd-quick" if quick_scale()
                    else "federation-flash-crowd")
        record_bench_point(point_id, {
            "scenario": "federation-flash-crowd",
            "n_domains": metrics["n_domains"],
            "workers_per_domain": metrics["workers_per_domain"],
            "size_mb": metrics["size_mb"],
            "wan_bandwidth_mbps": metrics["wan_bandwidth_mbps"],
            "federated_makespan_s": federated["makespan_s"],
            "baseline_makespan_s": baseline["makespan_s"],
            "federated_wan_kb": federated["wan_kb"],
            "baseline_wan_kb": baseline["wan_kb"],
            "throughput_x": metrics["throughput_x"],
        })


class TestFederationPartitionHeal:
    def test_partition_heals_exactly_once(self):
        """The WAN dies mid-replication and heals; catch-up is exact."""
        metrics = run_federation_partition_heal()
        emit("Federation partition/heal", format_table([
            {k: metrics[k] for k in (
                "imported_before_partition", "copies_failed",
                "completed_at_s", "catch_up_s", "lost", "duplicated",
                "leaks")}
        ]))

        checks = shape_check("federation partition heal")
        checks.is_true("the partition actually bit",
                       metrics["copies_failed"] > 0)
        checks.is_true("replication completed after healing",
                       metrics["completed_at_s"] is not None)
        checks.is_true("no datum lost", metrics["lost"] == 0)
        checks.is_true("no datum double-imported",
                       metrics["duplicated"] == 0
                       and metrics["imports_accepted"] == metrics["n_data"])
        checks.is_true("pinned data never crossed the WAN",
                       metrics["exports_blocked"] == metrics["n_private"])
        checks.is_true("no sovereignty leak", metrics["leaks"] == 0)
        checks.verify()


class TestFederationSovereignty:
    def test_policy_constrained_placement(self):
        """Allowlist trust + visibility yields exactly the allowed copies."""
        metrics = run_federation_sovereignty()
        emit("Federation sovereignty", format_table([
            {k: metrics[k] for k in (
                "beta_search_rows", "gamma_search_rows", "exported_copies",
                "exports_blocked", "leaks")}
        ]))

        checks = shape_check("federation sovereignty")
        checks.is_true("allowlisted peer sees exactly the public data",
                       metrics["beta_search_rows"] == metrics["n_public"])
        checks.is_true("excluded peer sees nothing",
                       metrics["gamma_search_rows"] == 0)
        checks.is_true("public data replicated to the allowlisted peer only",
                       metrics["beta_holdings"]
                       == {"private": 0, "public": metrics["n_public"],
                           "unlisted": 0})
        checks.is_true("excluded peer holds nothing",
                       all(count == 0
                           for count in metrics["gamma_holdings"].values()))
        checks.is_true("unlisted fetchable by reference for the allowlisted "
                       "peer only",
                       metrics["beta_fetch_unlisted_ok"] is True
                       and metrics["gamma_fetch_unlisted_ok"] is False)
        checks.is_true("private denied to everyone",
                       metrics["beta_fetch_private_ok"] is False
                       and metrics["gamma_fetch_private_ok"] is False)
        checks.is_true("no sovereignty leak", metrics["leaks"] == 0)
        checks.verify()
