"""Figure 3b — overhead of BitDew+FTP over FTP alone, in percent.

Paper: the relative overhead is strongest for small files distributed to a
small number of nodes (~16-18 % at 10 MB / 10 nodes) — dominated by the
DC/DR/DT round trips and the completion-detection granularity — and drops to
a few percent for large transfers, where only the monitoring traffic's
bandwidth share remains.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.reporting import format_table, shape_check
from repro.bench.transfer import run_fig3bc


def test_fig3b_overhead_percent(benchmark, scale):
    sizes = scale["fig3_sizes"]
    nodes = scale["fig3_nodes"]
    rows = run_once(benchmark, run_fig3bc, sizes_mb=sizes, node_counts=nodes)

    emit("Figure 3b — BitDew overhead over FTP alone (percent)",
         format_table([{k: r[k] for k in
                        ("size_mb", "n_nodes", "ftp_alone_s", "bitdew_ftp_s",
                         "overhead_pct")} for r in rows]))

    def overhead_pct(size, n):
        for row in rows:
            if row["size_mb"] == size and row["n_nodes"] == n:
                return row["overhead_pct"]
        raise KeyError((size, n))

    small, big = min(sizes), max(sizes)
    few, many = min(nodes), max(nodes)

    checks = shape_check("figure 3b")
    checks.is_true("overhead is non-negative everywhere",
                   all(r["overhead_pct"] >= -1e-6 for r in rows))
    checks.within(
        f"overhead for the small file on few nodes is in the paper's band",
        overhead_pct(small, few), 5.0, 30.0)
    checks.is_true(
        "relative overhead shrinks as the file grows",
        overhead_pct(big, few) < overhead_pct(small, few))
    checks.ratio_at_most(
        "large transfers keep the overhead below ~10 %",
        overhead_pct(big, many), 10.0)
    checks.verify()
