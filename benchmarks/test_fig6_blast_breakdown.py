"""Figure 6 — breakdown of the BLAST execution time per cluster.

Paper: on 400 nodes spread over the four Grid'5000 clusters, most of the
total time is spent transferring data; switching the shared-file distribution
from FTP to BitTorrent shrinks the transfer component by roughly an order of
magnitude on every cluster, while unzip and execution times are unchanged.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.blast import run_fig6
from repro.bench.reporting import format_table, shape_check


def test_fig6_blast_breakdown(benchmark, scale):
    rows = run_once(benchmark, run_fig6, total_nodes=scale["fig6_nodes"],
                    protocols=("ftp", "bittorrent"))

    emit("Figure 6 — per-cluster breakdown (s): transfer / unzip / execution",
         format_table(rows,
                      columns=["protocol", "cluster", "transfer_s", "unzip_s",
                               "execution_s", "tasks"]))

    def mean_row(protocol):
        for row in rows:
            if row["protocol"] == protocol and row["cluster"] == "mean":
                return row
        raise KeyError(protocol)

    ftp_mean = mean_row("ftp")
    bt_mean = mean_row("bittorrent")

    checks = shape_check("figure 6")
    clusters = {r["cluster"] for r in rows if r["cluster"] != "mean"}
    checks.is_true("all four clusters are represented",
                   clusters == {"gdx", "grelon", "grillon", "sagittaire"})
    checks.is_true("transfer dominates the FTP breakdown",
                   ftp_mean["transfer_s"] > ftp_mean["execution_s"])
    checks.ratio_at_least(
        "BitTorrent shrinks mean transfer time by a large factor "
        "(paper: ~10x at 400 nodes)",
        ftp_mean["transfer_s"] / max(bt_mean["transfer_s"], 1e-9),
        4.0 if not scale["paper_scale"] else 7.0)
    checks.ratio_at_most(
        "execution time is essentially protocol-independent",
        abs(ftp_mean["execution_s"] - bt_mean["execution_s"])
        / max(ftp_mean["execution_s"], 1e-9),
        0.15)
    checks.ratio_at_most(
        "unzip time is essentially protocol-independent",
        abs(ftp_mean["unzip_s"] - bt_mean["unzip_s"])
        / max(ftp_mean["unzip_s"], 1e-9),
        0.15)
    for protocol in ("ftp", "bittorrent"):
        per_cluster = {r["cluster"]: r for r in rows
                       if r["protocol"] == protocol and r["cluster"] != "mean"}
        if {"grelon", "sagittaire"} <= set(per_cluster):
            checks.is_true(
                f"{protocol}: slower CPUs (grelon) compute longer than faster "
                "ones (sagittaire)",
                per_cluster["grelon"]["execution_s"]
                > per_cluster["sagittaire"]["execution_s"])
    checks.verify()
