"""Table 3 — publishing (dataID, hostID) pairs: DDC (DHT) vs centralized DC.

Paper: 50 nodes publish 500 pairs each (25 000 pairs total); indexing them in
the DHT-backed Distributed Data Catalog takes ~108 s against ~7 s through the
centralized Data Catalog — the DDC is roughly 15x slower, which is the price
of decentralisation (and why the design keeps permanent copies in the DC and
only replica locations in the DDC, §3.4.1).
"""

from benchmarks.conftest import emit, run_once
from repro.bench.micro import run_table3
from repro.bench.reporting import format_table, shape_check


def test_table3_catalog_publish(benchmark, scale):
    result = run_once(benchmark, run_table3,
                      n_nodes=scale["table3_nodes"],
                      pairs_per_node=scale["table3_pairs"])

    emit("Table 3 — catalog publish performance", format_table([
        {"catalog": "DDC (DHT)", "total_s": result["ddc_total_s"],
         "pairs_per_s": result["ddc_pairs_per_s"]},
        {"catalog": "DC (centralized)", "total_s": result["dc_total_s"],
         "pairs_per_s": result["dc_pairs_per_s"]},
        {"catalog": "slowdown (DDC/DC)", "total_s": result["slowdown_ratio"],
         "pairs_per_s": float("nan")},
    ]))

    checks = shape_check("table 3")
    checks.is_true("DDC is slower than DC",
                   result["ddc_total_s"] > result["dc_total_s"])
    checks.within("DDC/DC slowdown is roughly an order of magnitude "
                  "(paper: ~15x)", result["slowdown_ratio"], 5.0, 45.0)
    checks.is_true("DC sustains thousands of pairs per second",
                   result["dc_pairs_per_s"] > 1000.0)
    if scale["paper_scale"]:
        checks.within("DDC total time close to the paper's ~109 s",
                      result["ddc_total_s"], 60.0, 180.0)
        checks.within("DC total time close to the paper's ~7 s",
                      result["dc_total_s"], 3.0, 15.0)
    checks.verify()
