"""Service-fabric benchmarks: sharded throughput and failover recovery.

Beyond the paper: the fabric (`repro.services.fabric`) shards the Data
Catalog and Data Scheduler over N service hosts.  These tests pin the two
properties the deployment is for — aggregate service throughput scaling
with the shard count, and client-visible recovery from a service-host
crash within one heartbeat timeout — and record both as BENCH trajectory
points.

Both scenarios are pure simulation, so every asserted number is
deterministic (no CPU-count arming needed); the ≥2× throughput gate arms
on the sharded configuration itself (≥4 shards), mirroring how
``sweep-parallel`` arms its wall-clock gate on the hardware.

Set ``REPRO_SCALE_QUICK=1`` to run reduced sizes (used by the CI smoke job).
"""

from __future__ import annotations

from repro.bench.fabric import run_fabric_failover, run_fabric_scale
from repro.bench.reporting import format_table, shape_check

from benchmarks.conftest import emit
from benchmarks.test_scale_grid import quick_scale, record_bench_point


class TestFabricScale:
    def test_sharded_storm_throughput(self):
        """Flash-crowd service storm: S-shard fabric vs centralized container.

        The request stream is identical (same hosts, same catalog traffic,
        same Θ); only the deployment differs.  At ≥4 shards the sharded
        catalog+scheduler must sustain at least twice the centralized
        container's throughput — the makespan ratio on the same storm.
        """
        if quick_scale():
            metrics = run_fabric_scale(n_hosts=30, n_data=200, rounds=2,
                                       pairs_per_round=8)
        else:
            metrics = run_fabric_scale()          # 100 hosts, 4 shards
        central = metrics["centralized"]
        sharded = metrics["sharded"]
        emit("Fabric scale (%d hosts, %d shards)"
             % (metrics["n_hosts"], metrics["shards"]),
             format_table([
                 {"deployment": "centralized", **{k: central[k] for k in (
                     "makespan_s", "throughput_rps", "serviced_requests")}},
                 {"deployment": "%d shards" % metrics["shards"],
                  **{k: sharded[k] for k in (
                      "makespan_s", "throughput_rps", "serviced_requests")}},
             ]))

        checks = shape_check("fabric scale")
        # Identical client workload: same catalog traffic and client syncs;
        # the sync storm hits every scheduler shard (scatter), hence S× the
        # per-shard sync statements.
        checks.is_true(
            "same catalog load",
            sharded["catalog_requests"] == central["catalog_requests"])
        checks.is_true(
            "same client sync count",
            sharded["client_syncs"] == central["client_syncs"])
        checks.is_true(
            "sync storm scatters over every shard",
            sharded["shard_sync_count"]
            == central["shard_sync_count"] * metrics["shards"])
        checks.is_true("every storm round completed",
                       sharded["makespan_s"] > 0
                       and central["makespan_s"] > 0)
        if metrics["shards"] >= 4:
            checks.ratio_at_least(
                "sharded throughput vs centralized container",
                metrics["throughput_x"], 2.0)
        checks.verify()

        point_id = ("fabric-scale-quick" if quick_scale() else "fabric-scale")
        record_bench_point(point_id, {
            "scenario": "fabric-scale",
            "n_hosts": metrics["n_hosts"],
            "n_data": metrics["n_data"],
            "rounds": metrics["rounds"],
            "pairs_per_round": metrics["pairs_per_round"],
            "shards": metrics["shards"],
            "centralized_makespan_s": central["makespan_s"],
            "sharded_makespan_s": sharded["makespan_s"],
            "centralized_throughput_rps": central["throughput_rps"],
            "sharded_throughput_rps": sharded["throughput_rps"],
            "throughput_x": metrics["throughput_x"],
        })


class TestFabricFailover:
    def test_clients_resume_within_one_heartbeat_timeout(self):
        """A service-host crash reroutes clients to a live replica.

        The primary service host crashes mid-run; requests to shards whose
        primary replica lived there retry under the failover policy until
        the fabric's host detector declares the crash, then land on the
        replica.  Every client must resume within one heartbeat timeout of
        the crash, and no request may be lost.
        """
        metrics = run_fabric_failover()
        emit("Fabric failover", format_table([
            {k: metrics[k] for k in (
                "host_timeout_s", "detect_s", "recovery_s", "reroutes",
                "failover_attempts", "failed_syncs", "lost_requests")}
        ]))

        checks = shape_check("fabric failover")
        checks.is_true("all data placed before the crash",
                       metrics["placed_before_crash"] == metrics["n_data"])
        checks.is_true("every client resumed",
                       metrics["hosts_recovered"] == metrics["n_hosts"])
        checks.is_true(
            "clients resume within one heartbeat timeout",
            metrics["recovery_s"] is not None
            and metrics["recovery_s"] <= metrics["host_timeout_s"])
        checks.is_true(
            "detection itself is heartbeat-driven (not instantaneous)",
            metrics["detect_s"] is not None and metrics["detect_s"] > 0)
        checks.is_true("failover bridged the detection window",
                       metrics["failover_attempts"] > 0)
        checks.is_true("requests rerouted to a live replica",
                       metrics["reroutes"] > 0)
        checks.is_true("no request lost", metrics["lost_requests"] == 0)
        checks.is_true("no synchronisation failed",
                       metrics["failed_syncs"] == 0)
        checks.verify()

        record_bench_point("fabric-failover", {
            k: metrics[k] for k in (
                "scenario", "n_hosts", "n_data", "shards", "service_hosts",
                "replicas", "host_timeout_s", "detect_s", "recovery_s",
                "total_syncs", "ok_syncs", "failed_syncs", "lost_requests",
                "failover_attempts", "reroutes")
        })
