"""Table 2 — data slot creation rate (thousands of creations per second).

Paper values (thousands of dc/sec):

=============  ==============  ===========  ==============  ===========
channel        mysql/no-dbcp   mysql/dbcp   hsqldb/no-dbcp  hsqldb/dbcp
=============  ==============  ===========  ==============  ===========
local          0.25            1.9          3.2             4.3
RMI local      0.21            1.5          2.0             2.8
RMI remote     0.22            1.3          1.7             2.1
=============  ==============  ===========  ==============  ===========

The shape checks assert the orderings the paper draws conclusions from: the
embedded engine beats the networked one, connection pooling recovers most of
the gap, the RMI hop costs throughput, and a single remote pooled service
still sustains about two thousand creations per second.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.micro import run_table2
from repro.bench.reporting import format_table, shape_check


def test_table2_data_creation(benchmark, scale):
    table = run_once(benchmark, run_table2, n_creations=scale["table2_creations"])

    rows = []
    for channel, cells in table.items():
        row = {"channel": channel}
        row.update({k: round(v, 2) for k, v in cells.items()})
        rows.append(row)
    emit("Table 2 — data creations/sec (thousands)", format_table(rows))

    checks = shape_check("table 2")
    for channel, cells in table.items():
        checks.is_true(
            f"{channel}: hsqldb/dbcp fastest",
            cells["hsqldb/dbcp"] == max(cells.values()))
        checks.is_true(
            f"{channel}: mysql/no-dbcp slowest",
            cells["mysql/no-dbcp"] == min(cells.values()))
        checks.ratio_at_least(
            f"{channel}: pooling speeds MySQL up",
            cells["mysql/dbcp"] / cells["mysql/no-dbcp"], 3.0)
    local = table["local"]
    remote = table["rmi remote"]
    checks.is_true("RMI remote slower than local (hsqldb/dbcp)",
                   remote["hsqldb/dbcp"] < local["hsqldb/dbcp"])
    checks.within("remote pooled embedded rate ~2k dc/sec",
                  remote["hsqldb/dbcp"], 1.5, 3.0)
    checks.within("local pooled embedded rate ~4.3k dc/sec",
                  local["hsqldb/dbcp"], 3.0, 6.0)
    checks.within("local MySQL without pool ~0.25k dc/sec",
                  local["mysql/no-dbcp"], 0.15, 0.4)
    checks.ratio_at_least("embedded vs networked gain (paper: ~61% faster)",
                          local["hsqldb/dbcp"] / local["mysql/dbcp"], 1.3)
    checks.verify()
