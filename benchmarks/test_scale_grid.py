"""Scaling benchmark: sync storms and the 1000-host × 5000-datum grid.

This is not a figure from the paper — it is the repo's first *trajectory*
benchmark: it pins the asymptotic behaviour of the refactored hot paths
(coalesced incremental bandwidth allocation, fully indexed Data Scheduler)
at a scale the paper never reached, and records the measured numbers in
``BENCH.json`` so later PRs can track the curve.

Set ``REPRO_SCALE_QUICK=1`` to run reduced sizes (used by the CI smoke job).
"""

from __future__ import annotations

import json
import os

from repro.bench.reporting import format_table, shape_check
from repro.bench.scale import (
    run_completion_curve,
    run_scale_grid,
    run_scale_grid_100k,
    run_scale_grid_300k,
    run_sync_storm,
)
from repro.bench.sweep import run_sweep_parallel
from repro.services.heartbeat import FailureDetector
from repro.sim.kernel import Environment

from benchmarks.conftest import emit

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH.json")


def quick_scale() -> bool:
    return os.environ.get("REPRO_SCALE_QUICK", "0") not in ("0", "", "false")


def record_bench_point(point_id: str, metrics: dict) -> None:
    """Append/replace one trajectory point in the repo-level BENCH.json."""
    path = os.path.abspath(BENCH_PATH)
    doc = {"points": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):  # pragma: no cover - corrupted file
            doc = {"points": []}
    points = [p for p in doc.get("points", []) if p.get("id") != point_id]
    points.append({"id": point_id, **metrics})
    doc["points"] = points
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


class TestSyncStormAllocator:
    def test_storm_speedup_and_equivalence(self):
        """The 500-worker sync storm: same simulated results, ≥5× less wall.

        The dense, per-event allocator is exactly the seed implementation;
        the coalesced incremental allocator must reproduce its completion
        times bit-for-bit while doing a small, bounded number of allocation
        passes instead of one global recompute per flow event.
        """
        n_workers = 100 if quick_scale() else 500
        rounds = 2
        dense = run_sync_storm(n_workers=n_workers, rounds=rounds,
                               allocator="dense", coalesce=False)
        incremental = run_sync_storm(n_workers=n_workers, rounds=rounds,
                                     allocator="incremental", coalesce=True)

        # Determinism: the refactor must not change observable behaviour.
        assert incremental["end_times"] == dense["end_times"]
        assert incremental["completed_flows"] == dense["completed_flows"]

        speedup = dense["wall_s"] / max(incremental["wall_s"], 1e-9)
        checks = shape_check("sync-storm allocators")
        # One recompute request per flow event either way...
        checks.is_true(
            "both allocators saw the same storm",
            incremental["recompute_requests"] == dense["recompute_requests"])
        # ...but coalescing settles each timestamp once: a handful of passes
        # per round instead of one global recompute per flow event.
        checks.is_true(
            "coalescing bounds allocation passes",
            incremental["allocation_passes"] <= 4 * rounds + 2)
        # The deterministic proxy for the speedup: the dense path runs one
        # global recompute per flow event.
        checks.ratio_at_least(
            "allocation passes eliminated",
            dense["allocation_passes"] / incremental["allocation_passes"], 5.0)
        if not quick_scale():
            # Wall-clock is only asserted at full scale, where the dense
            # baseline runs ~1 s and the ratio (~75×) dwarfs timer noise;
            # quick CI runs rely on the deterministic counters above.
            checks.ratio_at_least("wall-clock speedup vs seed allocator",
                                  speedup, 5.0)
        emit("Sync storm (%d workers, %d rounds)" % (n_workers, rounds),
             format_table([
                 {"allocator": d["allocator"], "coalesce": d["coalesce"],
                  "wall_s": d["wall_s"],
                  "allocation_passes": d["allocation_passes"],
                  "sim_completion_s": d["sim_completion_s"]}
                 for d in (dense, incremental)]))
        checks.verify()

        record_bench_point("sync-storm-%d" % n_workers, {
            "scenario": "sync-storm",
            "n_workers": n_workers,
            "rounds": rounds,
            "dense_wall_s": dense["wall_s"],
            "incremental_wall_s": incremental["wall_s"],
            "speedup": speedup,
            "dense_allocation_passes": dense["allocation_passes"],
            "incremental_allocation_passes": incremental["allocation_passes"],
            "sim_completion_s": incremental["sim_completion_s"],
        })


class TestCompletionCurveAtScale:
    def test_server_bottleneck_curve_stays_linear(self):
        """Fig. 3a's FTP shape extends past the paper's grid: with the server
        uplink as bottleneck, completion time keeps growing linearly in the
        worker count up to 1000 nodes."""
        if quick_scale():
            # Keep the server uplink the bottleneck at reduced worker counts.
            counts, server_link = (50, 100, 200), 100.0
        else:
            counts, server_link = (250, 500, 1000), 1000.0
        rows = run_completion_curve(worker_counts=counts,
                                    server_link_mbps=server_link)
        emit("Completion curve at scale", format_table(rows))
        checks = shape_check("completion curve")
        t = {row["n_workers"]: row["sim_completion_s"] for row in rows}
        checks.is_true("monotone growth",
                       t[counts[0]] < t[counts[1]] < t[counts[2]])
        ratio = t[counts[2]] / t[counts[0]]
        expected = counts[2] / counts[0]
        checks.within("linear scaling ratio", ratio,
                      0.7 * expected, 1.3 * expected)
        checks.verify()


class TestScaleGrid:
    def test_grid_sync_transfer_storm(self):
        """≥1000 hosts × ≥5000 data items through the full runtime.

        Every datum must be placed and downloaded, and the indexed scheduler
        must have examined only assignable candidates — not all of Θ for
        each of the thousands of synchronisations.
        """
        if quick_scale():
            n_hosts, n_data = 100, 500
        else:
            n_hosts, n_data = 1000, 5000
        metrics = run_scale_grid(n_hosts=n_hosts, n_data=n_data,
                                 sync_rounds=3)
        emit("Scale grid", format_table([
            {k: metrics[k] for k in (
                "n_hosts", "n_data", "placed", "downloaded", "wall_s",
                "entries_examined", "allocation_passes", "processed_events")}
        ]))

        checks = shape_check("scale grid")
        checks.is_true("every datum placed", metrics["placed"] == n_data)
        checks.is_true("every datum downloaded",
                       metrics["downloaded"] == n_data)
        # The naive scheduler would examine |Θ| entries per sync:
        # sync_count × n_data ≫ what the indexes allow.
        naive_examinations = metrics["sync_count"] * n_data
        checks.is_true(
            "no full Θ scans (examined ≪ sync_count × |Θ|)",
            metrics["entries_examined"] <= 2 * n_data
            and metrics["entries_examined"] < naive_examinations / 100)
        checks.is_true("coalescing active",
                       metrics["allocation_passes"]
                       < metrics["recompute_requests"])
        checks.verify()

        record_bench_point("scale-grid-%dx%d" % (n_hosts, n_data), {
            k: metrics[k] for k in (
                "scenario", "n_hosts", "n_data", "replica", "sync_rounds",
                "placed", "downloaded", "sim_time_s", "wall_s",
                "sync_count", "assignments", "entries_examined",
                "allocation_passes", "recompute_requests",
                "processed_events")
        })


class TestScaleGrid100k:
    def test_cohort_batched_grid_at_100k(self):
        """The kernel raw-speed push: 100k hosts in seconds, not minutes.

        Cohort-batched host loops, the calendar-queue scheduler and the
        vectorized allocator together run the full placement storm —
        100k hosts × 25k data items × replica 4, one multiplexed per-host
        heartbeat stream — at ≥5× the seed's ~10k events/s.  The batching
        must be transparent: a reduced grid is first re-run on the
        reference heap scheduler + incremental allocator and every
        simulated quantity must match exactly.
        """
        # Transparency first (cheap): same simulation whatever runs below
        # — reference scheduler/allocator, and batched cohort placement.
        small = dict(n_hosts=2000, n_data=500, cohort_size=500,
                     heartbeat_duration_s=10.0)
        fast = run_scale_grid_100k(**small)
        reference = run_scale_grid_100k(scheduler="heap",
                                        allocator="incremental", **small)
        batched = run_scale_grid_100k(placement="batch", **small)
        volatile = {"wall_s", "setup_wall_s", "run_wall_s",
                    "events_per_sec", "scheduler", "allocator"}
        assert ({k: v for k, v in fast.items() if k not in volatile}
                == {k: v for k, v in reference.items() if k not in volatile})
        assert ({k: v for k, v in fast.items() if k not in volatile}
                == {k: v for k, v in batched.items() if k not in volatile})

        if quick_scale():
            n_hosts, n_data = 10_000, 2_500
        else:
            n_hosts, n_data = 100_000, 25_000
        metrics = run_scale_grid_100k(n_hosts=n_hosts, n_data=n_data)
        emit("Scale grid 100k (%s scheduler, %s allocator)"
             % (metrics["scheduler"], metrics["allocator"]),
             format_table([
                 {k: metrics[k] for k in (
                     "n_hosts", "n_data", "placed", "downloaded",
                     "heartbeats", "processed_events", "events_per_sec",
                     "wall_s")}
             ]))

        checks = shape_check("scale grid 100k")
        checks.is_true("every datum fully replicated",
                       metrics["placed"] == n_data)
        checks.is_true("downloads match placements",
                       metrics["downloaded"] == n_data * metrics["replica"])
        checks.is_true("one flow per download",
                       metrics["completed_flows"] == metrics["downloaded"])
        # The heartbeat multiplexing must preserve the per-host timer
        # density the calendar queue is built for, not batch it away.
        checks.is_true("timer-heavy event mix",
                       metrics["heartbeats"]
                       >= metrics["processed_events"] * 0.5)
        if not quick_scale():
            # The seed kernel processed ~10k events/s; the acceptance bar
            # is ≥5×.  Only asserted at full scale, where the run is long
            # enough (~10 s) for the rate to be stable.
            checks.ratio_at_least("events/s vs ~10k/s seed rate",
                                  metrics["events_per_sec"] / 10_000.0, 5.0)
        checks.verify()

        point_id = ("scale-grid-100k-quick" if quick_scale()
                    else "scale-grid-100k")
        record_bench_point(point_id, {
            k: metrics[k] for k in (
                "scenario", "n_hosts", "n_data", "replica", "cohort_size",
                "scheduler", "allocator", "placed", "downloaded",
                "heartbeats", "sim_time_s", "processed_events",
                "events_per_sec", "wall_s", "setup_wall_s", "run_wall_s")
        })


class TestScaleGrid100kBatched:
    def test_batched_fast_stack_accelerates_the_grid(self):
        """Batched cohort placement + array calendar vs the per-host point.

        ``placement=batch`` evaluates each cohort round with one
        ``compute_schedule_batch`` call (numpy prefix-sum fill) instead of
        ``cohort_size`` sequential ``compute_schedule`` calls, and the
        array calendar drains buckets by argsort instead of per-push
        sifting.  Both are oracle-pinned transparent (the reduced-grid
        byte-compare above and the CI kernel-smoke job), so the only
        thing this test measures is the wall clock.  Runs are interleaved
        and each configuration keeps its best of two, because throttled
        single-CPU containers routinely wobble by 2× between identical
        runs; the speedup floor is asserted at full scale only, where the
        runs are long enough for the rate to be stable.
        """
        if quick_scale():
            kwargs = dict(n_hosts=10_000, n_data=2_500)
            repeats = 1
        else:
            kwargs = dict(n_hosts=100_000, n_data=25_000)
            repeats = 2
        configs = {
            "per-host": dict(),
            "batched": dict(placement="batch", scheduler="array"),
        }
        best = {}
        for _ in range(repeats):
            for name, knobs in configs.items():
                metrics = run_scale_grid_100k(**knobs, **kwargs)
                if (name not in best or metrics["events_per_sec"]
                        > best[name]["events_per_sec"]):
                    best[name] = metrics
        per_host, batched = best["per-host"], best["batched"]
        speedup = (batched["events_per_sec"]
                   / max(per_host["events_per_sec"], 1e-9))
        emit("Scale grid 100k batched (best of %d)" % repeats, format_table([
            {"config": name,
             "scheduler": m["scheduler"],
             "events_per_sec": m["events_per_sec"],
             "run_wall_s": m["run_wall_s"],
             "processed_events": m["processed_events"]}
            for name, m in best.items()]))

        checks = shape_check("scale grid 100k batched")
        checks.is_true("same simulation both ways",
                       batched["processed_events"]
                       == per_host["processed_events"]
                       and batched["placed"] == per_host["placed"]
                       and batched["downloaded"] == per_host["downloaded"])
        if not quick_scale():
            # Honest accounting: the per-host baseline measured *today*
            # already includes this PR's GC-paused timed section, so the
            # batch's marginal win is ~1.15-1.35× (recorded, not
            # asserted — single-CPU noise could invert a floor that
            # tight).  The 2× claim is against the point the repo had
            # *recorded* before this work — 100,885 events/s
            # (BENCH.json `scale-grid-100k`, PR 9) — which the fast
            # stack clears at ~2.1-2.4×; 1.5 leaves noise headroom.
            checks.ratio_at_least(
                "fast stack vs the recorded pre-batching point",
                batched["events_per_sec"] / 100_885.0, 1.5)
        checks.verify()

        point_id = ("scale-grid-100k-batched-quick" if quick_scale()
                    else "scale-grid-100k-batched")
        record_bench_point(point_id, {
            **{k: batched[k] for k in (
                "scenario", "n_hosts", "n_data", "replica", "cohort_size",
                "scheduler", "allocator", "placed", "downloaded",
                "heartbeats", "sim_time_s", "processed_events",
                "events_per_sec", "wall_s", "setup_wall_s", "run_wall_s")},
            "placement": "batch",
            "per_host_events_per_sec": per_host["events_per_sec"],
            "speedup_vs_per_host": speedup,
        })


class TestScaleGrid300k:
    def test_300k_tier_with_fast_defaults(self):
        """The 300k-host tier: 3× the 100k grid, fast stack by default.

        The scenario is born with the array calendar, the vectorized
        allocator and batched placement as its defaults; a reduced grid
        is first certified against the reference heap/incremental/
        per-host path, then the full ~3M-event storm runs and records
        the trajectory point toward 1M hosts.
        """
        small = dict(n_hosts=2000, n_data=500, cohort_size=500,
                     heartbeat_duration_s=10.0)
        fast = run_scale_grid_300k(**small)
        reference = run_scale_grid_300k(scheduler="heap",
                                        allocator="incremental",
                                        placement="host", **small)
        volatile = {"wall_s", "setup_wall_s", "run_wall_s",
                    "events_per_sec", "scheduler", "allocator", "placement"}
        assert ({k: v for k, v in fast.items() if k not in volatile}
                == {k: v for k, v in reference.items() if k not in volatile})

        if quick_scale():
            n_hosts, n_data = 30_000, 7_500
        else:
            n_hosts, n_data = 300_000, 75_000
        metrics = run_scale_grid_300k(n_hosts=n_hosts, n_data=n_data)
        emit("Scale grid 300k (%s scheduler, %s allocator, %s placement)"
             % (metrics["scheduler"], metrics["allocator"],
                metrics["placement"]),
             format_table([
                 {k: metrics[k] for k in (
                     "n_hosts", "n_data", "placed", "downloaded",
                     "heartbeats", "processed_events", "events_per_sec",
                     "wall_s")}
             ]))

        checks = shape_check("scale grid 300k")
        checks.is_true("every datum fully replicated",
                       metrics["placed"] == n_data)
        checks.is_true("downloads match placements",
                       metrics["downloaded"] == n_data * metrics["replica"])
        checks.is_true("one flow per download",
                       metrics["completed_flows"] == metrics["downloaded"])
        checks.is_true("timer-heavy event mix",
                       metrics["heartbeats"]
                       >= metrics["processed_events"] * 0.5)
        if not quick_scale():
            # The measured rate is ~240k events/s on a single throttled
            # CPU; ≥10× the seed's ~10k/s leaves 2× headroom for noise.
            checks.ratio_at_least("events/s vs ~10k/s seed rate",
                                  metrics["events_per_sec"] / 10_000.0, 10.0)
        checks.verify()

        point_id = ("scale-grid-300k-quick" if quick_scale()
                    else "scale-grid-300k")
        record_bench_point(point_id, {
            k: metrics[k] for k in (
                "scenario", "n_hosts", "n_data", "replica", "cohort_size",
                "scheduler", "allocator", "placement", "placed",
                "downloaded", "heartbeats", "sim_time_s",
                "processed_events", "events_per_sec", "wall_s",
                "setup_wall_s", "run_wall_s")
        })


class TestFailureDetectorSweepCost:
    def test_sweep_examines_only_expiring_hosts(self):
        """The detector's sweep is O(newly-dead), not O(all hosts).

        With n hosts heartbeating every period and the sweep running twice
        per period, the seed implementation scanned all n hosts on every
        sweep.  The expiry heap examines a host only when its recorded
        deadline passes — at most once per timeout interval while it lives
        — so total examinations stay well under sweeps × n, while the dead
        hosts are still declared exactly once.
        """
        n = 300 if quick_scale() else 1000
        env = Environment()
        detector = FailureDetector(env, heartbeat_period_s=1.0,
                                   timeout_multiplier=3.0)
        names = [f"h{i:04d}" for i in range(n)]
        crash_after = 8          # half the hosts stop heartbeating here
        rounds = 20              # survivors keep beating until the horizon

        def beats():
            for r in range(rounds):
                alive = names if r < crash_after else names[: n // 2]
                for name in alive:
                    detector.heartbeat(name)
                yield env.timeout(1.0)

        dead_declared = []
        detector.on_failure(dead_declared.append)
        env.process(beats())
        detector.start()
        horizon = env.timeout(rounds - 2.0)
        env.run(until=horizon)

        checks = shape_check("failure-detector sweep cost")
        checks.is_true("survivors still alive",
                       all(detector.is_alive(nm) for nm in names[: n // 2]))
        checks.is_true("crashed half declared dead exactly once",
                       sorted(dead_declared) == names[n // 2:])
        naive_examinations = detector.sweeps * n
        checks.is_true("sweeps actually ran",
                       detector.sweeps
                       >= (rounds - 2) / detector.sweep_period_s - 2)
        # Micro-assert: the heap examines each alive host ~once per timeout
        # (3 s) instead of once per sweep (0.5 s) — ≥4× under the naive
        # scan even with the one-off burst of the crashed half.
        checks.is_true(
            "sweep work ≪ sweeps × hosts",
            detector.sweep_examined <= naive_examinations / 4)
        checks.verify()
        emit("Failure-detector sweep cost (%d hosts)" % n, format_table([{
            "sweeps": detector.sweeps,
            "sweep_examined": detector.sweep_examined,
            "naive_examinations": naive_examinations,
            "reduction_x": naive_examinations
            / max(detector.sweep_examined, 1),
        }]))


class TestSweepParallel:
    def test_parallel_sweep_identical_and_cached(self):
        """The sweep executor on an 8-point Figure-3-style grid.

        The invariants are hardware-independent and always asserted: the
        parallel merged JSON is byte-identical to serial, and the warm-cache
        pass hits on every point without executing anything.  The ≥2×
        parallel wall-clock speedup is only asserted where a process pool
        can physically deliver it (≥4 effective cores at full scale); the
        measured walls and the core count are recorded in BENCH.json either
        way, so the trajectory stays honest on throttled CI runners.
        """
        if quick_scale():
            metrics = run_sweep_parallel(sizes_mb=(2.0, 4.0),
                                         node_counts=(10, 20), jobs=2)
        else:
            metrics = run_sweep_parallel()          # 8 points, jobs=4
        emit("Parallel sweep (%d points, %d jobs, %s cpus)"
             % (metrics["points"], metrics["jobs"], metrics["cpus"]),
             format_table([
                 {k: metrics[k] for k in (
                     "serial_wall_s", "parallel_wall_s", "warm_wall_s",
                     "speedup", "warm_speedup")}
             ]))

        checks = shape_check("parallel sweep")
        checks.is_true("parallel output byte-identical to serial",
                       metrics["identical"])
        checks.is_true("no point failed", metrics["failed"] == 0)
        checks.is_true("warm pass hits every point",
                       metrics["warm_cache_hits"] == metrics["points"])
        checks.is_true("warm pass executes nothing",
                       metrics["warm_executed"] == 0)
        checks.ratio_at_least("warm-cache speedup over serial",
                              metrics["warm_speedup"], 2.0)
        if not quick_scale() and (os.cpu_count() or 1) >= 4:
            checks.ratio_at_least("process-pool speedup over serial",
                                  metrics["speedup"], 2.0)
        checks.verify()

        point_id = "sweep-parallel-quick" if quick_scale() else "sweep-parallel"
        record_bench_point(point_id, {
            k: metrics[k] for k in (
                "scenario", "target", "points", "jobs", "cpus", "identical",
                "serial_wall_s", "parallel_wall_s", "warm_wall_s",
                "speedup", "warm_speedup", "warm_cache_hits")
        })
