"""Figure 4 — fault-tolerance scenario on DSL-Lab.

Paper: a datum with ``replica = 5, fault tolerance = true, protocol = ftp``
is kept at five live replicas while one owner is killed and one fresh host
arrives every 20 seconds.  The Gantt chart shows, for each arriving host, a
~3 second wait (the failure detector's timeout is three 1-second heartbeats)
followed by the download, whose bandwidth varies widely across the ADSL
lines (53-492 KB/s).
"""

from benchmarks.conftest import emit, run_once
from repro.bench.fault import run_fig4
from repro.bench.reporting import format_table, shape_check


def test_fig4_fault_tolerance(benchmark, scale):
    result = run_once(benchmark, run_fig4, size_mb=5.0, replica=5,
                      n_initial=5, n_spare=5, crash_interval_s=20.0,
                      heartbeat_period_s=1.0, timeout_multiplier=3.0)

    emit("Figure 4 — fault-tolerance timeline (replacement hosts)",
         format_table([
             {"host": r["host"], "wait_s": r["wait_s"],
              "download_s": r["download_s"],
              "bandwidth_kbps": r["bandwidth_kbps"]}
             for r in result["rows"]]))

    checks = shape_check("figure 4")
    checks.is_true("five crashes were injected", result["crashes"] == 5)
    checks.is_true("five replacement hosts joined", result["joins"] == 5)
    checks.is_true("the replica level is restored to the requested 5",
                   result["live_replicas"] == result["requested_replicas"])
    replacements = result["replacement_rows"]
    checks.is_true("every replacement host received the datum",
                   len(replacements) == 5)
    for row in replacements:
        checks.within(
            f"{row['host']}: wait dominated by the 3 s failure-detection timeout",
            row["wait_s"], result["timeout_s"] - 1.0, result["timeout_s"] + 4.0)
    bandwidths = [r["bandwidth_kbps"] for r in result["rows"]]
    checks.within("slowest download bandwidth in the ADSL band (paper: 53 KB/s)",
                  min(bandwidths), 20.0, 300.0)
    checks.within("fastest download bandwidth in the ADSL band (paper: 492 KB/s)",
                  max(bandwidths), 150.0, 700.0)
    checks.ratio_at_least("bandwidth heterogeneity across ADSL lines",
                          max(bandwidths) / min(bandwidths), 1.5)
    checks.verify()
