"""Figure 3c — overhead of BitDew+FTP over FTP alone, in seconds.

Paper: the absolute overhead grows with the file size and with the number of
downloading nodes (tens of seconds for 500 MB to 250 nodes), because the
dominant term is the bandwidth consumed by the BitDew monitoring protocol
while the transfers are in flight.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.reporting import format_table, shape_check
from repro.bench.transfer import run_fig3bc


def test_fig3c_overhead_seconds(benchmark, scale):
    sizes = scale["fig3_sizes"]
    nodes = scale["fig3_nodes"]
    rows = run_once(benchmark, run_fig3bc, sizes_mb=sizes, node_counts=nodes)

    emit("Figure 3c — BitDew overhead over FTP alone (seconds)",
         format_table([{k: r[k] for k in
                        ("size_mb", "n_nodes", "ftp_alone_s", "bitdew_ftp_s",
                         "overhead_s")} for r in rows]))

    def overhead(size, n):
        for row in rows:
            if row["size_mb"] == size and row["n_nodes"] == n:
                return row["overhead_s"]
        raise KeyError((size, n))

    small, big = min(sizes), max(sizes)
    few, many = min(nodes), max(nodes)

    checks = shape_check("figure 3c")
    checks.is_true("overhead is non-negative everywhere",
                   all(r["overhead_s"] >= -1e-6 for r in rows))
    checks.is_true(
        "absolute overhead grows with the file size",
        overhead(big, many) > overhead(small, many))
    checks.is_true(
        "absolute overhead grows with the number of nodes",
        overhead(big, many) > overhead(big, few))
    checks.is_true(
        "largest configuration pays seconds to tens of seconds",
        1.0 <= overhead(big, many) <= 120.0)
    checks.verify()
