"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  By default the
parameter grids are reduced so the whole suite finishes in minutes on a
laptop; set ``REPRO_PAPER_SCALE=1`` to run the full grids of the paper
(hundreds of nodes, 2.68 GB Genebase, all size/node combinations), which
takes considerably longer.
"""

from __future__ import annotations

import os

import pytest


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("0", "", "false")


@pytest.fixture(scope="session")
def scale() -> dict:
    """Parameter grids for the experiments, at benchmark or paper scale."""
    if paper_scale():
        return {
            "paper_scale": True,
            "table2_creations": 5000,
            "table3_nodes": 50,
            "table3_pairs": 500,
            "fig3_sizes": (10, 20, 50, 100, 150, 200, 250, 500),
            "fig3_nodes": (10, 20, 50, 100, 150, 200, 250),
            "fig5_workers": (10, 20, 50, 100, 150, 200, 250, 275),
            "fig6_nodes": 400,
        }
    return {
        "paper_scale": False,
        "table2_creations": 1500,
        "table3_nodes": 50,
        "table3_pairs": 100,
        "fig3_sizes": (10, 100, 500),
        "fig3_nodes": (10, 50, 150),
        "fig5_workers": (10, 50, 100),
        "fig6_nodes": 80,
    }


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def emit(title: str, text: str) -> None:
    """Print a paper-style table under a clear banner (shown with -s)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}\n{text}\n")
