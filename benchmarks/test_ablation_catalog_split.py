"""Ablation — the DC/DDC split of §3.4.1.

The paper stores permanent-copy locators in the centralized Data Catalog and
replica locations in the DHT-backed Distributed Data Catalog.  This ablation
quantifies the trade-off behind that split: publishing through the DC is much
faster end-to-end, but concentrates every request on a single service, while
the DDC spreads the request load evenly over the participating nodes (and
survives node failures), which is what makes it suitable for the volatile
replica index.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.micro import run_table3
from repro.bench.reporting import format_table, shape_check
from repro.dht.chord import ChordRing
from repro.dht.ddc import DistributedDataCatalog
from repro.sim.kernel import Environment
from repro.storage.persistence import new_auid


def _ddc_load_distribution(n_nodes: int, pairs_per_node: int):
    env = Environment()
    ddc = DistributedDataCatalog(env, ChordRing(replication=2))
    names = [f"node{i:03d}" for i in range(n_nodes)]
    for name in names:
        ddc.join(name)

    def publisher(name):
        for i in range(pairs_per_node):
            yield from ddc.publish(new_auid(f"{name}-{i}"), name, origin=name)

    processes = [env.process(publisher(name)) for name in names]
    env.run(until=env.all_of(processes))
    served = [ddc.node_of(name).requests_served for name in names]
    return served


def test_ablation_catalog_split(benchmark, scale):
    n_nodes, pairs = scale["table3_nodes"], max(20, scale["table3_pairs"] // 5)

    def experiment():
        timing = run_table3(n_nodes=n_nodes, pairs_per_node=pairs)
        served = _ddc_load_distribution(n_nodes, pairs)
        return timing, served

    timing, served = run_once(benchmark, experiment)
    total_requests = sum(served)
    emit("Ablation — catalog placement (DC vs DDC)", format_table([
        {"metric": "DC total time (s)", "value": timing["dc_total_s"]},
        {"metric": "DDC total time (s)", "value": timing["ddc_total_s"]},
        {"metric": "DDC max node share of requests",
         "value": max(served) / total_requests},
        {"metric": "DC node share of requests (by construction)", "value": 1.0},
    ]))

    checks = shape_check("ablation: catalog split")
    checks.is_true("the centralized DC is faster end-to-end",
                   timing["dc_total_s"] < timing["ddc_total_s"])
    checks.ratio_at_most(
        "the DDC spreads the request load (no node serves more than 25%)",
        max(served) / total_requests, 0.25)
    checks.is_true("every DDC node served some requests",
                   min(served) > 0)
    checks.verify()
