"""Ablation — the MaxDataSchedule threshold of Algorithm 1.

Algorithm 1 stops assigning new data to a host once ``MaxDataSchedule`` new
items have been added in one synchronisation.  A small threshold smooths the
load on the Data Scheduler and the host's downlink but makes a host need more
synchronisation rounds (and therefore more time, at a fixed sync period) to
acquire a large working set; a large threshold converges in one round.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.reporting import format_table, shape_check
from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.services.data_scheduler import DataSchedulerService
from repro.sim.kernel import Environment


def rounds_to_acquire(n_items: int, max_data_schedule: int) -> int:
    env = Environment()
    scheduler = DataSchedulerService(env, max_data_schedule=max_data_schedule)
    for i in range(n_items):
        scheduler.schedule(Data(name=f"d{i}"), Attribute(name=f"a{i}", replica=1))
    cache: set = set()
    rounds = 0
    while len(cache) < n_items:
        rounds += 1
        result = scheduler.compute_schedule("host", set(cache))
        cache.update(d.uid for d, _ in result.assigned)
        if rounds > n_items + 1:  # pragma: no cover - safety stop
            break
    return rounds


def test_ablation_scheduler_threshold(benchmark, scale):
    n_items = 32
    thresholds = (1, 4, 16, 64)

    def experiment():
        return {t: rounds_to_acquire(n_items, t) for t in thresholds}

    rounds = run_once(benchmark, experiment)
    emit("Ablation — MaxDataSchedule threshold", format_table(
        [{"max_data_schedule": t, "sync_rounds_to_acquire_32_items": r}
         for t, r in rounds.items()]))

    checks = shape_check("ablation: scheduler threshold")
    checks.is_true("round count decreases monotonically with the threshold",
                   rounds[1] >= rounds[4] >= rounds[16] >= rounds[64])
    checks.is_true("threshold 1 needs one round per item", rounds[1] == n_items)
    checks.is_true("a threshold larger than the working set converges in one round",
                   rounds[64] == 1)
    checks.is_true("threshold 4 needs ceil(32/4) rounds", rounds[4] == 8)
    checks.verify()
