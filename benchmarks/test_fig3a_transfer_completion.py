"""Figure 3a — file distribution completion time, FTP vs BitTorrent.

Paper: BitDew replicates a 10..500 MB file to 10..250 nodes; BitTorrent
clearly outperforms FTP once the file is large (> 20 MB) and the node count
grows (> 10), because the FTP server's uplink is divided among the
downloaders while the swarm's aggregate capacity grows with its size, making
BitTorrent's completion time nearly flat in the number of nodes.
"""

from benchmarks.conftest import emit, run_once
from repro.bench.reporting import format_table, shape_check
from repro.bench.transfer import run_fig3a


def test_fig3a_transfer_completion(benchmark, scale):
    sizes = scale["fig3_sizes"]
    nodes = scale["fig3_nodes"]
    rows = run_once(benchmark, run_fig3a, sizes_mb=sizes, node_counts=nodes)

    emit("Figure 3a — completion time (s) of BitDew distribution",
         format_table([{k: r[k] for k in
                        ("protocol", "size_mb", "n_nodes", "completion_s")}
                       for r in rows]))

    def completion(protocol, size, n):
        for row in rows:
            if (row["protocol"] == protocol and row["size_mb"] == size
                    and row["n_nodes"] == n):
                return row["completion_s"]
        raise KeyError((protocol, size, n))

    big_size = max(sizes)
    small_size = min(sizes)
    many = max(nodes)
    few = min(nodes)

    checks = shape_check("figure 3a")
    checks.is_true("every node completed in every configuration",
                   all(r["completed_nodes"] == r["n_nodes"] for r in rows))
    checks.is_true(
        f"BitTorrent wins for {big_size:.0f} MB on {many} nodes",
        completion("bittorrent", big_size, many) < completion("ftp", big_size, many))
    checks.is_true(
        f"FTP wins for the small file ({small_size:.0f} MB) on {few} nodes",
        completion("ftp", small_size, few) < completion("bittorrent", small_size, few))
    checks.ratio_at_least(
        "FTP completion grows with the node count (server bottleneck)",
        completion("ftp", big_size, many) / completion("ftp", big_size, few),
        0.5 * many / few)
    checks.ratio_at_most(
        "BitTorrent completion stays nearly flat in the node count",
        completion("bittorrent", big_size, many)
        / completion("bittorrent", big_size, few),
        3.0)
    checks.ratio_at_least(
        "BitTorrent's advantage at scale is large (paper: several-fold)",
        completion("ftp", big_size, many) / completion("bittorrent", big_size, many),
        3.0)
    checks.verify()
