"""Ablation — piece-level BitTorrent swarm vs the fluid approximation.

DESIGN.md documents two swarm models: the detailed piece-level simulation and
the calibrated fluid model used for large sweeps.  This ablation runs both on
the same configuration and checks that the fluid model stays within a small
factor of the piece-level one (so that switching models for scale does not
change the conclusions drawn from Figures 3a and 5).
"""

from benchmarks.conftest import emit, run_once
from repro.bench.reporting import format_table, shape_check
from repro.bench.transfer import run_distribution


def test_ablation_bittorrent_model(benchmark, scale):
    # 100 MB to 40 nodes: comfortably past the FTP/BitTorrent crossover.
    size_mb, n_nodes = 100.0, 40

    def experiment():
        piece = run_distribution("bittorrent", size_mb, n_nodes,
                                 bittorrent_mode="piece")
        fluid = run_distribution("bittorrent", size_mb, n_nodes,
                                 bittorrent_mode="fluid")
        ftp = run_distribution("ftp", size_mb, n_nodes)
        return piece, fluid, ftp

    piece, fluid, ftp = run_once(benchmark, experiment)
    emit("Ablation — BitTorrent swarm model", format_table([
        {"model": "piece-level", "completion_s": piece["completion_s"]},
        {"model": "fluid", "completion_s": fluid["completion_s"]},
        {"model": "ftp (reference)", "completion_s": ftp["completion_s"]},
    ]))

    ratio = fluid["completion_s"] / piece["completion_s"]
    checks = shape_check("ablation: bittorrent model")
    checks.within("fluid model within a small factor of the piece-level model",
                  ratio, 0.3, 3.0)
    checks.is_true("both models complete on every node",
                   piece["completed_nodes"] == n_nodes
                   and fluid["completed_nodes"] == n_nodes)
    checks.is_true("both models beat FTP at this size/scale",
                   piece["completion_s"] < ftp["completion_s"]
                   and fluid["completion_s"] < ftp["completion_s"])
    checks.verify()
