"""Database back-ends and connection pooling.

The paper's Table 2 measures the rate of "data slot creations" through four
back-end combinations: {MySQL, HsqlDB} x {with DBCP, without DBCP}.  The
relevant cost structure is:

* every operation pays the engine's *operation* cost (parse + write + commit),
* without a connection pool, every operation additionally pays the engine's
  *connection* cost (MySQL's networked handshake is expensive, ~3.5 ms;
  HsqlDB's in-process connection is cheap, ~0.1 ms),
* the database serialises operations: a single service thread drives it, so
  concurrent callers queue (the paper notes multi-threading as future work).

The store itself is functional — a set of named collections holding object
snapshots, with key access and predicate queries — so the Data Catalog and
Data Scheduler really persist and retrieve their state through it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.sim.kernel import Environment
from repro.sim.resources import Resource

__all__ = [
    "ConnectionPool",
    "Database",
    "DatabaseEngine",
    "DatabaseError",
    "EmbeddedSQLEngine",
    "NetworkedSQLEngine",
]


class DatabaseError(RuntimeError):
    """Raised for missing keys/collections and misuse of the database API."""


@dataclass(frozen=True)
class DatabaseEngine:
    """Cost profile of a database engine.

    ``operation_cost_s`` is charged per statement, ``connection_cost_s`` per
    connection establishment (i.e. per statement when no pool is used).
    """

    name: str
    operation_cost_s: float
    connection_cost_s: float

    def __post_init__(self):
        if self.operation_cost_s < 0 or self.connection_cost_s < 0:
            raise ValueError("costs must be non-negative")


def NetworkedSQLEngine(operation_cost_s: float = 525e-6,
                       connection_cost_s: float = 3475e-6) -> DatabaseEngine:
    """MySQL-like engine: client/server protocol, expensive connection setup."""
    return DatabaseEngine("mysql", operation_cost_s, connection_cost_s)


def EmbeddedSQLEngine(operation_cost_s: float = 230e-6,
                      connection_cost_s: float = 80e-6) -> DatabaseEngine:
    """HsqlDB-like engine: embedded in the service process, cheap connections."""
    return DatabaseEngine("hsqldb", operation_cost_s, connection_cost_s)


class ConnectionPool:
    """A DBCP-like pool: connections are opened once and reused.

    The pool bounds concurrency as well — callers wanting a connection when
    all are checked out wait in FIFO order.
    """

    def __init__(self, env: Environment, engine: DatabaseEngine, size: int = 8):
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.env = env
        self.engine = engine
        self.size = size
        self._slots = Resource(env, capacity=size)
        #: connections established so far (each pays the connection cost once)
        self.connections_opened = 0

    def acquire(self):
        """Generator: obtain a pooled connection.

        Physical connections are opened lazily: a new one is only established
        when every already-opened connection is checked out (DBCP's grow-on-
        demand behaviour), so sequential callers reuse a single connection.
        """
        request = self._slots.request()
        yield request
        checked_out = self._slots.count
        if self.connections_opened < checked_out:
            self.connections_opened += 1
            yield self.env.timeout(self.engine.connection_cost_s)
        return request

    def release(self, request) -> None:
        self._slots.release(request)


class Database:
    """A functional object store with simulated access costs.

    Collections map string keys to deep-copied object snapshots, which keeps
    the store honest about persistence semantics (mutating a stored object
    after ``insert`` does not silently change the database).
    """

    def __init__(
        self,
        env: Environment,
        engine: Optional[DatabaseEngine] = None,
        pool: Optional[ConnectionPool] = None,
        concurrency: int = 1,
        copy_objects: bool = True,
    ):
        self.env = env
        self.engine = engine if engine is not None else EmbeddedSQLEngine()
        self.pool = pool
        self.copy_objects = copy_objects
        self._collections: Dict[str, Dict[str, Any]] = {}
        #: The database executes statements serially by default.
        self._executor = Resource(env, capacity=max(1, concurrency))
        #: Dedicated admin connection (see :meth:`admin_execute`).
        self._admin_executor = Resource(env, capacity=1)
        self._admin_connected = False
        #: statistics
        self.operations = 0
        self.busy_time_s = 0.0

    # -- immediate (cost-free) access, used by unit tests and local setup ----
    def collection(self, name: str) -> Dict[str, Any]:
        return self._collections.setdefault(name, {})

    def size(self, name: str) -> int:
        return len(self._collections.get(name, {}))

    def _snapshot(self, obj: Any) -> Any:
        return copy.deepcopy(obj) if self.copy_objects else obj

    # -- raw functional operations (no simulated cost) -----------------------
    def raw_insert(self, collection: str, key: str, obj: Any) -> None:
        table = self.collection(collection)
        if key in table:
            raise DatabaseError(f"duplicate key {key!r} in {collection!r}")
        table[key] = self._snapshot(obj)

    def raw_upsert(self, collection: str, key: str, obj: Any) -> None:
        self.collection(collection)[key] = self._snapshot(obj)

    def raw_get(self, collection: str, key: str, default: Any = None) -> Any:
        value = self._collections.get(collection, {}).get(key, default)
        return self._snapshot(value) if value is not None else default

    def raw_delete(self, collection: str, key: str) -> bool:
        table = self._collections.get(collection, {})
        return table.pop(key, None) is not None

    def raw_query(self, collection: str,
                  predicate: Optional[Callable[[Any], bool]] = None) -> List[Any]:
        table = self._collections.get(collection, {})
        values: Iterable[Any] = table.values()
        if predicate is not None:
            values = (v for v in values if predicate(v))
        return [self._snapshot(v) for v in values]

    # -- simulated statements -------------------------------------------------
    def execute(self, operation: Callable[[], Any], statements: int = 1):
        """Generator: run *operation* with the engine's simulated costs.

        ``statements`` scales the operation cost (e.g. a transaction writing
        three rows).  The connection cost is charged per call when no pool is
        configured; with a pool it is only charged when the pool opens a new
        physical connection.
        """
        if statements <= 0:
            raise ValueError("statements must be positive")
        start = self.env.now
        pooled_request = None
        if self.pool is not None:
            pooled_request = yield from self.pool.acquire()
        else:
            yield self.env.timeout(self.engine.connection_cost_s)
        try:
            with self._executor.request() as req:
                yield req
                yield self.env.timeout(self.engine.operation_cost_s * statements)
                result = operation()
        finally:
            if pooled_request is not None:
                self.pool.release(pooled_request)
        self.operations += 1
        self.busy_time_s += self.env.now - start
        return result

    def admin_execute(self, operation: Callable[[], Any], statements: int = 1):
        """Generator: run *operation* on the dedicated *admin* connection.

        Maintenance work — the elastic fabric's shard migrations — runs on
        its own database connection, so it pays the engine's full statement
        costs but serialises only against other admin statements, never
        behind the request path's queue (a migration must make progress on
        an overloaded shard; that is exactly when it is needed).  The
        single admin connection is opened lazily, once.
        """
        if statements <= 0:
            raise ValueError("statements must be positive")
        start = self.env.now
        with self._admin_executor.request() as req:
            yield req
            if not self._admin_connected:
                self._admin_connected = True
                yield self.env.timeout(self.engine.connection_cost_s)
            yield self.env.timeout(self.engine.operation_cost_s * statements)
            result = operation()
        self.operations += 1
        self.busy_time_s += self.env.now - start
        return result

    # -- convenience simulated statements --------------------------------------
    def insert(self, collection: str, key: str, obj: Any):
        return self.execute(lambda: self.raw_insert(collection, key, obj))

    def upsert(self, collection: str, key: str, obj: Any):
        return self.execute(lambda: self.raw_upsert(collection, key, obj))

    def get(self, collection: str, key: str, default: Any = None):
        return self.execute(lambda: self.raw_get(collection, key, default))

    def delete(self, collection: str, key: str):
        return self.execute(lambda: self.raw_delete(collection, key))

    def query(self, collection: str,
              predicate: Optional[Callable[[Any], bool]] = None):
        return self.execute(lambda: self.raw_query(collection, predicate))
