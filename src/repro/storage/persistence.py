"""JDO-like object persistence and AUID generation.

The BitDew prototype persists every runtime object (Data, Attribute,
Locator, Transfer, ...) through Java JDO/JPOX; each object carries an AUID,
"a variant of the DCE UID" (§3.5).  :func:`new_auid` produces such
identifiers deterministically when a seed counter is supplied (useful for
reproducible simulations) and randomly otherwise.  The
:class:`PersistenceManager` maps dataclass-like objects to database
collections by class name, mirroring the transparent persistence the paper
relies on.
"""

from __future__ import annotations

import itertools
import uuid
from typing import Any, Callable, Dict, List, Optional, Type, TypeVar

from repro.storage.database import Database

__all__ = ["PersistenceManager", "new_auid", "reset_auid_counter"]

T = TypeVar("T")

_auid_counter = itertools.count(1)
_NAMESPACE = uuid.UUID("8c6b7f2e-bd3e-4c5a-9e6d-2b1f0a7c4d5e")


def new_auid(label: Optional[str] = None) -> str:
    """Return a new AUID (globally unique identifier string).

    When *label* is provided the AUID is derived deterministically from the
    label and a process-wide counter (stable across runs of a seeded
    simulation that creates objects in the same order); otherwise a random
    UUID4 is used.
    """
    if label is not None:
        return str(uuid.uuid5(_NAMESPACE, f"{label}:{next(_auid_counter)}"))
    return str(uuid.uuid4())  # detlint: ignore[DET005] — documented non-deterministic fallback; seeded simulations always label their AUIDs


def reset_auid_counter() -> None:
    """Reset the deterministic AUID counter (test isolation helper)."""
    global _auid_counter
    _auid_counter = itertools.count(1)


def auid_counter_state() -> int:
    """The next value the counter would issue (without consuming it)."""
    global _auid_counter
    value = next(_auid_counter)
    _auid_counter = itertools.count(value)
    return value


def set_auid_counter(value: int) -> None:
    """Rewind/advance the counter so *value* is issued next."""
    global _auid_counter
    _auid_counter = itertools.count(value)


class PersistenceManager:
    """Maps objects with a ``uid`` attribute to database collections."""

    def __init__(self, database: Database):
        self.database = database

    @staticmethod
    def _collection_for(cls: Type) -> str:
        return f"jdo.{cls.__name__}"

    # -- immediate (cost-free) operations -------------------------------------
    def make_persistent(self, obj: Any) -> Any:
        """Persist (insert or update) *obj* keyed by its ``uid``."""
        uid = getattr(obj, "uid", None)
        if not uid:
            raise ValueError("object has no uid; assign one with new_auid()")
        self.database.raw_upsert(self._collection_for(type(obj)), uid, obj)
        return obj

    def delete_persistent(self, obj: Any) -> bool:
        uid = getattr(obj, "uid", None)
        if not uid:
            raise ValueError("object has no uid")
        return self.database.raw_delete(self._collection_for(type(obj)), uid)

    def get_by_uid(self, cls: Type[T], uid: str) -> Optional[T]:
        return self.database.raw_get(self._collection_for(cls), uid)

    def query(self, cls: Type[T],
              predicate: Optional[Callable[[T], bool]] = None) -> List[T]:
        return self.database.raw_query(self._collection_for(cls), predicate)

    def count(self, cls: Type) -> int:
        return self.database.size(self._collection_for(cls))

    # -- simulated (costed) operations -----------------------------------------
    def make_persistent_sim(self, obj: Any):
        """Generator: persist *obj* paying the database's simulated cost."""
        uid = getattr(obj, "uid", None)
        if not uid:
            raise ValueError("object has no uid; assign one with new_auid()")
        return self.database.upsert(self._collection_for(type(obj)), uid, obj)

    def get_by_uid_sim(self, cls: Type[T], uid: str):
        return self.database.get(self._collection_for(cls), uid)

    def delete_persistent_sim(self, obj: Any):
        uid = getattr(obj, "uid", None)
        if not uid:
            raise ValueError("object has no uid")
        return self.database.delete(self._collection_for(type(obj)), uid)
