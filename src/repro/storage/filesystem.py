"""Logical file content and per-host local file systems.

BitDew never looks inside the files it moves; it needs their size, an MD5
checksum for integrity verification (the receiver-driven transfer check of
§3.4.2) and, on each host, a local cache directory it can add to and purge.
:class:`FileContent` is the logical file: a name, a size in MB, a checksum
and, optionally, a small real payload (handy in unit tests).  When no
payload is given the checksum is derived from a content seed so that two
files created from the same seed compare equal and a corrupted copy can be
detected.

:class:`LocalFileSystem` is one host's storage: path -> FileContent with
capacity accounting (DSL-Lab nodes have 2 GB flash, §4.1) and purge support
(the "clean the storage space" administration task of §2.1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["FileContent", "LocalFileSystem", "StorageFullError"]


class StorageFullError(RuntimeError):
    """Raised when a host's disk cannot hold a new file."""


def _md5_of(text: str) -> str:
    return hashlib.md5(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FileContent:
    """A logical file: what BitDew knows about the bytes it moves."""

    name: str
    size_mb: float
    checksum: str
    payload: Optional[bytes] = None

    def __post_init__(self):
        if self.size_mb < 0:
            raise ValueError("size_mb must be non-negative")

    @classmethod
    def from_seed(cls, name: str, size_mb: float, seed: Optional[str] = None) -> "FileContent":
        """Create a logical file whose checksum derives from a content seed."""
        content_seed = seed if seed is not None else name
        return cls(name=name, size_mb=float(size_mb),
                   checksum=_md5_of(f"{content_seed}:{size_mb}"))

    @classmethod
    def from_bytes(cls, name: str, payload: bytes) -> "FileContent":
        """Create a logical file carrying a real (small) payload."""
        return cls(name=name, size_mb=len(payload) / (1024.0 * 1024.0),
                   checksum=hashlib.md5(payload).hexdigest(), payload=payload)

    def verify(self, other: "FileContent") -> bool:
        """True when *other* is an intact copy of this file."""
        return (self.checksum == other.checksum
                and abs(self.size_mb - other.size_mb) < 1e-12)

    def corrupted(self) -> "FileContent":
        """Return a copy with a flipped checksum (fault-injection helper)."""
        return FileContent(self.name, self.size_mb,
                           _md5_of(self.checksum + "!corrupt"), self.payload)


class LocalFileSystem:
    """One host's local storage: a path-addressed cache with a capacity."""

    def __init__(self, capacity_mb: float = float("inf"), owner: Optional[str] = None):
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        self.capacity_mb = float(capacity_mb)
        self.owner = owner
        self._files: Dict[str, FileContent] = {}

    # -- capacity ----------------------------------------------------------
    @property
    def used_mb(self) -> float:
        return sum(f.size_mb for f in self._files.values())

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def fits(self, content: FileContent) -> bool:
        return content.size_mb <= self.free_mb

    # -- file operations ------------------------------------------------------
    def write(self, path: str, content: FileContent) -> FileContent:
        """Store *content* at *path* (overwriting), enforcing capacity."""
        existing = self._files.get(path)
        needed = content.size_mb - (existing.size_mb if existing else 0.0)
        if needed > self.free_mb + 1e-12:
            raise StorageFullError(
                f"{self.owner or 'host'}: cannot store {content.size_mb:.1f} MB, "
                f"only {self.free_mb:.1f} MB free"
            )
        self._files[path] = content
        return content

    def read(self, path: str) -> FileContent:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> bool:
        return self._files.pop(path, None) is not None

    def list_paths(self) -> List[str]:
        return sorted(self._files)

    def purge(self) -> int:
        """Delete everything; returns the number of files removed."""
        count = len(self._files)
        self._files.clear()
        return count

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return path in self._files
