"""Storage substrate: database back-ends, object persistence, local file systems.

The BitDew prototype serialises its meta-data through Java JDO/JPOX into a
relational database (MySQL over the network, or the embedded HsqlDB engine),
optionally through the DBCP connection pool, and stores file content on
ordinary file systems or legacy file servers.  This subpackage rebuilds those
pieces:

* :mod:`repro.storage.database` — a functional in-process object store with
  two cost profiles (networked vs embedded engine) and an optional
  connection pool; this is what Table 2 measures.
* :mod:`repro.storage.persistence` — a JDO-like persistence manager with
  AUID generation (the unique identifiers every BitDew object carries).
* :mod:`repro.storage.filesystem` — logical file content (size + MD5
  checksum + optional payload) and per-host local file systems / reservoir
  caches with capacity accounting.
"""

from repro.storage.database import (
    ConnectionPool,
    Database,
    DatabaseEngine,
    EmbeddedSQLEngine,
    NetworkedSQLEngine,
)
from repro.storage.filesystem import FileContent, LocalFileSystem, StorageFullError
from repro.storage.persistence import PersistenceManager, new_auid

__all__ = [
    "ConnectionPool",
    "Database",
    "DatabaseEngine",
    "EmbeddedSQLEngine",
    "FileContent",
    "LocalFileSystem",
    "NetworkedSQLEngine",
    "PersistenceManager",
    "StorageFullError",
    "new_auid",
]
