"""Content-addressed result cache for sweep execution.

A sweep point is cached under a key that hashes three things:

* the **scenario name**;
* the **fully-resolved parameters** (seed included) — the spec written next
  to the results, so two invocations that resolve to the same spec share a
  cache entry regardless of which defaults were spelled out;
* a **code-version salt** covering every ``*.py`` source file of the
  :mod:`repro` package — any code change anywhere in the tree invalidates
  the whole cache.  Hashing only the runner's own source would miss changes
  in the layers below it (the kernel, the network model, the services), all
  of which feed the simulated results; whole-tree hashing is crude but safe,
  and costs a few milliseconds once per process.

Entries are one JSON file per key (sharded by the first two hex digits),
written atomically via a temp file + :func:`os.replace`, so concurrent
sweep workers and concurrent sweeps can share a cache directory without
locks: the worst case is two processes writing byte-identical content.

The stored envelope is ``{"format", "key", "scenario", "run"}`` where
``run`` is exactly the serialised run document
(:meth:`repro.experiments.runner.ScenarioResult.to_dict`), already scrubbed
of volatile keys — so a cache hit reproduces the run entry byte-for-byte in
the merged sweep JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_digest",
    "code_version_salt",
    "default_cache_dir",
    "point_key",
]

#: environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_ENVELOPE_FORMAT = 1

_CODE_SALT: Optional[str] = None


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def code_version_salt() -> str:
    """A digest of every ``*.py`` file under the installed ``repro`` package.

    Computed once per process.  Simulated results depend on the whole stack
    (kernel ordering, network allocation, service algorithms), so the salt
    deliberately covers the entire tree rather than a single runner.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        import repro
        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode("utf-8"))
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _CODE_SALT = digest.hexdigest()[:16]
    return _CODE_SALT


def canonical_digest(doc: object) -> "hashlib._Hash":
    """SHA-256 over the canonical JSON form of *doc*.

    Canonical = sorted keys, tight separators, ``repr`` fallback for exotic
    values.  The single content-hashing rule shared by cache keys and
    per-point seed derivation, so the two can never drift apart.
    """
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode("utf-8"))


def point_key(scenario: str, params: Mapping[str, object],
              salt: Optional[str] = None) -> str:
    """The content-addressed key of one sweep point."""
    return canonical_digest(
        {"params": {str(k): params[k] for k in params},
         "salt": salt if salt is not None else code_version_salt(),
         "scenario": scenario}).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}


class ResultCache:
    """A directory of content-addressed sweep-point results."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root or default_cache_dir())
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- read / write -------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached run document for *key*, or ``None`` (counted as miss).

        A corrupted or unreadable entry is treated as a miss — the point
        simply re-runs and overwrites it.
        """
        try:
            with open(self._path(key)) as fh:
                envelope = json.load(fh)
            run = envelope["run"]
            if envelope.get("format") != _ENVELOPE_FORMAT \
                    or not isinstance(run, dict):
                raise ValueError("unusable cache envelope")
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return run

    def put(self, key: str, scenario: str, run: Mapping[str, object]) -> None:
        """Store one run document atomically (temp file + rename).

        An unwritable cache (read-only HOME, full disk) degrades to not
        caching — mirroring :meth:`get`'s treat-as-miss policy — instead of
        crashing a sweep after its points were already computed.
        """
        path = self._path(key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            envelope = {"format": _ENVELOPE_FORMAT, "key": key,
                        "scenario": scenario, "run": run}
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump(envelope, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return
        self.stats.stores += 1

    # -- maintenance --------------------------------------------------------
    def entries(self) -> List[Dict[str, object]]:
        """Every stored entry: ``{"key", "scenario", "bytes", "path"}``."""
        out: List[Dict[str, object]] = []
        if not os.path.isdir(self.root):
            return out
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(dirpath, filename)
                scenario = "?"
                try:
                    with open(path) as fh:
                        scenario = json.load(fh).get("scenario", "?")
                except (OSError, ValueError):
                    pass
                out.append({
                    "key": filename[:-len(".json")],
                    "scenario": scenario,
                    "bytes": os.path.getsize(path),
                    "path": path,
                })
        return out

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        removed = 0
        for entry in self.entries():
            try:
                os.unlink(str(entry["path"]))
                removed += 1
            except OSError:  # pragma: no cover - raced removal
                pass
        return removed

    def size_bytes(self) -> int:
        return sum(int(entry["bytes"]) for entry in self.entries())

    def __len__(self) -> int:
        return len(self.entries())
