"""Parallel, cached, crash-isolated execution of scenario sweeps.

The paper's evaluation is a large grid of *independent* simulation runs
(Tables 1-3, Figures 3a-6 each sweep a parameter axis), and the serial
``python -m repro sweep`` loop left a multicore box idle.  This module is
the sweep engine behind ``sweep --jobs N``:

* **Determinism** — every point's spec is resolved *in the parent* (so
  unknown-parameter errors surface immediately and cleanly), per-point
  seeds are derived from content (:func:`derive_point_seed`), workers
  return the already-serialised run document, and the merged output is
  assembled in grid order regardless of completion order.  ``--jobs N`` is
  therefore byte-identical to ``--jobs 1``.
* **Caching** — each point is looked up in a content-addressed
  :class:`~repro.experiments.cache.ResultCache` before any process is
  spawned; hits are spliced into the output byte-for-byte and re-running a
  finished sweep completes without executing anything.
* **Crash isolation** — a point that raises is captured *inside*
  :func:`_execute_point` (in the worker) and recorded as a structured
  failure entry (exception type, message, traceback, attempt count) instead
  of tearing down the sweep; ``retries=K`` re-executes a failing point up
  to K extra times.  Failed points are never cached.
* **Progress** — an optional callback receives one human line per settled
  point (``[12/48] fig4 replica=3 … 4.1s``, ``… cached``, ``… FAILED``).

Pool workers resolve scenarios through the process-global default registry
(:func:`repro.experiments.runner.default_registry`); when a *custom*
registry is supplied the executor transparently falls back to in-process
execution, which follows the exact same code path and output format.
"""

from __future__ import annotations

import json
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments.cache import (
    ResultCache,
    canonical_digest,
    code_version_salt,
    point_key,
)
from repro.experiments.registry import ScenarioRegistry
from repro.experiments.spec import ScenarioSpec, expand_grid

__all__ = [
    "PointFailure",
    "PointOutcome",
    "SweepFailure",
    "SweepOutcome",
    "SweepStats",
    "derive_point_seed",
    "execute_sweep",
]

ProgressFn = Callable[[str], None]


class SweepFailure(RuntimeError):
    """Raised by :func:`repro.experiments.runner.run_sweep` when points fail.

    Carries the failed :class:`PointOutcome` list as ``.failures`` so
    programmatic callers can inspect the structured entries.
    """

    def __init__(self, message: str, failures: Sequence["PointOutcome"]):
        super().__init__(message)
        self.failures = list(failures)


def derive_point_seed(base_seed: object, scenario: str,
                      overrides: Mapping[str, object]) -> int:
    """A deterministic per-point seed: content-derived, order-independent.

    Hashes ``(base seed, scenario, this point's grid overrides)`` — not the
    point's position in the execution schedule — so the same point gets the
    same seed whether the sweep runs serially, with ``--jobs 8``, or resumes
    from a half-filled cache.
    """
    digest = canonical_digest(
        {"base": base_seed,
         "overrides": {str(k): overrides[k] for k in overrides},
         "scenario": scenario}).digest()
    return int.from_bytes(digest[:4], "big")


def _execute_point(scenario: str, params: Dict[str, object],
                   registry: Optional[ScenarioRegistry] = None) -> tuple:
    """Run one resolved point; never raises.

    Returns ``("ok", run_document, elapsed_s)`` or ``("error",
    failure_document, elapsed_s)`` — elapsed is measured around the actual
    execution (in the worker, for pooled runs), so progress lines report
    run time, not queue wait.  This is the unit of work shipped to pool
    workers *and* the unit run inline for ``jobs=1`` — one code path, one
    output format, which is what makes the serial/parallel byte-identity
    hold (including tracebacks, captured here so their frames do not depend
    on the execution mode).  Pool workers omit *registry* (it cannot cross
    the process boundary) and resolve through the process-global default.
    """
    from repro.experiments.runner import run_spec
    started = time.perf_counter()
    try:
        result = run_spec(ScenarioSpec(scenario=scenario, params=params),
                          registry=registry)
        return "ok", result.to_dict(), time.perf_counter() - started
    except Exception as exc:
        return "error", {
            "error": type(exc).__name__,
            "message": _exception_message(exc),
            "traceback": traceback.format_exc(),
        }, time.perf_counter() - started


def _exception_message(exc: BaseException) -> str:
    """The exception's message, unquoted for KeyError subclasses.

    ``KeyError.__str__`` returns ``repr(args[0])``, which would wrap e.g.
    an ``UnknownProtocolError`` message in literal double quotes in failure
    entries and progress lines.
    """
    if isinstance(exc, KeyError) and len(exc.args) == 1 \
            and isinstance(exc.args[0], str):
        return exc.args[0]
    return str(exc)


@dataclass
class PointFailure:
    """A structured record of one point that kept raising."""

    error: str          # exception type name
    message: str
    traceback: str
    attempts: int

    def to_dict(self) -> Dict[str, object]:
        return {"attempts": self.attempts, "error": self.error,
                "message": self.message, "traceback": self.traceback}


@dataclass
class PointOutcome:
    """One settled sweep point: a run document or a structured failure."""

    index: int
    spec: ScenarioSpec
    run: Optional[Dict[str, object]] = None
    failure: Optional[PointFailure] = None
    cached: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None

    def entry(self, paper_ref: str = "") -> Dict[str, object]:
        """This point's entry in the merged sweep document."""
        if self.run is not None:
            return self.run
        assert self.failure is not None
        return {
            "failure": self.failure.to_dict(),
            "paper_ref": paper_ref,
            "scenario": self.spec.scenario,
            "spec": self.spec.to_dict(),
        }


@dataclass
class SweepStats:
    """Execution accounting of one sweep."""

    points: int = 0
    executed: int = 0       # points that actually ran (at least one attempt)
    cache_hits: int = 0
    failed: int = 0
    retries_used: int = 0   # extra attempts beyond the first, across points

    def to_dict(self) -> Dict[str, int]:
        return {"cache_hits": self.cache_hits, "executed": self.executed,
                "failed": self.failed, "points": self.points,
                "retries_used": self.retries_used}


@dataclass
class SweepOutcome:
    """A finished sweep: per-point outcomes in grid order, plus accounting."""

    scenario: str
    grid: Dict[str, List[object]]
    points: List[PointOutcome]
    stats: SweepStats
    paper_ref: str = ""

    @property
    def ok(self) -> bool:
        return self.stats.failed == 0

    def failures(self) -> List[PointOutcome]:
        return [point for point in self.points if not point.ok]

    def to_dict(self) -> Dict[str, object]:
        """The merged sweep document (same shape as the serial format)."""
        return {
            "scenario": self.scenario,
            "grid": {axis: list(values)
                     for axis, values in sorted(self.grid.items())},
            "runs": [point.entry(self.paper_ref) for point in self.points],
        }

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, fixed indent, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _format_overrides(spec: ScenarioSpec, axes: Sequence[str]) -> str:
    return " ".join(f"{axis}={spec.params.get(axis)}" for axis in sorted(axes))


class _Progress:
    """Turns settled points into ``[k/N] scenario axis=value … 4.1s`` lines."""

    def __init__(self, emit: Optional[ProgressFn], total: int,
                 axes: Sequence[str]):
        self.emit = emit
        self.total = total
        self.axes = list(axes)
        self.settled = 0

    def report(self, outcome: PointOutcome) -> None:
        self.settled += 1
        if self.emit is None:
            return
        width = len(str(self.total))
        prefix = (f"[{self.settled:>{width}}/{self.total}] "
                  f"{outcome.spec.scenario}")
        overrides = _format_overrides(outcome.spec, self.axes)
        if overrides:
            prefix += " " + overrides
        if outcome.cached:
            tail = "cached"
        elif outcome.ok:
            tail = f"{outcome.elapsed_s:.1f}s"
        else:
            failure = outcome.failure
            tail = (f"FAILED after {failure.attempts} attempt"
                    f"{'s' if failure.attempts != 1 else ''} "
                    f"({failure.error}: {failure.message})")
        self.emit(f"{prefix} … {tail}")


def _settle(outcome: PointOutcome, outcomes: Dict[int, PointOutcome],
            stats: SweepStats, cache: Optional[ResultCache],
            keys: Sequence[Optional[str]], progress: _Progress) -> None:
    outcomes[outcome.index] = outcome
    if not outcome.cached:
        stats.executed += 1
    if outcome.ok and not outcome.cached and cache is not None:
        cache.put(keys[outcome.index], outcome.spec.scenario, outcome.run)
    if not outcome.ok:
        stats.failed += 1
    progress.report(outcome)


def _attempt_point(index: int, spec: ScenarioSpec, retries: int,
                   stats: SweepStats,
                   registry: Optional[ScenarioRegistry] = None,
                   first_attempt: int = 1) -> PointOutcome:
    """Execute one point in this process until success or retries exhaust.

    ``first_attempt`` > 1 continues the attempt count of executions that
    already happened elsewhere (the pooled path falls back here when its
    pool breaks mid-retry).
    """
    attempts = first_attempt - 1
    while True:
        attempts += 1
        status, payload, elapsed_s = _execute_point(
            spec.scenario, dict(spec.params), registry)
        if status == "ok":
            return PointOutcome(index=index, spec=spec, run=payload,
                                elapsed_s=elapsed_s)
        if attempts > retries:
            return PointOutcome(
                index=index, spec=spec,
                failure=PointFailure(attempts=attempts, **payload),
                elapsed_s=elapsed_s)
        stats.retries_used += 1


def _run_inline(pending: Sequence[int], specs: Sequence[ScenarioSpec],
                retries: int, outcomes: Dict[int, PointOutcome],
                stats: SweepStats, cache: Optional[ResultCache],
                keys: Sequence[Optional[str]], progress: _Progress,
                registry: Optional[ScenarioRegistry] = None) -> None:
    for index in pending:
        outcome = _attempt_point(index, specs[index], retries, stats,
                                 registry)
        _settle(outcome, outcomes, stats, cache, keys, progress)


def _run_pooled(pending: Sequence[int], specs: Sequence[ScenarioSpec],
                jobs: int, retries: int,
                outcomes: Dict[int, PointOutcome], stats: SweepStats,
                cache: Optional[ResultCache], keys: Sequence[Optional[str]],
                progress: _Progress) -> None:
    max_workers = min(jobs, len(pending))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        inflight = {}
        for index in pending:
            future = pool.submit(_execute_point, specs[index].scenario,
                                 dict(specs[index].params))
            inflight[future] = (index, 1)
        while inflight:
            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                index, attempt = inflight.pop(future)
                spec = specs[index]
                try:
                    status, payload, elapsed_s = future.result()
                except BaseException:
                    # A worker died hard (signal/OOM): _execute_point catches
                    # ordinary exceptions in-worker, so this future — and
                    # every other in-flight future of the now-broken pool —
                    # raises without its point having completed.  Finish the
                    # point in-process (same attempt number: the dead attempt
                    # never produced a result) instead of recording spurious
                    # BrokenProcessPool failures for collateral points.
                    _settle(_attempt_point(index, spec, retries, stats,
                                           first_attempt=attempt),
                            outcomes, stats, cache, keys, progress)
                    continue
                if status == "ok":
                    _settle(PointOutcome(index=index, spec=spec, run=payload,
                                         elapsed_s=elapsed_s),
                            outcomes, stats, cache, keys, progress)
                elif attempt <= retries:
                    stats.retries_used += 1
                    try:
                        retry = pool.submit(_execute_point, spec.scenario,
                                            dict(spec.params))
                        inflight[retry] = (index, attempt + 1)
                    except BaseException:
                        # The pool broke (hard worker death above): finish
                        # this point's remaining attempts in-process so the
                        # sweep still ends with structured failure entries.
                        _settle(_attempt_point(index, spec, retries, stats,
                                               first_attempt=attempt + 1),
                                outcomes, stats, cache, keys, progress)
                else:
                    _settle(PointOutcome(
                        index=index, spec=spec,
                        failure=PointFailure(attempts=attempt, **payload),
                        elapsed_s=elapsed_s),
                        outcomes, stats, cache, keys, progress)


def execute_sweep(
    name: str,
    grid: Mapping[str, Sequence[object]],
    base_params: Optional[Mapping[str, object]] = None,
    registry: Optional[ScenarioRegistry] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 0,
    progress: Optional[ProgressFn] = None,
    derive_seeds: bool = False,
) -> SweepOutcome:
    """Run the cartesian product of *grid* over scenario *name*.

    ``jobs`` > 1 executes points on a process pool; ``cache`` skips points
    whose content-addressed key already holds a result; ``retries`` re-runs
    a raising point up to that many extra times; ``derive_seeds`` gives every
    point a deterministic content-derived seed (see
    :func:`derive_point_seed`).  Output is byte-identical across ``jobs``
    values and across cache states.
    """
    from repro.experiments import runner as runner_module
    if registry is None:
        registry = runner_module.default_registry()
    definition = registry.get(name)
    combos = expand_grid(grid)
    base = dict(base_params or {})

    specs: List[ScenarioSpec] = []
    for combo in combos:
        params = dict(base)
        params.update(combo)
        if derive_seeds and definition.seeded:
            params["seed"] = derive_point_seed(base.get("seed"),
                                               definition.name, combo)
        specs.append(definition.spec(**params))

    # Keys (and the whole-tree code salt) are only worth computing when a
    # cache is in play; a --no-cache sweep pays nothing for them.
    keys: List[Optional[str]]
    if cache is not None:
        salt = code_version_salt()
        keys = [point_key(spec.scenario, spec.params, salt) for spec in specs]
    else:
        keys = [None] * len(specs)

    stats = SweepStats(points=len(specs))
    outcomes: Dict[int, PointOutcome] = {}
    progress_state = _Progress(progress, len(specs), list(grid))

    pending: List[int] = []
    for index, key in enumerate(keys):
        run = cache.get(key) if cache is not None else None
        if run is not None:
            stats.cache_hits += 1
            progress_state.report(
                outcomes.setdefault(index, PointOutcome(
                    index=index, spec=specs[index], run=run, cached=True)))
        else:
            pending.append(index)

    if pending:
        # Pool workers re-resolve scenarios through the process-global
        # default registry; a custom registry cannot cross the process
        # boundary, so it runs inline (same code path, same output).
        use_pool = (jobs > 1 and len(pending) > 1
                    and registry is runner_module.default_registry())
        if use_pool:
            _run_pooled(pending, specs, jobs, retries, outcomes, stats,
                        cache, keys, progress_state)
        else:
            _run_inline(pending, specs, retries, outcomes, stats,
                        cache, keys, progress_state, registry)

    return SweepOutcome(
        scenario=definition.name,
        grid={axis: list(values) for axis, values in grid.items()},
        points=[outcomes[index] for index in range(len(specs))],
        stats=stats,
        paper_ref=definition.paper_ref,
    )
