"""Declarative experiment scenarios (the paper as a runnable catalog).

The paper's central claim is that data-management *behaviour* is declared —
attributes, protocols, replication under churn — rather than programmed.
This package applies the same idea to the experiments themselves: every
table, figure and beyond-the-paper stress run is a **registered scenario**
(:mod:`repro.experiments.scenarios`) described by a
:class:`~repro.experiments.spec.ScenarioSpec` — a plain, JSON-round-trippable
record of *which* scenario runs with *which* parameters and seed — instead of
a bespoke Python function with hard-coded wiring.

Layers:

* :mod:`repro.experiments.spec` — ``ScenarioSpec`` (name + params), dict/JSON
  round-trip, parameter-grid expansion for sweeps.
* :mod:`repro.experiments.registry` — ``ScenarioRegistry`` mapping scenario
  names to :class:`ScenarioDefinition` (runner callable, paper reference,
  defaults introspected from the runner's signature), in the style of
  :mod:`repro.transfer.registry`.
* :mod:`repro.experiments.runner` — resolve a spec against the registry, run
  it, and shape the outcome into deterministic, JSON-serialisable results
  (same seed → byte-identical output).
* :mod:`repro.experiments.executor` — the sweep engine: process-pool
  execution (``--jobs N`` byte-identical to serial), content-derived
  per-point seeds, crash isolation with structured failure entries and
  retries, progress reporting.
* :mod:`repro.experiments.cache` — the content-addressed result cache
  (scenario + resolved params + code-version salt) that lets a re-run
  sweep skip every already-computed point.
* :mod:`repro.experiments.scenarios` — the built-in catalog: one scenario per
  paper table/figure (Tables 1-3, Figures 3a-6), the BENCH scale runs, and
  scenarios beyond the paper (flash crowds, Weibull churn, catalog load,
  MapReduce under churn).
* :mod:`repro.experiments.extra` — implementations of the beyond-the-paper
  scenarios.

``python -m repro`` (see :mod:`repro.__main__`) exposes the catalog on the
command line: ``list``, ``describe``, ``run`` and ``sweep``.
"""

from repro.experiments.spec import ScenarioSpec, expand_grid
from repro.experiments.registry import (
    ScenarioDefinition,
    ScenarioRegistry,
    UnknownScenarioError,
)
from repro.experiments.runner import (
    ScenarioResult,
    default_registry,
    run_scenario,
    run_spec,
    run_sweep,
)
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.executor import (
    SweepFailure,
    SweepOutcome,
    derive_point_seed,
    execute_sweep,
)
from repro.experiments.entry import registered_entry_point

__all__ = [
    "ResultCache",
    "ScenarioDefinition",
    "ScenarioRegistry",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepFailure",
    "SweepOutcome",
    "UnknownScenarioError",
    "default_cache_dir",
    "default_registry",
    "derive_point_seed",
    "execute_sweep",
    "expand_grid",
    "registered_entry_point",
    "run_scenario",
    "run_spec",
    "run_sweep",
]
