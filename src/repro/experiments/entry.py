"""Registry-dispatching entry points for the ``repro.bench`` harnesses.

:func:`registered_entry_point` turns a scenario implementation into a public
harness function that keeps the implementation's exact signature, docstring
and return value, but routes every call through the scenario registry — so
``repro.bench.fault.run_fig4(...)`` and ``python -m repro run fig4`` resolve
to the *same* registered scenario spec, and the registry stays the single
dispatch point for experiments.

This module must not import the registry/runner at module level: the bench
modules import it while the scenario catalog (which imports the bench
modules for their implementations) is being built.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable

__all__ = ["registered_entry_point"]


def registered_entry_point(name: str,
                           impl: Callable[..., object]) -> Callable[..., object]:
    """Wrap *impl* so calls dispatch through the scenario registry as *name*."""
    signature = inspect.signature(impl)

    @functools.wraps(impl)
    def entry_point(*args, **kwargs):
        from repro.experiments.runner import run_scenario
        bound = signature.bind(*args, **kwargs)
        params = {}
        for param_name, value in bound.arguments.items():
            kind = signature.parameters[param_name].kind
            if kind == inspect.Parameter.VAR_KEYWORD:
                params.update(value)          # flatten the **kwargs catch-all
            elif kind == inspect.Parameter.VAR_POSITIONAL:
                raise TypeError(
                    f"scenario entry point {name!r} does not support "
                    f"*args parameters")
            else:
                params[param_name] = value
        return run_scenario(name, **params)

    entry_point.scenario_name = name
    entry_point.scenario_impl = impl
    return entry_point
