"""Beyond-the-paper scenarios: new workloads on the reproduced runtime.

The paper's evaluation stops at scripted one-crash-per-interval churn and
steady publication load.  These scenarios push the same mechanisms into
regimes the paper motivates but never measures:

* :func:`run_flash_crowd` — a flash crowd of late joiners hitting an already
  seeded distribution (the desktop-grid registration storm of §2.2); under
  BitTorrent the crowd feeds itself, under FTP it queues on the server
  uplink.
* :func:`run_fig4_weibull` — the Figure 4 replicated-storage setup driven by
  stochastic heavy-tailed (Weibull) availability traces instead of the
  scripted crash-one-start-one sequence, measuring how well ``replica = r,
  fault tolerance = true`` holds the replica set under realistic
  desktop-grid volatility.
* :func:`run_catalog_load` — Table 3's DDC-vs-centralized-catalog comparison
  under a mixed publish + search load (§3.4.1), reporting throughput and
  slowdown for both operations instead of publish alone.
* :func:`run_mapreduce_churn` — the MapReduce word count (the paper's
  future-work abstraction) with mapper hosts crashing mid-job, measuring how
  much of the output survives attribute-driven re-placement.

Each function is a registered scenario (see
:mod:`repro.experiments.scenarios`) and follows the harness conventions of
:mod:`repro.bench`: build a fresh platform, run, return a plain dict.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.attributes import Attribute
from repro.core.runtime import BitDewEnvironment
from repro.net.rpc import ChannelKind, RpcChannel, RpcEndpoint
from repro.net.topology import cluster_topology, dsl_lab_topology
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.storage.database import ConnectionPool, Database
from repro.storage.filesystem import FileContent
from repro.storage.persistence import new_auid
from repro.workloads.traces import ChurnEvent, ChurnScript, availability_trace

__all__ = [
    "run_catalog_load",
    "run_fig4_weibull",
    "run_flash_crowd",
    "run_mapreduce_churn",
]


def run_flash_crowd(
    size_mb: float = 10.0,
    n_initial: int = 5,
    n_crowd: int = 25,
    protocol: str = "bittorrent",
    join_window_s: float = 10.0,
    sync_period_s: float = 2.0,
    monitor_period_s: float = 1.0,
    bittorrent_mode: str = "auto",
    node_link_mbps: float = 125.0,
    server_link_mbps: float = 125.0,
    deadline_s: float = 20_000.0,
    seed: int = 3,
) -> Dict[str, object]:
    """A flash crowd joins an already-seeded distribution.

    ``n_initial`` nodes download a datum scheduled with ``replica = -1``;
    once they all hold it, ``n_crowd`` fresh nodes join within
    ``join_window_s`` seconds and pull the same datum.  Measures each crowd
    member's join→completion latency: under FTP the crowd serialises on the
    server uplink, under BitTorrent the seeded nodes turn the crowd into
    extra capacity.
    """
    if n_initial <= 0 or n_crowd <= 0:
        raise ValueError("n_initial and n_crowd must be positive")
    if join_window_s < 0:
        raise ValueError("join_window_s must be non-negative")
    env = Environment()
    rng = RandomStreams(seed)
    topo = cluster_topology(env, n_workers=n_initial + n_crowd,
                            node_link_mbps=node_link_mbps,
                            server_link_mbps=server_link_mbps)
    from repro.transfer.registry import default_registry
    registry = default_registry(env, topo.network,
                                bittorrent_mode=bittorrent_mode)
    runtime = BitDewEnvironment(
        topo, registry=registry,
        sync_period_s=sync_period_s, monitor_period_s=monitor_period_s,
        seed=seed,
    )
    master = runtime.attach(topo.service_host, auto_sync=False)
    initial_hosts = topo.worker_hosts[:n_initial]
    crowd_hosts = topo.worker_hosts[n_initial:]

    content = FileContent.from_seed("flashcrowd.dat", size_mb)
    published = {}

    def master_program():
        data = yield from master.bitdew.create_data("flashcrowd.dat",
                                                    content=content)
        yield from master.bitdew.put(data, content, protocol=protocol)
        attribute = Attribute(name="flashcrowd", replica=-1, protocol=protocol)
        yield from master.active_data.schedule(data, attribute)
        published["data"] = data
        return data

    setup = env.process(master_program())
    env.run(until=setup)
    data = published["data"]

    initial_agents = runtime.attach_all(initial_hosts)
    while env.now < deadline_s and not all(
            agent.has_content(data.uid) for agent in initial_agents):
        env.run(until=env.now + sync_period_s)
    seeded_at = env.now

    # The crowd: every member joins at an independent instant in the window.
    events = [
        ChurnEvent(time_s=seeded_at + rng.uniform(f"join-{host.name}",
                                                  0.0, join_window_s),
                   host_name=host.name, action="join")
        for host in crowd_hosts
    ]
    script = ChurnScript(runtime, events)
    script.start()

    def crowd_done() -> bool:
        return all(
            host.name in runtime.agents
            and runtime.agents[host.name].has_content(data.uid)
            for host in crowd_hosts)

    while env.now < deadline_s and not crowd_done():
        env.run(until=env.now + sync_period_s)

    rows: List[Dict[str, object]] = []
    for host in crowd_hosts:
        agent = runtime.agents.get(host.name)
        stats = agent.stats.get(data.uid) if agent is not None else None
        completed = stats.download_completed_at if stats is not None else None
        rows.append({
            "host": host.name,
            "joined_at": agent.attached_at if agent is not None else None,
            "completed_at": completed,
            "latency_s": (completed - agent.attached_at
                          if completed is not None else None),
        })
    latencies = [r["latency_s"] for r in rows if r["latency_s"] is not None]
    completed_at = [r["completed_at"] for r in rows
                    if r["completed_at"] is not None]
    return {
        "scenario": "flash-crowd",
        "protocol": protocol,
        "size_mb": float(size_mb),
        "n_initial": n_initial,
        "n_crowd": n_crowd,
        "seeded_at_s": seeded_at,
        "rows": rows,
        "crowd_completed": len(latencies),
        "crowd_completion_s": (max(completed_at) - seeded_at
                               if completed_at else None),
        "mean_latency_s": (sum(latencies) / len(latencies)
                           if latencies else None),
        "max_latency_s": max(latencies) if latencies else None,
    }


def run_fig4_weibull(
    size_mb: float = 5.0,
    replica: int = 5,
    n_workers: int = 12,
    mean_availability_s: float = 150.0,
    mean_unavailability_s: float = 60.0,
    weibull_shape: float = 0.7,
    settle_s: float = 60.0,
    horizon_s: float = 400.0,
    sample_period_s: float = 5.0,
    heartbeat_period_s: float = 1.0,
    timeout_multiplier: float = 3.0,
    sync_period_s: float = 1.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Figure 4's replicated storage under heavy-tailed (Weibull) churn.

    Same platform and attribute as Figure 4 (DSL-Lab, ``replica = r, fault
    tolerance = true, protocol = ftp``) but the hosts follow stochastic
    ON/OFF availability sessions with Weibull-distributed lengths — the
    shape measured on real desktop grids — instead of the paper's scripted
    crash-one-start-one sequence.  Samples the live replica count over time
    and reports how well the runtime holds the replication target.
    """
    if n_workers > 12:
        raise ValueError("DSL-Lab has 12 nodes")
    if sample_period_s <= 0:
        raise ValueError("sample_period_s must be positive")
    if horizon_s <= settle_s:
        raise ValueError(
            f"horizon_s ({horizon_s:g}) must exceed settle_s ({settle_s:g}): "
            f"churn starts only after the replicas settle")
    env = Environment()
    rng = RandomStreams(seed)
    topo = dsl_lab_topology(env, n_workers=n_workers, rng=rng)
    runtime = BitDewEnvironment(
        topo,
        sync_period_s=sync_period_s,
        heartbeat_period_s=heartbeat_period_s,
        timeout_multiplier=timeout_multiplier,
        monitor_period_s=0.5,
        seed=seed,
    )
    master = runtime.attach(topo.service_host, auto_sync=False)
    content = FileContent.from_seed("replicated.dat", size_mb)
    attribute = Attribute(name="replicated", replica=replica,
                          fault_tolerance=True, protocol="ftp")
    published = {}

    def master_program():
        data = yield from master.bitdew.create_data("replicated.dat",
                                                    content=content)
        yield from master.bitdew.put(data, content, protocol="ftp")
        yield from master.active_data.schedule(data, attribute)
        published["data"] = data
        return data

    setup = env.process(master_program())
    env.run(until=setup)
    data = published["data"]

    runtime.attach_all()
    env.run(until=env.now + settle_s)

    trace = availability_trace(
        [h.name for h in topo.worker_hosts],
        horizon_s=horizon_s - settle_s,
        mean_availability_s=mean_availability_s,
        mean_unavailability_s=mean_unavailability_s,
        distribution="weibull",
        weibull_shape=weibull_shape,
        rng=rng.spawn("churn"),
    )
    shifted = [ChurnEvent(time_s=e.time_s + settle_s, host_name=e.host_name,
                          action=e.action) for e in trace]
    script = ChurnScript(runtime, shifted)
    script.start()

    def live_replicas() -> int:
        owners = runtime.data_scheduler.owners_of(data.uid)
        return len([name for name in owners
                    if name in runtime.agents
                    and runtime.agents[name].host.online
                    and runtime.agents[name].has_content(data.uid)])

    samples: List[Dict[str, float]] = []
    while env.now < horizon_s:
        env.run(until=min(horizon_s, env.now + sample_period_s))
        samples.append({"time_s": env.now, "live_replicas": live_replicas()})

    counts = [s["live_replicas"] for s in samples]
    target = min(replica, n_workers)
    return {
        "scenario": "fig4-weibull",
        "replica": replica,
        "n_workers": n_workers,
        "horizon_s": horizon_s,
        "samples": samples,
        "crashes": len([e for e in script.applied if e.action == "crash"]),
        "joins": len([e for e in script.applied if e.action == "join"]),
        "min_live_replicas": min(counts) if counts else 0,
        "mean_live_replicas": (sum(counts) / len(counts)) if counts else 0.0,
        "fraction_at_target": (sum(1 for c in counts if c >= target)
                               / len(counts)) if counts else 0.0,
        "final_live_replicas": counts[-1] if counts else 0,
        "assignments": runtime.data_scheduler.assignments,
    }


def run_catalog_load(
    n_nodes: int = 20,
    pairs_per_node: int = 100,
    searches_per_node: int = 50,
    engine: str = "hsqldb",
    seed: int = 5,
) -> Dict[str, object]:
    """DDC vs centralized Data Catalog under mixed publish + search load.

    Table 3 measures publication alone; here every node interleaves
    ``pairs_per_node`` publishes with ``searches_per_node`` searches of keys
    already published (its own or another node's, chosen under the seed),
    against both catalog implementations: the Chord-based DDC (§3.4.1) and
    the centralized Data Catalog behind RMI.  Reports total time and
    per-operation throughput for each, plus the DDC slowdown.
    """
    if n_nodes <= 0 or pairs_per_node <= 0:
        raise ValueError("n_nodes and pairs_per_node must be positive")
    if searches_per_node < 0:
        raise ValueError("searches_per_node must be non-negative")
    from repro.bench.micro import _ENGINES as engines
    if engine not in engines:
        raise ValueError(
            f"unknown engine {engine!r}; expected {sorted(engines)}")
    rng = RandomStreams(seed)
    node_names = [f"cat-node{i:03d}" for i in range(n_nodes)]
    ops_per_node = pairs_per_node + searches_per_node

    # Deterministic interleave, shared by every node in both phases:
    # Bresenham-style merge of exactly pairs_per_node publishes and
    # searches_per_node searches, spread proportionally, publish first.
    plan: List[str] = []
    publishes = searches = 0
    while publishes < pairs_per_node or searches < searches_per_node:
        if publishes < pairs_per_node and (
                searches >= searches_per_node
                or publishes * searches_per_node <= searches * pairs_per_node):
            plan.append("publish")
            publishes += 1
        else:
            plan.append("search")
            searches += 1

    def search_key(name: str, done: List[str], index: int) -> str:
        pick = rng.choice(f"search-{name}-{index}", len(done))
        return done[pick]

    # ---------------- DDC (DHT) ----------------
    from repro.dht.chord import ChordRing
    from repro.dht.ddc import DistributedDataCatalog
    env = Environment()
    ddc = DistributedDataCatalog(env, ChordRing(replication=2))
    for name in node_names:
        ddc.join(name)
    published_keys: List[str] = []

    def ddc_client(name: str):
        index = 0
        for op in plan:
            if op == "publish":
                key = new_auid(f"{name}-{index}")
                yield from ddc.publish(key, name, origin=name)
                published_keys.append(key)
            else:
                yield from ddc.search(
                    search_key(name, published_keys, index), origin=name)
            index += 1

    processes = [env.process(ddc_client(name)) for name in node_names]
    env.run(until=env.all_of(processes))
    ddc_total_s = env.now

    # ---------------- DC (centralized, RMI remote) ----------------
    env2 = Environment()
    engine_profile = engines[engine]()
    from repro.services.data_catalog import DataCatalogService
    database = Database(env2, engine=engine_profile,
                        pool=ConnectionPool(env2, engine_profile, size=8),
                        copy_objects=False)
    catalog = DataCatalogService(database)
    endpoint = RpcEndpoint(catalog, name="DataCatalog")
    dc_published: List[str] = []

    def dc_client(name: str):
        rpc = RpcChannel(env2, ChannelKind.RMI_REMOTE)
        index = 0
        for op in plan:
            if op == "publish":
                key = new_auid(f"{name}-{index}")
                yield from rpc.invoke(endpoint, "publish_pair", key, name)
                dc_published.append(key)
            else:
                yield from rpc.invoke(
                    endpoint, "lookup_pair",
                    search_key(name, dc_published, index))
            index += 1

    processes2 = [env2.process(dc_client(name)) for name in node_names]
    env2.run(until=env2.all_of(processes2))
    dc_total_s = env2.now

    total_ops = n_nodes * ops_per_node
    return {
        "scenario": "catalog-load",
        "n_nodes": float(n_nodes),
        "pairs_per_node": float(pairs_per_node),
        "searches_per_node": float(searches_per_node),
        "total_ops": float(total_ops),
        "ddc_total_s": ddc_total_s,
        "dc_total_s": dc_total_s,
        "ddc_ops_per_s": total_ops / ddc_total_s if ddc_total_s > 0 else float("inf"),
        "dc_ops_per_s": total_ops / dc_total_s if dc_total_s > 0 else float("inf"),
        "ddc_publishes": float(ddc.publish_count),
        "ddc_searches": float(ddc.search_count),
        "ddc_mean_hops": (ddc.total_hops
                          / max(1, ddc.publish_count + ddc.search_count)),
        "slowdown_ratio": ddc_total_s / dc_total_s if dc_total_s > 0 else float("inf"),
    }


def run_mapreduce_churn(
    n_workers: int = 8,
    n_map_slices: int = 6,
    n_reducers: int = 2,
    corpus_repeats: int = 30,
    crash_mappers: int = 2,
    crash_at_s: float = 1.0,
    map_cost_s_per_mb: float = 500.0,
    straggler_grace_s: float = 10.0,
    sync_period_s: float = 1.0,
    deadline_s: float = 300.0,
    seed: int = 9,
) -> Dict[str, object]:
    """MapReduce word count with mapper hosts crashing mid-job.

    Runs the paper's future-work MapReduce abstraction (word count over a
    deterministic corpus) on a cluster, then crashes ``crash_mappers``
    mapper hosts at ``crash_at_s`` — early enough that their input slices
    are still in flight, so their map tasks never run.  Intermediate data
    that reached the stable repository survives (the shuffle is plain data
    placement); the reducers stop waiting for the dead mappers after
    ``straggler_grace_s`` seconds of stalled map progress and reduce what
    arrived.  Reports how much of the expected word count the job still
    produced and how long it took.
    """
    if n_workers < 3:
        raise ValueError("need at least 3 workers (mappers + reducers)")
    if crash_mappers < 0:
        raise ValueError("crash_mappers must be non-negative")
    from repro.apps.mapreduce import MapReduceJob
    corpus = (
        "bitdew schedules data to hosts through replica affinity lifetime "
        "fault tolerance and protocol attributes the computation follows "
        "the data under churn the attributes keep the data alive "
    ) * corpus_repeats
    payload = corpus.encode("utf-8")
    expected_words = len(corpus.split())

    env = Environment()
    topo = cluster_topology(env, n_workers=n_workers)
    runtime = BitDewEnvironment(topo, sync_period_s=sync_period_s,
                                monitor_period_s=0.2, max_data_schedule=8,
                                seed=seed)
    job = MapReduceJob(runtime, master_host=topo.service_host,
                       input_payload=payload,
                       n_map_slices=n_map_slices, n_reducers=n_reducers,
                       map_cost_s_per_mb=map_cost_s_per_mb,
                       straggler_grace_s=straggler_grace_s)
    job.assign_workers()

    victims = [agent.host.name for agent in job.mappers[:crash_mappers]]
    if victims:
        script = ChurnScript(runtime, [
            ChurnEvent(time_s=crash_at_s, host_name=name, action="crash")
            for name in victims
        ])
        script.start()

    result = job.run(deadline_s=deadline_s, poll_s=2.0)
    produced_words = sum(result.output.values())
    return {
        "scenario": "mapreduce-churn",
        "n_workers": n_workers,
        "n_map_slices": n_map_slices,
        "n_reducers": n_reducers,
        "crash_mappers": crash_mappers,
        "crashed_hosts": victims,
        "crash_at_s": crash_at_s,
        "map_tasks": result.map_tasks,
        "map_failures": result.map_failures,
        "reduce_tasks": result.reduce_tasks,
        "intermediate_data": result.intermediate_data,
        "makespan_s": result.makespan_s,
        "expected_words": expected_words,
        "produced_words": produced_words,
        "output_fraction": (produced_words / expected_words
                            if expected_words else 0.0),
        "distinct_words": len(result.output),
    }
