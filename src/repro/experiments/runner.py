"""Resolve scenario specs against the registry and run them reproducibly.

The runner is deliberately thin: a scenario's physics lives in its runner
callable; this module contributes (a) name → definition → fully-resolved
:class:`~repro.experiments.spec.ScenarioSpec` resolution, (b) deterministic
serialisation of the outcome (same spec, same seed → byte-identical JSON),
and (c) cartesian parameter sweeps.

Serialisation scrubs each definition's ``volatile_keys`` — wall-clock
timings and non-JSON report objects — recursively from the results, so that
the JSON written by ``python -m repro run --out`` only contains simulated,
seed-reproducible quantities.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.registry import ScenarioDefinition, ScenarioRegistry
from repro.experiments.spec import ScenarioSpec, expand_grid

__all__ = [
    "ScenarioResult",
    "default_registry",
    "json_safe",
    "run_scenario",
    "run_spec",
    "run_sweep",
]


_DEFAULT_REGISTRY: Optional[ScenarioRegistry] = None


def default_registry() -> ScenarioRegistry:
    """The process-wide registry, populated with the built-in catalog.

    The catalog module imports the bench harnesses, which in turn resolve
    their entry points through this function — hence the lazy import.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        from repro.experiments import scenarios
        _DEFAULT_REGISTRY = scenarios.build_registry()
    return _DEFAULT_REGISTRY


def json_safe(value, scrub: Sequence[str] = ()):
    """Recursively shape *value* for deterministic JSON serialisation.

    Dict keys named in *scrub* are dropped at any depth; tuples/sets become
    lists (sets sorted); anything JSON cannot represent is replaced by its
    ``repr`` — with memory addresses (``at 0x...``) scrubbed, so the
    byte-identical-output contract survives even an object a scenario forgot
    to declare in its ``volatile_keys``.
    """
    if isinstance(value, Mapping):
        return {str(key): json_safe(item, scrub)
                for key, item in value.items() if str(key) not in scrub}
    if isinstance(value, (list, tuple)):
        return [json_safe(item, scrub) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(item, scrub) for item in value)
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    return re.sub(r" at 0x[0-9a-fA-F]+", "", repr(value))


@dataclass
class ScenarioResult:
    """The outcome of one scenario run: the resolved spec plus raw results."""

    spec: ScenarioSpec
    results: object
    definition: ScenarioDefinition

    def to_dict(self) -> Dict[str, object]:
        """The serialisable form: spec echo + scrubbed results."""
        return {
            "spec": json_safe(self.spec.to_dict()),
            "scenario": self.spec.scenario,
            "paper_ref": self.definition.paper_ref,
            "results": json_safe(self.results, self.definition.volatile_keys),
        }

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, fixed indent, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


_AUID_BASELINE: Optional[int] = None


def run_spec(spec: ScenarioSpec,
             registry: Optional[ScenarioRegistry] = None) -> ScenarioResult:
    """Run a (possibly partial) spec; unspecified params take their defaults."""
    from repro.storage.persistence import auid_counter_state, set_auid_counter
    global _AUID_BASELINE
    registry = registry if registry is not None else default_registry()
    definition = registry.get(spec.scenario)
    resolved = definition.spec(**spec.params)
    # Every run starts from the same AUID-counter state: uids come from a
    # process-wide counter (already advanced by import-time objects like
    # DEFAULT_ATTRIBUTE), and a scenario whose results depend on uid hash
    # placement (the elastic-fabric ring) would otherwise differ between a
    # fresh worker process and the Nth run of a serial sweep.  The first
    # run in the process defines the baseline; later runs rewind to it.
    if _AUID_BASELINE is None:
        _AUID_BASELINE = auid_counter_state()
    else:
        set_auid_counter(_AUID_BASELINE)
    results = definition.runner(**resolved.params)
    return ScenarioResult(spec=resolved, results=results, definition=definition)


def run_scenario(name: str,
                 registry: Optional[ScenarioRegistry] = None,
                 **params: object):
    """Run a registered scenario by name and return its *raw* results.

    This is the dispatch path of the ``repro.bench`` entry points: the call
    is validated against the registered parameter schema and executed through
    the same resolved-spec machinery as the CLI.
    """
    return run_spec(ScenarioSpec(scenario=name, params=dict(params)),
                    registry=registry).results


def run_sweep(
    name: str,
    grid: Mapping[str, Sequence[object]],
    base_params: Optional[Mapping[str, object]] = None,
    registry: Optional[ScenarioRegistry] = None,
    *,
    jobs: int = 1,
    cache=None,
    retries: int = 0,
    derive_seeds: bool = False,
    progress=None,
) -> List[ScenarioResult]:
    """Run the cartesian product of *grid* over scenario *name*.

    ``base_params`` applies to every run; each grid combination overrides it.
    Returns one :class:`ScenarioResult` per combination, in grid order.

    With the defaults this is the original in-process serial path and the
    returned results carry the runner's *raw* (unscrubbed) output.  Passing
    ``jobs`` > 1, a :class:`~repro.experiments.cache.ResultCache`,
    ``retries`` or ``derive_seeds`` routes through the sweep executor
    (:func:`repro.experiments.executor.execute_sweep`): results then hold
    the *serialised* (volatile-key-scrubbed) run documents — serialising
    either form yields byte-identical sweep JSON — and a point that keeps
    raising aborts with :class:`~repro.experiments.executor.SweepFailure`
    instead of propagating the bare exception.
    """
    registry = registry if registry is not None else default_registry()
    if jobs <= 1 and cache is None and retries == 0 \
            and not derive_seeds and progress is None:
        base = dict(base_params or {})
        results = []
        for overrides in expand_grid(grid):
            params = dict(base)
            params.update(overrides)
            results.append(run_spec(ScenarioSpec(scenario=name, params=params),
                                    registry=registry))
        return results

    from repro.experiments.executor import SweepFailure, execute_sweep
    outcome = execute_sweep(
        name, grid, base_params=base_params, registry=registry, jobs=jobs,
        cache=cache, retries=retries, progress=progress,
        derive_seeds=derive_seeds)
    if not outcome.ok:
        failures = outcome.failures()
        first = failures[0].failure
        raise SweepFailure(
            f"{len(failures)} of {outcome.stats.points} sweep points failed; "
            f"first: {first.error}: {first.message}", failures)
    definition = registry.get(name)
    return [
        ScenarioResult(spec=ScenarioSpec.from_dict(point.run["spec"]),
                       results=point.run["results"],
                       definition=definition)
        for point in outcome.points
    ]


def sweep_to_dict(name: str, grid: Mapping[str, Sequence[object]],
                  runs: Sequence[ScenarioResult]) -> Dict[str, object]:
    """Serialisable form of a sweep: the grid plus every run's spec/results."""
    return {
        "scenario": name,
        "grid": {axis: list(values) for axis, values in sorted(grid.items())},
        "runs": [run.to_dict() for run in runs],
    }


__all__.append("sweep_to_dict")
