"""Scenario registry: the plug-in point for declarative experiments.

Mirrors :mod:`repro.transfer.registry`: scenarios are registered by name and
resolved by name, so new experiments plug into the catalog (and the
``python -m repro`` CLI) without touching any dispatch code.  A
:class:`ScenarioDefinition` couples the runner callable with its provenance
(the paper section/figure it reproduces, a one-line title, tags) and with the
parameter schema introspected from the runner's signature — the registry is
the single source of truth for scenario defaults.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.experiments.spec import ScenarioSpec

__all__ = ["ScenarioDefinition", "ScenarioRegistry", "UnknownScenarioError"]


class UnknownScenarioError(KeyError):
    """Raised when a scenario name nobody registered is requested."""


@dataclass(frozen=True)
class ScenarioDefinition:
    """A registered scenario: runner + provenance + parameter schema."""

    name: str
    runner: Callable[..., object]
    title: str
    paper_ref: str = ""                  # e.g. "Figure 4 (§4.4)" or "beyond the paper"
    group: str = "paper"                 # "paper" | "scale" | "extra"
    tags: Tuple[str, ...] = ()
    #: result keys scrubbed (recursively) from serialised output: wall-clock
    #: measurements and non-JSON objects; the in-memory result keeps them.
    volatile_keys: Tuple[str, ...] = ()

    @property
    def module(self) -> str:
        return getattr(self.runner, "__module__", "")

    @property
    def description(self) -> str:
        doc = inspect.getdoc(self.runner) or ""
        return doc.strip()

    @property
    def summary(self) -> str:
        """First line of the runner's docstring (falls back to the title)."""
        return self.description.splitlines()[0] if self.description else self.title

    # -- parameter schema ---------------------------------------------------
    def parameters(self) -> Dict[str, object]:
        """Name → default for every keyword parameter of the runner.

        Parameters without a default map to ``inspect.Parameter.empty`` (the
        caller must supply them).
        """
        out: Dict[str, object] = {}
        for param in inspect.signature(self.runner).parameters.values():
            if param.kind in (inspect.Parameter.VAR_POSITIONAL,
                              inspect.Parameter.VAR_KEYWORD):
                continue
            out[param.name] = param.default
        return out

    def accepts_extra_params(self) -> bool:
        """True when the runner has a ``**kwargs`` catch-all."""
        return any(p.kind == inspect.Parameter.VAR_KEYWORD
                   for p in inspect.signature(self.runner).parameters.values())

    def accepts(self, name: str) -> bool:
        return name in self.parameters() or self.accepts_extra_params()

    @property
    def seeded(self) -> bool:
        return self.accepts("seed")

    # -- spec construction --------------------------------------------------
    def spec(self, **overrides: object) -> ScenarioSpec:
        """A fully-resolved spec: signature defaults merged with overrides.

        Unknown override names raise ``ValueError`` unless the runner accepts
        ``**kwargs``; parameters that have no default and no override raise
        too, so a returned spec is always runnable.
        """
        params = {name: default for name, default in self.parameters().items()
                  if default is not inspect.Parameter.empty}
        known = set(self.parameters())
        for key, value in overrides.items():
            if key not in known and not self.accepts_extra_params():
                raise ValueError(
                    f"scenario {self.name!r} has no parameter {key!r}; "
                    f"known parameters: {sorted(known)}")
            params[key] = value
        missing = [name for name, default in self.parameters().items()
                   if default is inspect.Parameter.empty and name not in params]
        if missing:
            raise ValueError(
                f"scenario {self.name!r} requires parameters {missing}")
        return ScenarioSpec(scenario=self.name, params=params)

    def cli_example(self) -> str:
        """A ready-to-paste CLI invocation for this scenario."""
        return f"python -m repro run {self.name} --out results.json"


class ScenarioRegistry:
    """Maps scenario names to :class:`ScenarioDefinition`."""

    def __init__(self):
        self._definitions: Dict[str, ScenarioDefinition] = {}

    # -- registration -------------------------------------------------------
    def register(
        self,
        name: str,
        runner: Callable[..., object],
        title: str,
        paper_ref: str = "",
        group: str = "paper",
        tags: Iterable[str] = (),
        volatile_keys: Iterable[str] = (),
        replace: bool = False,
    ) -> ScenarioDefinition:
        key = name.lower()
        if key in self._definitions and not replace:
            raise ValueError(f"scenario {name!r} already registered")
        definition = ScenarioDefinition(
            name=key, runner=runner, title=title, paper_ref=paper_ref,
            group=group, tags=tuple(tags), volatile_keys=tuple(volatile_keys),
        )
        self._definitions[key] = definition
        return definition

    def scenario(self, name: str, **kwargs):
        """Decorator form of :meth:`register` for scenario implementations."""
        def decorate(runner: Callable[..., object]):
            self.register(name, runner, **kwargs)
            return runner
        return decorate

    # -- resolution ---------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._definitions)

    def supports(self, name: str) -> bool:
        return name.lower() in self._definitions

    def get(self, name: str) -> ScenarioDefinition:
        key = name.lower()
        definition = self._definitions.get(key)
        if definition is None:
            close = difflib.get_close_matches(key, self.names(), n=3)
            hint = f"; did you mean {close}?" if close else ""
            raise UnknownScenarioError(
                f"no scenario registered under {name!r}{hint} "
                f"(known scenarios: {self.names()})")
        return definition

    def definitions(self, group: Optional[str] = None) -> List[ScenarioDefinition]:
        out = [self._definitions[name] for name in self.names()]
        if group is not None:
            out = [d for d in out if d.group == group]
        return out

    def __len__(self) -> int:
        return len(self._definitions)

    def __contains__(self, name: str) -> bool:
        return self.supports(name)
