"""The built-in scenario catalog: every experiment this repo can run.

One registered scenario per table/figure of the paper (the implementations
live next to their harness modules in :mod:`repro.bench`), plus the BENCH
scale runs and the beyond-the-paper scenarios of
:mod:`repro.experiments.extra`.  ``docs/EXPERIMENTS.md`` documents the full
catalog with paper references and CLI invocations.

:func:`build_registry` constructs a fresh registry holding the catalog; the
process-wide instance is served by
:func:`repro.experiments.runner.default_registry`.
"""

from __future__ import annotations

from repro.experiments.registry import ScenarioRegistry

# The bench modules import only repro.experiments.entry at module level, so
# importing their private implementations here is cycle-free.
from repro.bench.blast import _run_blast_once, _run_fig5, _run_fig6
from repro.bench.elastic import _run_fabric_autoscale, _run_fabric_rebalance
from repro.bench.fabric import _run_fabric_failover, _run_fabric_scale
from repro.bench.federation import (_run_federation_flash_crowd,
                                    _run_federation_partition_heal,
                                    _run_federation_sovereignty)
from repro.bench.fault import _run_fig4
from repro.bench.micro import (
    _run_table2,
    _run_table2_cell,
    _run_table3,
    _table1_testbed,
)
from repro.bench.scale import (
    _run_completion_curve,
    _run_scale_grid,
    _run_scale_grid_100k,
    _run_scale_grid_300k,
    _run_sync_storm,
)
from repro.bench.sweep import _run_sweep_parallel
from repro.bench.transfer import (
    _run_distribution,
    _run_fig3a,
    _run_fig3bc,
    _run_ftp_alone,
)
from repro.experiments.extra import (
    run_catalog_load,
    run_fig4_weibull,
    run_flash_crowd,
    run_mapreduce_churn,
)

__all__ = ["build_registry"]

#: wall-clock keys of the scale harnesses: real, not simulated, time
#: (events_per_sec is wall-clock-derived throughput, equally volatile).
_WALL_KEYS = ("wall_s", "setup_wall_s", "storm_walls_s", "events_per_sec")


def build_registry() -> ScenarioRegistry:
    """A fresh registry populated with the built-in scenario catalog."""
    registry = ScenarioRegistry()

    # ---------------------------------------------------------------- paper
    registry.register(
        "table1", _table1_testbed,
        title="Testbed hardware configuration",
        paper_ref="Table 1 (§4.1)", group="paper", tags=("micro",))
    registry.register(
        "table2", _run_table2,
        title="Data-slot creation rate, all 12 engine/pool/channel cells",
        paper_ref="Table 2 (§4.2)", group="paper", tags=("micro",))
    registry.register(
        "table2-cell", _run_table2_cell,
        title="One cell of the data-slot creation-rate grid",
        paper_ref="Table 2 (§4.2)", group="paper", tags=("micro",))
    registry.register(
        "table3", _run_table3,
        title="Publish rate: Distributed Data Catalog vs centralized DC",
        paper_ref="Table 3 (§4.2, §3.4.1)", group="paper", tags=("micro", "dht"))
    registry.register(
        "ftp-alone", _run_ftp_alone,
        title="Baseline file distribution with raw FTP, no BitDew runtime",
        paper_ref="Figure 3b/3c baseline (§4.3)", group="paper",
        tags=("transfer",))
    registry.register(
        "distribution", _run_distribution,
        title="One BitDew-driven file distribution (any protocol)",
        paper_ref="Figure 3 building block (§4.3)", group="paper",
        tags=("transfer",))
    registry.register(
        "fig3a", _run_fig3a,
        title="Distribution completion-time grid, FTP vs BitTorrent",
        paper_ref="Figure 3a (§4.3)", group="paper", tags=("transfer",))
    registry.register(
        "fig3bc", _run_fig3bc,
        title="BitDew+FTP vs FTP-alone overhead (percent and seconds)",
        paper_ref="Figures 3b-3c (§4.3)", group="paper", tags=("transfer",))
    registry.register(
        "fig4", _run_fig4,
        title="Fault-tolerant replicated storage under scripted churn",
        paper_ref="Figure 4 (§4.4)", group="paper", tags=("churn",))
    registry.register(
        "blast", _run_blast_once,
        title="One BLAST master/worker run",
        paper_ref="Figures 5-6 building block (§5)", group="paper",
        tags=("apps",), volatile_keys=("report",))
    registry.register(
        "fig5", _run_fig5,
        title="BLAST total execution time vs worker count, per protocol",
        paper_ref="Figure 5 (§5)", group="paper", tags=("apps",),
        volatile_keys=("report",))
    registry.register(
        "fig6", _run_fig6,
        title="BLAST per-cluster breakdown (transfer/unzip/execution)",
        paper_ref="Figure 6 (§5)", group="paper", tags=("apps",),
        volatile_keys=("report",))

    # ---------------------------------------------------------------- scale
    registry.register(
        "sync-storm", _run_sync_storm,
        title="N simultaneous downloads from one server, repeated rounds",
        paper_ref="beyond the paper (BENCH trajectory)", group="scale",
        tags=("bench",), volatile_keys=_WALL_KEYS)
    registry.register(
        "completion-curve", _run_completion_curve,
        title="Completion time vs worker count past the paper's grid",
        paper_ref="beyond the paper (Figure 3a shape at scale)",
        group="scale", tags=("bench",), volatile_keys=_WALL_KEYS)
    registry.register(
        "scale-grid", _run_scale_grid,
        title="Full runtime at ≥1000 hosts × ≥5000 data items",
        paper_ref="beyond the paper (BENCH trajectory)", group="scale",
        tags=("bench",), volatile_keys=_WALL_KEYS)
    registry.register(
        "scale-grid-100k", _run_scale_grid_100k,
        title="Cohort-batched placement storm at ≥100k hosts",
        paper_ref="beyond the paper (BENCH trajectory)", group="scale",
        tags=("bench", "kernel"),
        volatile_keys=_WALL_KEYS + ("run_wall_s",))
    registry.register(
        "scale-grid-300k", _run_scale_grid_300k,
        title="Batched-placement storm at 300k hosts (array calendar)",
        paper_ref="beyond the paper (BENCH trajectory)", group="scale",
        tags=("bench", "kernel"),
        volatile_keys=_WALL_KEYS + ("run_wall_s",))
    registry.register(
        "fabric-scale", _run_fabric_scale,
        title="Flash-crowd sync storm: centralized container vs sharded fabric",
        paper_ref="beyond the paper (distributed services, §3.4; BENCH trajectory)",
        group="scale", tags=("bench", "fabric"))
    registry.register(
        "fabric-failover", _run_fabric_failover,
        title="Service-host crash: heartbeat-driven shard failover and recovery",
        paper_ref="beyond the paper (service architecture, §3.1/§3.4)",
        group="scale", tags=("bench", "fabric", "churn"))
    registry.register(
        "fabric-rebalance", _run_fabric_rebalance,
        title="Live shard split+merge under traffic: zero-loss key migration",
        paper_ref="beyond the paper (service architecture, §3.1/§3.4)",
        group="scale", tags=("bench", "fabric"))
    registry.register(
        "fabric-autoscale", _run_fabric_autoscale,
        title="SLO-driven autoscaler on a diurnal trace: fixed vs elastic shards",
        paper_ref="beyond the paper (service architecture, §3.1/§3.4)",
        group="scale", tags=("bench", "fabric"))
    registry.register(
        "federation-flash-crowd", _run_federation_flash_crowd,
        title="Cross-domain flash crowd: WAN replication vs per-worker fetches",
        paper_ref="beyond the paper (multi-cluster deployments, §5; BENCH trajectory)",
        group="scale", tags=("bench", "federation"))
    registry.register(
        "federation-partition-heal", _run_federation_partition_heal,
        title="WAN partition mid-replication: exactly-once catch-up after healing",
        paper_ref="beyond the paper (fault tolerance, §3.5)",
        group="scale", tags=("bench", "federation", "churn"))
    registry.register(
        "federation-sovereignty", _run_federation_sovereignty,
        title="Trust allowlists + visibility: policy-constrained placement",
        paper_ref="beyond the paper (data attributes, §3.2)",
        group="scale", tags=("bench", "federation"))
    registry.register(
        "sweep-parallel", _run_sweep_parallel,
        title="Sweep executor throughput: serial vs process pool vs cache",
        paper_ref="beyond the paper (BENCH trajectory)", group="scale",
        tags=("bench", "sweep"),
        volatile_keys=("serial_wall_s", "parallel_wall_s", "warm_wall_s",
                       "speedup", "warm_speedup"))

    # ---------------------------------------------------------------- extra
    registry.register(
        "flash-crowd", run_flash_crowd,
        title="A flash crowd of late joiners hits a seeded distribution",
        paper_ref="beyond the paper (motivated by §2.2)", group="extra",
        tags=("transfer", "churn"))
    registry.register(
        "fig4-weibull", run_fig4_weibull,
        title="Figure 4's replicated storage under Weibull churn traces",
        paper_ref="beyond the paper (Figure 4 setup, §4.4)", group="extra",
        tags=("churn",))
    registry.register(
        "catalog-load", run_catalog_load,
        title="DDC vs centralized catalog under mixed publish+search load",
        paper_ref="beyond the paper (Table 3 setup, §3.4.1)", group="extra",
        tags=("micro", "dht"))
    registry.register(
        "mapreduce-churn", run_mapreduce_churn,
        title="MapReduce word count with mapper crashes mid-job",
        paper_ref="beyond the paper (conclusion / future work)",
        group="extra", tags=("apps", "churn"))

    return registry
