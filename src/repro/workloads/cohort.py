"""Array-backed host cohorts: 100k hosts without 100k Python processes.

The full runtime (:class:`~repro.core.runtime.BitDewEnvironment`) drives
every volatile host with its own generator pair (sync loop + heartbeat
loop).  That is the right model for churn experiments, but at ≥100k hosts
the per-process overhead — 2·N generators, 2·N timer events per period,
N RPC round-trips per storm — dominates the wall clock long before the
event kernel does.

For scale benchmarks over *identical* hosts the per-host processes carry
no information: every host in a block behaves the same way.  A
:class:`HostCohort` therefore batches a block of hosts behind **one**
generator:

* per-host quantities (download counts, transferred MB, completion
  times) live in numpy arrays indexed by the host's position in the
  cohort, not in per-host agent objects;
* one :func:`cohort_sync_process` drives the whole block's
  sync→download→confirm cycle: it calls the Data Scheduler's pure
  ``compute_schedule`` once per host, starts the resulting transfers on
  the shared flow network, and waits for the block's flows with a single
  ``AllOf`` — so a synchronisation round costs the cohort one event plus
  one per distinct completion time, instead of ≥4 events per host;
* one :func:`cohort_heartbeat_process` replaces N per-host heartbeat
  timers with a single periodic timer that accounts N heartbeats.

Simulated times are unaffected by the batching: the flows, their
constraint sets and the sync decision sequence are exactly the ones the
per-host loops would produce for the same visit order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the toolchain
    _np = None

from repro.net.host import Host

__all__ = [
    "HostCohort",
    "build_cohorts",
    "cohort_heartbeat_process",
    "cohort_sync_process",
]


class HostCohort:
    """A block of identical hosts sharing one driver generator."""

    __slots__ = ("index", "hosts", "cached", "downloads", "bytes_mb",
                 "completion_s", "syncs", "heartbeats")

    def __init__(self, index: int, hosts: Sequence[Host]):
        if _np is None:  # pragma: no cover - numpy is baked in
            raise RuntimeError("host cohorts require numpy")
        if not hosts:
            raise ValueError("a cohort needs at least one host")
        self.index = index
        self.hosts: List[Host] = list(hosts)
        n = len(self.hosts)
        #: per-host cache content (uid sets stay tiny: max_data_schedule
        #: new items per sync), everything countable is an array below
        self.cached: List[set] = [set() for _ in range(n)]
        self.downloads = _np.zeros(n, dtype=_np.int64)
        self.bytes_mb = _np.zeros(n, dtype=_np.float64)
        #: simulated completion time of each host's last download (-1 = none)
        self.completion_s = _np.full(n, -1.0, dtype=_np.float64)
        self.syncs = 0
        self.heartbeats = 0

    def __len__(self) -> int:
        return len(self.hosts)

    @property
    def total_downloads(self) -> int:
        return int(self.downloads.sum())

    @property
    def total_bytes_mb(self) -> float:
        return float(self.bytes_mb.sum())

    @property
    def last_completion_s(self) -> float:
        return float(self.completion_s.max())


def build_cohorts(hosts: Sequence[Host], cohort_size: int) -> List[HostCohort]:
    """Partition *hosts* into blocks of ``cohort_size`` (last may be short)."""
    if cohort_size <= 0:
        raise ValueError("cohort_size must be positive")
    return [HostCohort(i, hosts[start:start + cohort_size])
            for i, start in enumerate(range(0, len(hosts), cohort_size))]


def cohort_sync_process(
    env,
    cohort: HostCohort,
    sync: Callable[[str, set], object],
    transfer: Callable[[Host, str], object],
    size_mb_of: Dict[str, float],
    rounds: int,
    stagger_s: float = 0.0,
    sync_gap_s: float = 1.0,
    sync_batch: Optional[Callable[[List[str], List[set]], list]] = None,
):
    """One generator running the sync→download cycle for a whole cohort.

    ``sync(host_name, cached_uids)`` is the pure scheduling decision
    (``DataSchedulerService.compute_schedule``); ``transfer(host, uid)``
    starts the download flow and returns it.  Hosts are visited in cohort
    order, so the assignment sequence is deterministic.

    ``sync_batch(host_names, cached_uids_per_host)``, when given, replaces
    the per-host ``sync`` calls of a round with **one** batched placement
    call (``DataSchedulerService.compute_schedule_batch``).  All of a
    round's syncs already happen at the same simulated instant in cohort
    order, so the batched call is transparent: same per-host results, same
    simulated quantities, one Python call per round instead of N.
    """
    if stagger_s > 0:
        yield env.timeout(stagger_s * cohort.index)
    host_names = [host.name for host in cohort.hosts]
    for _round in range(rounds):
        flows = []
        if sync_batch is not None:
            results = sync_batch(host_names, cohort.cached)
            cohort.syncs += len(cohort.hosts)
            for i, result in enumerate(results):
                host = cohort.hosts[i]
                for uid in result.to_download:
                    flows.append((i, uid, transfer(host, uid)))
        else:
            for i, host in enumerate(cohort.hosts):
                result = sync(host.name, cohort.cached[i])
                cohort.syncs += 1
                for uid in result.to_download:
                    flows.append((i, uid, transfer(host, uid)))
        if flows:
            yield env.all_of([flow.done for _i, _uid, flow in flows])
            for i, uid, flow in flows:
                cohort.cached[i].add(uid)
                cohort.downloads[i] += 1
                cohort.bytes_mb[i] += size_mb_of[uid]
                cohort.completion_s[i] = flow.end_time
        if sync_gap_s > 0:
            yield env.timeout(sync_gap_s)


def cohort_heartbeat_process(
    env,
    cohort: HostCohort,
    period_s: float,
    duration_s: float,
    beat: Optional[Callable[[HostCohort, int], None]] = None,
):
    """One generator multiplexing the cohort's per-host heartbeat timers.

    ``period_s`` is the *per-host* heartbeat period.  N hosts beating every
    ``period_s`` arrive, evenly interleaved, as one event every
    ``period_s / N`` — so the cohort needs a single generator whose timer
    fires at the aggregate arrival rate, not N timers.  Every tick accounts
    exactly one host's heartbeat (round-robin over the cohort), preserving
    the kernel-level event density of per-host timers: this is the
    timer-heavy traffic the calendar-queue scheduler is built for.
    """
    if period_s <= 0 or duration_s <= 0:
        return
    tick_s = period_s / len(cohort.hosts)
    ticks = int(duration_s / period_s) * len(cohort.hosts)
    # The no-observer loop is the kernel benchmark's inner loop (one event
    # per tick, ~10⁶ per run): bind the timeout factory once and skip the
    # per-tick beat check.
    timeout = env.timeout
    if beat is None:
        for _tick in range(ticks):
            yield timeout(tick_s)
            cohort.heartbeats += 1
    else:
        for tick in range(ticks):
            yield timeout(tick_s)
            cohort.heartbeats += 1
            beat(cohort, tick % len(cohort.hosts))
