"""Workload and volatility generators used by the experiments.

* :mod:`repro.workloads.generator` — file-size sweeps, parameter-sweep task
  sets and the "filecule" grouped-file workloads that motivate BitDew (§2.2).
* :mod:`repro.workloads.traces` — host availability / churn traces
  (exponential and Weibull session models, plus the scripted
  crash-one-start-one scenario of the Figure 4 fault-tolerance experiment).
* :mod:`repro.workloads.cohort` — array-backed host cohorts: blocks of
  identical hosts driven by one generator each, for the 100k-host scale
  benchmarks.
"""

from repro.workloads.cohort import (
    HostCohort,
    build_cohorts,
    cohort_heartbeat_process,
    cohort_sync_process,
)
from repro.workloads.generator import (
    FileSpec,
    filecule_group,
    parameter_sweep_tasks,
    transfer_matrix,
)
from repro.workloads.traces import (
    ChurnEvent,
    ChurnScript,
    availability_trace,
    crash_replace_script,
)

__all__ = [
    "ChurnEvent",
    "ChurnScript",
    "FileSpec",
    "HostCohort",
    "availability_trace",
    "build_cohorts",
    "cohort_heartbeat_process",
    "cohort_sync_process",
    "crash_replace_script",
    "filecule_group",
    "parameter_sweep_tasks",
    "transfer_matrix",
]
