"""Host availability / churn traces.

Two generators are provided:

* :func:`availability_trace` — stochastic ON/OFF session traces per host
  (exponential or Weibull session lengths), the standard way to model
  desktop-grid volatility; used by the volatility stress tests.
* :func:`crash_replace_script` — the scripted scenario of the paper's
  Figure 4 fault-tolerance experiment: every ``interval_s`` seconds one host
  currently owning the datum is killed and a fresh host joins.

:class:`ChurnScript` can replay either kind of event list inside a
simulation against a :class:`~repro.core.runtime.BitDewEnvironment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams

__all__ = [
    "ChurnEvent",
    "ChurnScript",
    "availability_trace",
    "crash_replace_script",
]


@dataclass(frozen=True)
class ChurnEvent:
    """One availability transition of one host."""

    time_s: float
    host_name: str
    action: str                    # "crash" | "join"

    def __post_init__(self):
        if self.action not in ("crash", "join"):
            raise ValueError("action must be 'crash' or 'join'")
        if self.time_s < 0:
            raise ValueError("time_s must be non-negative")


def availability_trace(
    host_names: Sequence[str],
    horizon_s: float,
    mean_availability_s: float = 3600.0,
    mean_unavailability_s: float = 600.0,
    distribution: str = "exponential",
    weibull_shape: float = 0.7,
    rng: Optional[RandomStreams] = None,
) -> List[ChurnEvent]:
    """Per-host ON/OFF session traces up to *horizon_s* seconds.

    Hosts start available; session lengths are drawn independently per host.
    ``distribution`` is either ``"exponential"`` or ``"weibull"`` (the heavy
    tail observed in real desktop-grid traces).
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if distribution not in ("exponential", "weibull"):
        raise ValueError("distribution must be 'exponential' or 'weibull'")
    rng = rng if rng is not None else RandomStreams(17)

    def draw(name: str, mean: float, index: int) -> float:
        if distribution == "exponential":
            return rng.exponential(f"{name}-{index}", mean)
        scale = mean / 1.5   # rough mean correction for shape ~0.7
        return max(1.0, rng.weibull(f"{name}-{index}", weibull_shape, scale))

    events: List[ChurnEvent] = []
    for host in host_names:
        clock = 0.0
        index = 0
        available = True
        while clock < horizon_s:
            mean = mean_availability_s if available else mean_unavailability_s
            clock += draw(f"session-{host}", mean, index)
            index += 1
            if clock >= horizon_s:
                break
            events.append(ChurnEvent(
                time_s=clock, host_name=host,
                action="crash" if available else "join"))
            available = not available
    events.sort(key=lambda e: (e.time_s, e.host_name))
    return events


def crash_replace_script(
    initial_hosts: Sequence[str],
    spare_hosts: Sequence[str],
    interval_s: float = 20.0,
    start_s: float = 20.0,
) -> List[ChurnEvent]:
    """The Figure 4 scenario: kill one current owner and start one new host
    every *interval_s* seconds, for as many rounds as there are spare hosts."""
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    events: List[ChurnEvent] = []
    time = start_s
    victims = list(initial_hosts)
    for index, spare in enumerate(spare_hosts):
        if index >= len(victims):
            break
        events.append(ChurnEvent(time_s=time, host_name=victims[index],
                                 action="crash"))
        events.append(ChurnEvent(time_s=time, host_name=spare, action="join"))
        time += interval_s
    return events


class ChurnScript:
    """Replays churn events against a BitDew runtime inside the simulation."""

    def __init__(self, runtime, events: Iterable[ChurnEvent]):
        self.runtime = runtime
        self.events = sorted(events, key=lambda e: (e.time_s, e.host_name))
        self.applied: List[ChurnEvent] = []

    def start(self) -> None:
        """Spawn the replay process in the runtime's simulation environment."""
        self.runtime.env.process(self._replay())

    def _replay(self):
        env: Environment = self.runtime.env
        for event in self.events:
            delay = event.time_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            self.apply(event)

    def apply(self, event: ChurnEvent) -> None:
        host = self.runtime.network.hosts.get(event.host_name)
        if host is None:
            raise KeyError(f"unknown host {event.host_name!r}")
        if event.action == "crash":
            self.runtime.crash_host(host)
        else:
            if host.online and event.host_name in self.runtime.agents \
                    and self.runtime.agents[event.host_name].running:
                pass  # already up
            elif event.host_name in self.runtime.agents or not host.online:
                self.runtime.restart_host(host)
            else:
                self.runtime.attach(host)
        self.applied.append(event)
