"""Workload generators.

These produce the inputs of the paper's experiments:

* the file-size / node-count sweep of the transfer benchmarks (Figure 3),
* parameter-sweep task sets (many independent tasks sharing large input
  data, §2.2),
* "filecule" groups — files accessed together, as observed in high-energy
  physics workloads (§2.2), used to exercise affinity scheduling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStreams
from repro.storage.filesystem import FileContent

__all__ = [
    "DiurnalProfile",
    "FileSpec",
    "diurnal_arrivals",
    "filecule_group",
    "parameter_sweep_tasks",
    "transfer_matrix",
]


@dataclass(frozen=True)
class FileSpec:
    """A logical file to be created in an experiment."""

    name: str
    size_mb: float
    shared: bool = False          # shared by many tasks (worth BitTorrent)
    compressed: bool = False

    def content(self, seed: Optional[str] = None) -> FileContent:
        return FileContent.from_seed(self.name, self.size_mb, seed=seed)


def transfer_matrix(sizes_mb: Sequence[float] = (10, 50, 100, 250, 500),
                    node_counts: Sequence[int] = (10, 20, 50, 100, 150, 200, 250),
                    ) -> List[Tuple[float, int]]:
    """The (file size, node count) grid of the Figure 3 experiments."""
    matrix = []
    for size in sizes_mb:
        if size <= 0:
            raise ValueError("sizes must be positive")
        for nodes in node_counts:
            if nodes <= 0:
                raise ValueError("node counts must be positive")
            matrix.append((float(size), int(nodes)))
    return matrix


@dataclass(frozen=True)
class SweepTask:
    """One task of a parameter-sweep application."""

    task_id: int
    input_file: FileSpec
    shared_files: Tuple[FileSpec, ...]
    reference_compute_s: float
    result_size_mb: float


def parameter_sweep_tasks(
    n_tasks: int,
    shared_files: Sequence[FileSpec],
    input_size_mb: float = 0.01,
    result_size_mb: float = 0.5,
    reference_compute_s: float = 300.0,
    compute_cv: float = 0.1,
    rng: Optional[RandomStreams] = None,
    name_prefix: str = "task",
) -> List[SweepTask]:
    """A set of independent tasks sharing large input data (§2.2).

    Per-task compute time varies around ``reference_compute_s`` with
    coefficient of variation ``compute_cv`` (deterministic under a seed).
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    rng = rng if rng is not None else RandomStreams(11)
    shared = tuple(shared_files)
    tasks = []
    for i in range(n_tasks):
        compute = rng.normal_clipped(
            f"compute-{name_prefix}-{i}", reference_compute_s,
            reference_compute_s * compute_cv,
            minimum=reference_compute_s * 0.25)
        tasks.append(SweepTask(
            task_id=i,
            input_file=FileSpec(name=f"{name_prefix}-{i:05d}.in",
                                size_mb=input_size_mb),
            shared_files=shared,
            reference_compute_s=compute,
            result_size_mb=result_size_mb,
        ))
    return tasks


@dataclass(frozen=True)
class DiurnalProfile:
    """A day-shaped request-rate curve with an optional flash spike.

    Desktop-grid service traffic follows its users: a sinusoidal swing
    between the overnight ``base_rps`` and the working-hours ``peak_rps``
    over one ``period_s`` "day" (benches compress the day so a scenario
    stays seconds long).  ``rate_at`` peaks at ``peak_at_frac`` of the
    period.  A flash event — a release, a result deadline — adds
    ``flash_rps`` on top for ``flash_duration_s`` starting at
    ``flash_at_s``; that unscheduled step is what an SLO autoscaler must
    absorb.
    """

    base_rps: float
    peak_rps: float
    period_s: float = 86400.0
    peak_at_frac: float = 0.5
    flash_at_s: Optional[float] = None
    flash_rps: float = 0.0
    flash_duration_s: float = 0.0

    def __post_init__(self):
        if self.base_rps < 0 or self.peak_rps < self.base_rps:
            raise ValueError("need 0 <= base_rps <= peak_rps")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (requests/second) at time ``t``."""
        phase = 2.0 * math.pi * (t / self.period_s - self.peak_at_frac)
        swing = (self.peak_rps - self.base_rps) * 0.5 * (1.0 + math.cos(phase))
        rate = self.base_rps + swing
        if (self.flash_at_s is not None
                and self.flash_at_s <= t < self.flash_at_s
                + self.flash_duration_s):
            rate += self.flash_rps
        return rate


def diurnal_arrivals(profile: DiurnalProfile, horizon_s: float,
                     step_s: float = 0.25) -> List[float]:
    """Deterministic arrival times following *profile* over ``horizon_s``.

    Inverts the rate integral: walking the horizon in ``step_s`` slices
    (midpoint rule), one arrival is emitted each time the cumulative
    expected count Λ(t) crosses the next integer — the deterministic
    skeleton of an inhomogeneous arrival process.  No RNG: the same
    profile always yields the same trace, which keeps the scenarios that
    replay it byte-identical.
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    arrivals: List[float] = []
    cumulative = 0.0
    next_count = 1.0
    steps = int(math.ceil(horizon_s / step_s))
    for i in range(steps):
        t0 = i * step_s
        dt = min(step_s, horizon_s - t0)
        if dt <= 0:
            break
        rate = profile.rate_at(t0 + dt / 2.0)
        increment = rate * dt
        while increment > 0 and cumulative + increment >= next_count:
            fraction = (next_count - cumulative) / increment
            arrivals.append(t0 + fraction * dt)
            next_count += 1.0
        cumulative += increment
    return arrivals


def flash_crowd_offsets(n: int, spread_s: float) -> List[float]:
    """Deterministic arrival offsets for a flash crowd of *n* clients.

    A golden-ratio (low-discrepancy) stagger inside ``[0, spread_s)``: the
    crowd lands almost simultaneously but never on literally the same
    timestamp, which is how real flash crowds hit a gateway.  Like
    :func:`diurnal_arrivals` it uses no RNG, so scenarios replaying the
    crowd stay byte-identical.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if spread_s < 0:
        raise ValueError("spread_s must be non-negative")
    phi_conjugate = (5 ** 0.5 - 1) / 2.0
    return [spread_s * ((i * phi_conjugate) % 1.0) for i in range(n)]


def filecule_group(
    group_name: str,
    n_files: int,
    total_size_mb: float,
    skew: float = 1.5,
    rng: Optional[RandomStreams] = None,
) -> List[FileSpec]:
    """A group of files accessed together ("filecules", §2.2).

    Sizes follow a Zipf-like skew so a few files carry most of the volume,
    which is the regime where grouping + affinity placement pays off.
    """
    if n_files <= 0:
        raise ValueError("n_files must be positive")
    if total_size_mb <= 0:
        raise ValueError("total_size_mb must be positive")
    rng = rng if rng is not None else RandomStreams(13)
    weights = [1.0 / (rank ** skew) for rank in range(1, n_files + 1)]
    total_weight = sum(weights)
    specs = []
    for index, weight in enumerate(weights):
        jitter = rng.uniform(f"filecule-{group_name}-{index}", 0.9, 1.1)
        size = max(0.001, total_size_mb * weight / total_weight * jitter)
        specs.append(FileSpec(name=f"{group_name}-{index:03d}.dat",
                              size_mb=size, shared=True))
    return specs
