"""Deterministic random-number utilities for the simulation substrate.

Every stochastic component (network jitter, host churn, execution-time
variation, BitTorrent peer selection) draws from a stream created here, so a
single seed reproduces a whole experiment.  Streams are named: two components
asking for different names get independent generators derived from the master
seed, which keeps experiments insensitive to the order in which components
are constructed.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


class RandomStreams:
    """A registry of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose master seed derives from *name*."""
        return RandomStreams(derive_seed(self.master_seed, name))

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def normal_clipped(self, name: str, mean: float, std: float,
                       minimum: float = 0.0,
                       maximum: Optional[float] = None) -> float:
        """Draw a normal variate clipped to ``[minimum, maximum]``."""
        value = float(self.stream(name).normal(mean, std))
        if maximum is not None:
            value = min(value, maximum)
        return max(minimum, value)

    def weibull(self, name: str, shape: float, scale: float) -> float:
        """Draw a Weibull variate (used for host availability sessions)."""
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return float(scale * self.stream(name).weibull(shape))

    def choice(self, name: str, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        if n <= 0:
            raise ValueError("n must be positive")
        return int(self.stream(name).integers(0, n))

    def shuffle(self, name: str, items: List[Any]) -> List[Any]:
        """Return a shuffled copy of *items*."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out
