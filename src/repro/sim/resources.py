"""Shared-resource primitives for the simulation kernel.

Three classic primitives are provided:

* :class:`Resource` — a counted resource with FIFO queueing (used e.g. by the
  database connection pool and FTP server connection limits).
* :class:`Container` — a continuous quantity that can be ``put`` and ``get``
  (used for storage capacity accounting on reservoir hosts).
* :class:`Store` — a FIFO object store (used for message queues between
  simulated services).

All requests are events; processes ``yield`` them.  ``Resource`` requests
support use as context managers inside a process::

    with resource.request() as req:
        yield req
        ... critical section ...
"""

from __future__ import annotations

from collections import deque
from types import TracebackType
from typing import Any, Deque, List, Optional, Type

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Container", "Resource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc_val: Optional[BaseException],
                 exc_tb: Optional[TracebackType]) -> bool:
        self.resource.release(self)
        return False


class Resource:
    """A resource with ``capacity`` slots and FIFO admission."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._queue: Deque[Request] = deque()
        self._users: List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a previously granted slot (no-op if never granted)."""
        if request in self._users:
            self._users.remove(request)
        elif request in self._queue:
            # Cancelled before being granted.
            self._queue.remove(request)
        self._trigger_requests()

    def _trigger_requests(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed(self)


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous-quantity container with an optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self.capacity:
                    self._put_queue.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level >= get.amount:
                    self._get_queue.popleft()
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progressed = True


class StorePut(Event):
    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO store of arbitrary items with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.pop(0))
                progressed = True

    def cancel_get(self, get: StoreGet) -> None:
        """Remove a pending get (used when a waiting consumer is killed)."""
        if get in self._get_queue:
            self._get_queue.remove(get)


class PriorityStore(Store):
    """A store that always yields the smallest item first.

    Items must be orderable (e.g. tuples whose first element is a priority).
    """

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                self.items.sort()
                put.succeed()
                progressed = True
            if self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.pop(0))
                progressed = True


__all__.append("PriorityStore")
