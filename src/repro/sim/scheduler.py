"""Pluggable event schedulers for the simulation kernel.

The kernel's queue discipline is a total order over ``(time, priority,
seq)`` — FIFO within a timestamp, priorities only for the settle hook and
interrupts.  How that order is *realised* is a pure performance choice, so
the queue is a pluggable strategy behind :func:`make_scheduler`:

* :class:`HeapScheduler` — the reference implementation: one global binary
  heap (`heapq`).  O(log n) per operation with n the total queue size,
  which at 100k-host scale means every push/pop pays ~17 tuple
  comparisons against *unrelated* events scheduled far in the future.
  Cancelled :class:`~repro.sim.kernel.Timer` entries are dropped lazily
  when they surface, and the whole heap is compacted once more than half
  of it is dead (see :meth:`note_cancelled`) so a timer-heavy workload
  cannot squat the queue with corpses.

* :class:`CalendarQueueScheduler` — a bucketed calendar queue (R. Brown,
  CACM 1988) tuned for the kernel's timer-heavy heartbeat/sync traffic:
  events hash into fixed-width time buckets (``floor(time / width)``), a
  small index heap tracks the non-empty buckets, and each bucket is its
  own tiny heap.  Pops only ever compare events of the *current* bucket,
  so with the width matched to the event density the per-event cost is
  O(1) amortised.  The width adapts deterministically: every
  ``RESIZE_INTERVAL`` pushes the queue re-buckets itself if the average
  bucket occupancy left the target band.  Because ``floor(t / w)`` is
  monotone in ``t`` and every bucket orders entries by the full
  ``(time, priority, seq)`` key, the pop sequence is **identical** to the
  heap's — an invariant pinned by :class:`OracleScheduler` and the
  property tests in ``tests/test_sim_scheduler.py``.

* :class:`ArrayCalendarScheduler` — the calendar queue with array-backed
  buckets: future buckets are flat append-only arrays (O(1) insertion,
  zero comparisons), totally ordered *once* when they become the head of
  the calendar (numpy argsort-on-drain above a crossover size, ``heapq``
  below it).  Same pop order, cheaper push-heavy storms.

* :class:`OracleScheduler` — the equivalence oracle: drives a heap and a
  calendar queue in lockstep and asserts that every single pop agrees.
  Plug it in (``Environment(scheduler="oracle")``) to certify a workload;
  it is deliberately slow (it does all the work twice).

Entries are the kernel's scheduling tuples ``(time, priority, seq,
event)``; ``seq`` is unique, so the order is total and any two correct
schedulers must produce byte-identical simulations.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Tuple

try:  # numpy is optional for the sim core: the array scheduler degrades
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # typing-only: the runtime import goes kernel -> scheduler
    from repro.sim.kernel import Event

__all__ = [
    "ArrayCalendarScheduler",
    "CalendarQueueScheduler",
    "Entry",
    "HeapScheduler",
    "OracleScheduler",
    "Scheduler",
    "make_scheduler",
]

#: A scheduling entry: (time, priority, seq, event).
Entry = Tuple[float, int, int, "Event"]


class Scheduler(Protocol):
    """The event-queue strategy interface the kernel drives.

    Any object with these members can be passed to
    ``Environment(scheduler=...)``.  Implementations must realise the total
    ``(time, priority, seq)`` order: ``pop`` returns the minimal live entry
    and ``peek`` previews it without removal (both skip cancelled events).
    """

    name: str

    def __len__(self) -> int: ...

    def push(self, entry: Entry) -> None: ...

    def peek(self) -> Optional[Entry]: ...

    def pop(self) -> Entry: ...

    def note_cancelled(self) -> None: ...


class HeapScheduler:
    """Reference scheduler: a single global binary heap."""

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        #: cancelled Timer entries still buried in the heap
        self._cancelled = 0
        #: number of whole-queue compactions (benchmark/test metric)
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def peek(self) -> Optional[Entry]:
        """The next live entry without removing it (purges dead heads)."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0] if heap else None

    def pop(self) -> Entry:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[3].cancelled:
                self._cancelled -= 1
                continue
            return entry
        raise IndexError("pop from an empty scheduler")

    def note_cancelled(self) -> None:
        """A queued Timer was cancelled; compact once corpses dominate.

        Lazy deletion alone lets a reschedule-heavy component (the flow
        network's completion timer, watchdogs) fill the heap with dead
        entries that each still cost O(log n) to sift around.  When more
        than half the heap is cancelled, one O(n) sweep rebuilds it.
        """
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap):
            self.compact()

    def compact(self) -> None:
        self._heap = [e for e in self._heap if not e[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1


class CalendarQueueScheduler:
    """Bucketed calendar queue: near-O(1) ops for timer-heavy traffic."""

    name = "calendar"

    #: adapt the bucket width every this many pushes (deterministic)
    RESIZE_INTERVAL = 4096
    #: re-bucket when mean occupancy of non-empty buckets leaves this band
    MAX_MEAN_OCCUPANCY = 16.0
    MIN_MEAN_OCCUPANCY = 0.5

    def __init__(self, width: Optional[float] = None) -> None:
        if width is not None and width <= 0:
            raise ValueError("bucket width must be positive")
        self._width = float(width) if width is not None else 1.0
        #: width adapts only when the caller did not pin it
        self._auto = width is None
        #: bucket index -> entry min-heap; only live (possibly empty) buckets
        self._buckets: Dict[int, List[Entry]] = {}
        #: lazy min-heap over the bucket indices present in ``_buckets``
        self._index_heap: List[int] = []
        self._size = 0
        self._cancelled = 0
        self._pushes_since_resize = 0
        #: no resize attempt until the live count reaches this (see
        #: _maybe_resize: backoff when re-bucketing cannot help)
        self._resize_backoff_live = 0
        #: metrics (tests/benchmarks)
        self.compactions = 0
        self.resizes = 0

    def __len__(self) -> int:
        return self._size

    @property
    def width(self) -> float:
        return self._width

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    # -- internals ---------------------------------------------------------
    def _insert(self, entry: Entry) -> None:
        # int() truncation, not math.floor: ~2x faster, and monotone in the
        # timestamp just the same (simulated time never goes backwards, and
        # any two entries sharing a bucket are ordered by the bucket heap).
        index = int(entry[0] / self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = []
            heapq.heappush(self._index_heap, index)
        heapq.heappush(bucket, entry)
        self._size += 1

    def _head_bucket(self) -> Optional[List[Entry]]:
        """The bucket holding the globally minimal live entry.

        ``floor(t / width)`` is monotone in ``t``, so the smallest
        non-empty bucket index contains the minimal entry.  Emptied
        buckets and dead (cancelled) heads are dropped on the way.
        """
        index_heap = self._index_heap
        while index_heap:
            index = index_heap[0]
            bucket = self._buckets.get(index)
            if bucket:
                while bucket and bucket[0][3].cancelled:
                    heapq.heappop(bucket)
                    self._size -= 1
                    self._cancelled -= 1
            if not bucket:
                heapq.heappop(index_heap)
                self._buckets.pop(index, None)
                continue
            return bucket
        return None

    def _rebuild(self, width: float) -> List[Entry]:
        entries = [entry
                   for bucket in self._buckets.values()  # detlint: ignore[DET004] — re-bucketing order is immaterial: pops follow the total (time, priority, seq) order
                   for entry in bucket
                   if not entry[3].cancelled]
        self._width = width
        self._buckets = {}
        self._index_heap = []
        self._size = 0
        self._cancelled = 0
        for entry in entries:
            self._insert(entry)
        return entries

    def _occupied_extent(self) -> Optional[Tuple[int, int, int]]:
        """(bucket count, min index, max index) of the live population.

        The width-adaptation pass sizes buckets from this; subclasses that
        keep part of the population outside ``_buckets`` (the array
        variant's drain structures) override it so adaptation sees the
        whole queue.
        """
        if not self._buckets:
            return None
        return len(self._buckets), min(self._buckets), max(self._buckets)

    def _clamp_width(self, width: float) -> float:
        """Last word on an adaptation-chosen width (subclass hook)."""
        return width

    def _maybe_resize(self) -> None:
        self._pushes_since_resize = 0
        if not self._auto:
            return
        live = self._size - self._cancelled
        if live <= 0:
            return
        extent = self._occupied_extent()
        if extent is None:
            return
        buckets, lo_index, hi_index = extent
        occupancy = live / buckets
        if self.MIN_MEAN_OCCUPANCY <= occupancy <= self.MAX_MEAN_OCCUPANCY:
            return
        # Backoff: when the population has few *distinct* timestamps (e.g.
        # a same-time storm), no width brings the occupancy into the band —
        # without this guard the queue would pay an O(n) rebuild every
        # RESIZE_INTERVAL pushes.  Try again once the live count doubled.
        if live < self._resize_backoff_live:
            return
        # Spread the current population over ~4 entries per bucket.  The
        # span is measured over bucket indices (O(buckets), not O(n)).
        lo = lo_index * self._width
        hi = (hi_index + 1) * self._width
        span = hi - lo
        if span <= 0 or not math.isfinite(span):
            return
        width = span / max(live / 4.0, 1.0)
        if width <= 0 or not math.isfinite(width):
            return
        # Clamp: a same-timestamp storm must not drive the width to zero.
        width = max(width, span * 1e-9, 1e-12)
        width = self._clamp_width(width)
        if width == self._width:
            self._resize_backoff_live = live * 2
            return
        self.resizes += 1
        self._rebuild(width)
        achieved = (self._size - self._cancelled) / max(len(self._buckets), 1)
        if not (self.MIN_MEAN_OCCUPANCY <= achieved <= self.MAX_MEAN_OCCUPANCY):
            self._resize_backoff_live = live * 2

    # -- scheduler interface -------------------------------------------------
    def push(self, entry: Entry) -> None:
        # Inlined _insert: push is the hottest scheduler operation.
        index = int(entry[0] / self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = bucket = []
            heapq.heappush(self._index_heap, index)
        heapq.heappush(bucket, entry)
        self._size += 1
        self._pushes_since_resize += 1
        if self._pushes_since_resize >= self.RESIZE_INTERVAL:
            self._maybe_resize()

    def peek(self) -> Optional[Entry]:
        bucket = self._head_bucket()
        return bucket[0] if bucket else None

    def pop(self) -> Entry:
        bucket = self._head_bucket()
        if bucket is None:
            raise IndexError("pop from an empty scheduler")
        self._size -= 1
        return heapq.heappop(bucket)

    def note_cancelled(self) -> None:
        """A queued Timer was cancelled; compact once corpses dominate.

        Compaction is *storm-aware*: rebuilding inside a same-timestamp
        storm must not hand the width-adaptation pass a population it will
        futilely try to re-bucket (no width separates identical
        timestamps).  :meth:`compact` detects that case and arms the
        resize backoff directly, so the adaptation early-returns instead
        of paying a second O(n) rebuild right after the compaction sweep.
        """
        self._cancelled += 1
        if self._cancelled * 2 > self._size:
            self.compact()

    def compact(self) -> None:
        survivors = self._rebuild(self._width)
        self.compactions += 1
        if self._auto and len(survivors) > 1:
            # all() short-circuits on the first distinct timestamp, so a
            # mixed population pays O(1) extra on top of the O(n) sweep.
            first_time = survivors[0][0]
            if all(entry[0] == first_time for entry in survivors):
                self._resize_backoff_live = max(
                    self._resize_backoff_live, len(survivors) * 2)


class ArrayCalendarScheduler(CalendarQueueScheduler):
    """Calendar queue with array-backed buckets: sort-on-drain, not heaps.

    The classic calendar queue (the parent class) keeps every bucket a
    binary heap, so a push-heavy same-time storm still pays per-event heap
    discipline — ``heappush`` sift-up on insert, sift-down on pop.  This
    variant stores each future bucket as a flat **append-only array** of
    ``(time, priority, seq, event)`` rows: insertion is ``list.append``
    (O(1), no comparisons at all) and the total order is established
    *once*, when the bucket becomes the head of the calendar and is
    drained:

    * buckets at or above :data:`SORT_CROSSOVER` entries are argsorted in
      one shot — ``numpy.lexsort`` over the extracted ``(time, priority,
      seq)`` columns when numpy is importable, the C-level ``list.sort``
      otherwise — into a descending drain array popped from the end;
    * smaller buckets fall back to ``heapq`` (one ``heapify``), because a
      handful of entries never amortises the array extraction.

    Entries scheduled *into* the bucket currently draining (zero-delay
    timeouts, same-time follow-ups) land in that same small heap and are
    merged with the drain array at pop time, preserving the exact global
    ``(time, priority, seq)`` order.  Width adaptation, the same-time
    storm backoff and the storm-aware cancellation compaction are all
    inherited unchanged from :class:`CalendarQueueScheduler`; pop-order
    equivalence with the reference heap is pinned by
    :class:`OracleScheduler` (``scheduler="oracle-array"``) and the
    structural property tests.
    """

    name = "array"

    #: buckets below this size are heapified instead of argsorted
    SORT_CROSSOVER = 32

    #: shrink factor applied when the merge heap is eating the traffic
    LATE_SHRINK = 8.0

    def __init__(self, width: Optional[float] = None) -> None:
        super().__init__(width)
        #: the head bucket, sorted descending; pops take from the end
        self._drain: List[Entry] = []
        #: late arrivals into the draining bucket + small-bucket fallback
        #: (a real ``heapq``; merged with ``_drain`` at pop time)
        self._late: List[Entry] = []
        #: bucket index currently draining (``None`` between buckets)
        self._drain_index: Optional[int] = None
        #: pushes routed to ``_late`` since the last adaptation window
        self._late_pushes = 0
        #: ceiling the occupancy-driven widening must respect once a
        #: late-domination shrink has fired (relaxed geometrically, so a
        #: genuine regime change can still widen the calendar back)
        self._late_width_cap = math.inf

    # -- internals ---------------------------------------------------------
    def _occupied_extent(self) -> Optional[Tuple[int, int, int]]:
        # The drain structures hold the head of the calendar; count them
        # as one occupied bucket at the drain index.  Without this, a
        # too-wide calendar funnels *every* push into the drain-time merge
        # heap, ``_buckets`` stays empty, and the inherited adaptation
        # never fires — the queue degenerates into a plain heap plus
        # calendar overhead (observed as a 1.5x slowdown at 300k hosts).
        drain_live = bool(self._drain or self._late)
        if self._buckets:
            count = len(self._buckets)
            lo = min(self._buckets)
            hi = max(self._buckets)
            if drain_live and self._drain_index is not None:
                count += 1
                lo = min(lo, self._drain_index)
                hi = max(hi, self._drain_index)
            return count, lo, hi
        if drain_live and self._drain_index is not None:
            return 1, self._drain_index, self._drain_index
        return None

    def _clamp_width(self, width: float) -> float:
        # The occupancy band can look healthy while the hot traffic all
        # lands at or before the drain index (tiny future buckets, busy
        # merge heap) — never let occupancy-driven widening undo a
        # late-domination shrink outright.  The cap doubles on every
        # clamped attempt, so a genuine regime change recovers the wide
        # calendar in a few adaptation windows.
        if width > self._late_width_cap:
            width = self._late_width_cap
            self._late_width_cap *= 2.0
        return width

    def _maybe_resize(self) -> None:
        # Late-domination check first: when most pushes of the last window
        # were routed to the merge heap, the calendar is too wide for the
        # active traffic (every arrival lands at or before the bucket being
        # drained) and *no* occupancy statistic over the starved future
        # buckets can see it.  Shrink geometrically until arrivals land in
        # future buckets again — that is the regime the append-only arrays
        # are built for.
        late = self._late_pushes
        self._late_pushes = 0
        if self._auto and late * 2 > self.RESIZE_INTERVAL:
            self._pushes_since_resize = 0
            width = self._width / self.LATE_SHRINK
            if width > 0 and math.isfinite(width):
                self._late_width_cap = min(self._late_width_cap, self._width)
                self.resizes += 1
                self._rebuild(width)
            return
        super()._maybe_resize()

    def _insert(self, entry: Entry) -> None:
        # Rebuild-path insert: plain append, no heap discipline.
        index = int(entry[0] / self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = bucket = []
            heapq.heappush(self._index_heap, index)
        bucket.append(entry)
        self._size += 1

    def _rebuild(self, width: float) -> List[Entry]:
        entries = [entry
                   for bucket in self._buckets.values()  # detlint: ignore[DET004] — re-bucketing order is immaterial: pops follow the total (time, priority, seq) order
                   for entry in bucket
                   if not entry[3].cancelled]
        entries.extend(e for e in self._drain if not e[3].cancelled)
        entries.extend(e for e in self._late if not e[3].cancelled)
        self._width = width
        self._buckets = {}
        self._index_heap = []
        self._drain = []
        self._late = []
        self._drain_index = None
        self._size = 0
        self._cancelled = 0
        for entry in entries:
            self._insert(entry)
        return entries

    @staticmethod
    def _sorted_desc(bucket: List[Entry]) -> List[Entry]:
        """One-shot total order for a drained bucket, descending."""
        if _np is not None:
            n = len(bucket)
            times = _np.fromiter((e[0] for e in bucket),
                                 dtype=_np.float64, count=n)
            prios = _np.fromiter((e[1] for e in bucket),
                                 dtype=_np.int64, count=n)
            seqs = _np.fromiter((e[2] for e in bucket),
                                dtype=_np.int64, count=n)
            order = _np.lexsort((seqs, prios, times))
            return [bucket[int(i)] for i in order[::-1]]
        # seq is unique, so the comparison never reaches the Event column
        # and reverse-sorting the tuples realises the same total order.
        bucket.sort(reverse=True)
        return bucket

    def _load_next_bucket(self) -> bool:
        """Promote the minimal future bucket to the drain position."""
        index_heap = self._index_heap
        while index_heap:
            index = index_heap[0]
            bucket = self._buckets.get(index)
            if not bucket:
                heapq.heappop(index_heap)
                self._buckets.pop(index, None)
                continue
            heapq.heappop(index_heap)
            del self._buckets[index]
            self._drain_index = index
            if len(bucket) < self.SORT_CROSSOVER:
                heapq.heapify(bucket)
                self._late = bucket
            else:
                self._drain = self._sorted_desc(bucket)
            return True
        self._drain_index = None
        return False

    def _front(self) -> Tuple[Optional[Entry], bool]:
        """The minimal live entry and whether it sits in the late heap.

        Purges cancelled heads from both drain structures on the way and
        promotes the next bucket when the current one runs dry.
        """
        while True:
            drain = self._drain
            while drain and drain[-1][3].cancelled:
                drain.pop()
                self._size -= 1
                self._cancelled -= 1
            late = self._late
            while late and late[0][3].cancelled:
                heapq.heappop(late)
                self._size -= 1
                self._cancelled -= 1
            if drain:
                if late and late[0] < drain[-1]:
                    return late[0], True
                return drain[-1], False
            if late:
                return late[0], True
            if not self._load_next_bucket():
                return None, False

    # -- scheduler interface -----------------------------------------------
    def push(self, entry: Entry) -> None:
        index = int(entry[0] / self._width)
        drain_index = self._drain_index
        if drain_index is not None and index <= drain_index:
            # Into (or before) the bucket being drained: the array is
            # already sorted, so late arrivals go to the merge heap.  Any
            # index *below* the drain one is still ahead of every future
            # bucket (they all hold strictly later times), so the merge
            # heap serves it in the right global position.
            heapq.heappush(self._late, entry)
            self._late_pushes += 1
        else:
            bucket = self._buckets.get(index)
            if bucket is None:
                self._buckets[index] = bucket = []
                heapq.heappush(self._index_heap, index)
            bucket.append(entry)
        self._size += 1
        self._pushes_since_resize += 1
        if self._pushes_since_resize >= self.RESIZE_INTERVAL:
            self._maybe_resize()

    def peek(self) -> Optional[Entry]:
        return self._front()[0]

    def pop(self) -> Entry:
        entry, from_late = self._front()
        if entry is None:
            raise IndexError("pop from an empty scheduler")
        if from_late:
            heapq.heappop(self._late)
        else:
            self._drain.pop()
        self._size -= 1
        return entry


class OracleScheduler:
    """Runs two schedulers in lockstep and asserts identical pop order.

    The default pairing certifies the calendar queue against the reference
    heap: every ``pop``/``peek`` must return the *same entry object* from
    both structures, i.e. the same ``(time, priority, seq)`` event order.
    A divergence raises ``AssertionError`` at the exact offending event.
    """

    name = "oracle"

    def __init__(self, reference: Optional[Scheduler] = None,
                 candidate: Optional[Scheduler] = None) -> None:
        self.reference: Scheduler = (
            reference if reference is not None else HeapScheduler())
        self.candidate: Scheduler = (
            candidate if candidate is not None else CalendarQueueScheduler())
        #: number of pops certified identical
        self.agreements = 0

    def __len__(self) -> int:
        return len(self.reference)

    def push(self, entry: Entry) -> None:
        self.reference.push(entry)
        self.candidate.push(entry)

    def peek(self) -> Optional[Entry]:
        expected = self.reference.peek()
        got = self.candidate.peek()
        assert got is expected, (
            f"scheduler divergence on peek: reference={expected!r} "
            f"candidate={got!r} after {self.agreements} agreed pops")
        return expected

    def pop(self) -> Entry:
        expected = self.reference.pop()
        got = self.candidate.pop()
        assert got is expected, (
            f"scheduler divergence on pop: reference={expected!r} "
            f"candidate={got!r} after {self.agreements} agreed pops")
        self.agreements += 1
        return expected

    def note_cancelled(self) -> None:
        self.reference.note_cancelled()
        self.candidate.note_cancelled()


def make_scheduler(name: str = "heap") -> Scheduler:
    """Resolve a scheduler by name.

    ``heap`` | ``calendar`` | ``array`` | ``oracle`` (heap vs calendar)
    | ``oracle-array`` (heap vs array).
    """
    if name == "heap":
        return HeapScheduler()
    if name == "calendar":
        return CalendarQueueScheduler()
    if name == "array":
        return ArrayCalendarScheduler()
    if name == "oracle":
        return OracleScheduler()
    if name == "oracle-array":
        return OracleScheduler(candidate=ArrayCalendarScheduler())
    raise ValueError(
        f"unknown scheduler {name!r}; use 'heap', 'calendar', 'array', "
        f"'oracle' or 'oracle-array'")
