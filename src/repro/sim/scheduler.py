"""Pluggable event schedulers for the simulation kernel.

The kernel's queue discipline is a total order over ``(time, priority,
seq)`` — FIFO within a timestamp, priorities only for the settle hook and
interrupts.  How that order is *realised* is a pure performance choice, so
the queue is a pluggable strategy behind :func:`make_scheduler`:

* :class:`HeapScheduler` — the reference implementation: one global binary
  heap (`heapq`).  O(log n) per operation with n the total queue size,
  which at 100k-host scale means every push/pop pays ~17 tuple
  comparisons against *unrelated* events scheduled far in the future.
  Cancelled :class:`~repro.sim.kernel.Timer` entries are dropped lazily
  when they surface, and the whole heap is compacted once more than half
  of it is dead (see :meth:`note_cancelled`) so a timer-heavy workload
  cannot squat the queue with corpses.

* :class:`CalendarQueueScheduler` — a bucketed calendar queue (R. Brown,
  CACM 1988) tuned for the kernel's timer-heavy heartbeat/sync traffic:
  events hash into fixed-width time buckets (``floor(time / width)``), a
  small index heap tracks the non-empty buckets, and each bucket is its
  own tiny heap.  Pops only ever compare events of the *current* bucket,
  so with the width matched to the event density the per-event cost is
  O(1) amortised.  The width adapts deterministically: every
  ``RESIZE_INTERVAL`` pushes the queue re-buckets itself if the average
  bucket occupancy left the target band.  Because ``floor(t / w)`` is
  monotone in ``t`` and every bucket orders entries by the full
  ``(time, priority, seq)`` key, the pop sequence is **identical** to the
  heap's — an invariant pinned by :class:`OracleScheduler` and the
  property tests in ``tests/test_sim_scheduler.py``.

* :class:`OracleScheduler` — the equivalence oracle: drives a heap and a
  calendar queue in lockstep and asserts that every single pop agrees.
  Plug it in (``Environment(scheduler="oracle")``) to certify a workload;
  it is deliberately slow (it does all the work twice).

Entries are the kernel's scheduling tuples ``(time, priority, seq,
event)``; ``seq`` is unique, so the order is total and any two correct
schedulers must produce byte-identical simulations.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Tuple

if TYPE_CHECKING:  # typing-only: the runtime import goes kernel -> scheduler
    from repro.sim.kernel import Event

__all__ = [
    "CalendarQueueScheduler",
    "Entry",
    "HeapScheduler",
    "OracleScheduler",
    "Scheduler",
    "make_scheduler",
]

#: A scheduling entry: (time, priority, seq, event).
Entry = Tuple[float, int, int, "Event"]


class Scheduler(Protocol):
    """The event-queue strategy interface the kernel drives.

    Any object with these members can be passed to
    ``Environment(scheduler=...)``.  Implementations must realise the total
    ``(time, priority, seq)`` order: ``pop`` returns the minimal live entry
    and ``peek`` previews it without removal (both skip cancelled events).
    """

    name: str

    def __len__(self) -> int: ...

    def push(self, entry: Entry) -> None: ...

    def peek(self) -> Optional[Entry]: ...

    def pop(self) -> Entry: ...

    def note_cancelled(self) -> None: ...


class HeapScheduler:
    """Reference scheduler: a single global binary heap."""

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        #: cancelled Timer entries still buried in the heap
        self._cancelled = 0
        #: number of whole-queue compactions (benchmark/test metric)
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def peek(self) -> Optional[Entry]:
        """The next live entry without removing it (purges dead heads)."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0] if heap else None

    def pop(self) -> Entry:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[3].cancelled:
                self._cancelled -= 1
                continue
            return entry
        raise IndexError("pop from an empty scheduler")

    def note_cancelled(self) -> None:
        """A queued Timer was cancelled; compact once corpses dominate.

        Lazy deletion alone lets a reschedule-heavy component (the flow
        network's completion timer, watchdogs) fill the heap with dead
        entries that each still cost O(log n) to sift around.  When more
        than half the heap is cancelled, one O(n) sweep rebuilds it.
        """
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap):
            self.compact()

    def compact(self) -> None:
        self._heap = [e for e in self._heap if not e[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1


class CalendarQueueScheduler:
    """Bucketed calendar queue: near-O(1) ops for timer-heavy traffic."""

    name = "calendar"

    #: adapt the bucket width every this many pushes (deterministic)
    RESIZE_INTERVAL = 4096
    #: re-bucket when mean occupancy of non-empty buckets leaves this band
    MAX_MEAN_OCCUPANCY = 16.0
    MIN_MEAN_OCCUPANCY = 0.5

    def __init__(self, width: Optional[float] = None) -> None:
        if width is not None and width <= 0:
            raise ValueError("bucket width must be positive")
        self._width = float(width) if width is not None else 1.0
        #: width adapts only when the caller did not pin it
        self._auto = width is None
        #: bucket index -> entry min-heap; only live (possibly empty) buckets
        self._buckets: Dict[int, List[Entry]] = {}
        #: lazy min-heap over the bucket indices present in ``_buckets``
        self._index_heap: List[int] = []
        self._size = 0
        self._cancelled = 0
        self._pushes_since_resize = 0
        #: no resize attempt until the live count reaches this (see
        #: _maybe_resize: backoff when re-bucketing cannot help)
        self._resize_backoff_live = 0
        #: metrics (tests/benchmarks)
        self.compactions = 0
        self.resizes = 0

    def __len__(self) -> int:
        return self._size

    @property
    def width(self) -> float:
        return self._width

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    # -- internals ---------------------------------------------------------
    def _insert(self, entry: Entry) -> None:
        # int() truncation, not math.floor: ~2x faster, and monotone in the
        # timestamp just the same (simulated time never goes backwards, and
        # any two entries sharing a bucket are ordered by the bucket heap).
        index = int(entry[0] / self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = []
            heapq.heappush(self._index_heap, index)
        heapq.heappush(bucket, entry)
        self._size += 1

    def _head_bucket(self) -> Optional[List[Entry]]:
        """The bucket holding the globally minimal live entry.

        ``floor(t / width)`` is monotone in ``t``, so the smallest
        non-empty bucket index contains the minimal entry.  Emptied
        buckets and dead (cancelled) heads are dropped on the way.
        """
        index_heap = self._index_heap
        while index_heap:
            index = index_heap[0]
            bucket = self._buckets.get(index)
            if bucket:
                while bucket and bucket[0][3].cancelled:
                    heapq.heappop(bucket)
                    self._size -= 1
                    self._cancelled -= 1
            if not bucket:
                heapq.heappop(index_heap)
                self._buckets.pop(index, None)
                continue
            return bucket
        return None

    def _rebuild(self, width: float) -> None:
        entries = [entry
                   for bucket in self._buckets.values()  # detlint: ignore[DET004] — re-bucketing order is immaterial: pops follow the total (time, priority, seq) order
                   for entry in bucket
                   if not entry[3].cancelled]
        self._width = width
        self._buckets = {}
        self._index_heap = []
        self._size = 0
        self._cancelled = 0
        for entry in entries:
            self._insert(entry)

    def _maybe_resize(self) -> None:
        self._pushes_since_resize = 0
        if not self._auto:
            return
        live = self._size - self._cancelled
        buckets = len(self._buckets)
        if live <= 0 or buckets == 0:
            return
        occupancy = live / buckets
        if self.MIN_MEAN_OCCUPANCY <= occupancy <= self.MAX_MEAN_OCCUPANCY:
            return
        # Backoff: when the population has few *distinct* timestamps (e.g.
        # a same-time storm), no width brings the occupancy into the band —
        # without this guard the queue would pay an O(n) rebuild every
        # RESIZE_INTERVAL pushes.  Try again once the live count doubled.
        if live < self._resize_backoff_live:
            return
        # Spread the current population over ~4 entries per bucket.  The
        # span is measured over bucket indices (O(buckets), not O(n)).
        lo = min(self._buckets) * self._width
        hi = (max(self._buckets) + 1) * self._width
        span = hi - lo
        if span <= 0 or not math.isfinite(span):
            return
        width = span / max(live / 4.0, 1.0)
        if width <= 0 or not math.isfinite(width):
            return
        # Clamp: a same-timestamp storm must not drive the width to zero.
        width = max(width, span * 1e-9, 1e-12)
        if width == self._width:
            self._resize_backoff_live = live * 2
            return
        self.resizes += 1
        self._rebuild(width)
        achieved = (self._size - self._cancelled) / max(len(self._buckets), 1)
        if not (self.MIN_MEAN_OCCUPANCY <= achieved <= self.MAX_MEAN_OCCUPANCY):
            self._resize_backoff_live = live * 2

    # -- scheduler interface -------------------------------------------------
    def push(self, entry: Entry) -> None:
        # Inlined _insert: push is the hottest scheduler operation.
        index = int(entry[0] / self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = bucket = []
            heapq.heappush(self._index_heap, index)
        heapq.heappush(bucket, entry)
        self._size += 1
        self._pushes_since_resize += 1
        if self._pushes_since_resize >= self.RESIZE_INTERVAL:
            self._maybe_resize()

    def peek(self) -> Optional[Entry]:
        bucket = self._head_bucket()
        return bucket[0] if bucket else None

    def pop(self) -> Entry:
        bucket = self._head_bucket()
        if bucket is None:
            raise IndexError("pop from an empty scheduler")
        self._size -= 1
        return heapq.heappop(bucket)

    def note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled * 2 > self._size:
            self.compact()

    def compact(self) -> None:
        self._rebuild(self._width)
        self.compactions += 1


class OracleScheduler:
    """Runs two schedulers in lockstep and asserts identical pop order.

    The default pairing certifies the calendar queue against the reference
    heap: every ``pop``/``peek`` must return the *same entry object* from
    both structures, i.e. the same ``(time, priority, seq)`` event order.
    A divergence raises ``AssertionError`` at the exact offending event.
    """

    name = "oracle"

    def __init__(self, reference: Optional[Scheduler] = None,
                 candidate: Optional[Scheduler] = None) -> None:
        self.reference: Scheduler = (
            reference if reference is not None else HeapScheduler())
        self.candidate: Scheduler = (
            candidate if candidate is not None else CalendarQueueScheduler())
        #: number of pops certified identical
        self.agreements = 0

    def __len__(self) -> int:
        return len(self.reference)

    def push(self, entry: Entry) -> None:
        self.reference.push(entry)
        self.candidate.push(entry)

    def peek(self) -> Optional[Entry]:
        expected = self.reference.peek()
        got = self.candidate.peek()
        assert got is expected, (
            f"scheduler divergence on peek: reference={expected!r} "
            f"candidate={got!r} after {self.agreements} agreed pops")
        return expected

    def pop(self) -> Entry:
        expected = self.reference.pop()
        got = self.candidate.pop()
        assert got is expected, (
            f"scheduler divergence on pop: reference={expected!r} "
            f"candidate={got!r} after {self.agreements} agreed pops")
        self.agreements += 1
        return expected

    def note_cancelled(self) -> None:
        self.reference.note_cancelled()
        self.candidate.note_cancelled()


def make_scheduler(name: str = "heap") -> Scheduler:
    """Resolve a scheduler by name (``heap`` | ``calendar`` | ``oracle``)."""
    if name == "heap":
        return HeapScheduler()
    if name == "calendar":
        return CalendarQueueScheduler()
    if name == "oracle":
        return OracleScheduler()
    raise ValueError(
        f"unknown scheduler {name!r}; use 'heap', 'calendar' or 'oracle'")
