"""Core discrete-event simulation kernel.

The kernel is deliberately small and dependency-free.  It provides:

* :class:`Environment` — virtual clock + event queue + ``run`` loop.
* :class:`Event` — a one-shot waitable with a value and success flag.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`Process` — wraps a generator; the generator yields events and is
  resumed with the event's value (or has the event's exception thrown in).
* :class:`AnyOf` / :class:`AllOf` — condition events over several events.
* :class:`Interrupt` — exception delivered by :meth:`Process.interrupt`.

Determinism: events scheduled for the same simulated time are processed in
FIFO order of scheduling (a monotonically increasing sequence number breaks
ties), so a simulation with a fixed RNG seed is fully reproducible.

The queue itself is a pluggable strategy (:mod:`repro.sim.scheduler`):
``Environment(scheduler="heap")`` is the reference binary heap,
``"calendar"`` a bucketed calendar queue tuned for timer-heavy traffic and
``"oracle"`` runs both in lockstep asserting identical event order.  All
three realise the same total ``(time, priority, seq)`` order, so the
choice never changes simulated results — only wall-clock.
"""

from __future__ import annotations

import itertools
from typing import (Any, Callable, Dict, Generator, Iterable, Iterator, List,
                    Optional, Union)

from repro.sim.scheduler import Scheduler, make_scheduler

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "SimulationError",
    "Timeout",
    "Timer",
]

#: The shape of a simulated process body: yields events, is resumed with
#: each event's value, and may ``return`` a final result.
ProcessGenerator = Generator["Event", Any, Any]

#: An event callback, invoked with the processed event.
Callback = Callable[["Event"], None]


class SimulationError(RuntimeError):
    """Raised for kernel usage errors (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Delivered inside a process when another process interrupts it.

    The optional *cause* is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


#: Sentinel priority classes: normal events before process-bootstrap events is
#: not needed; a single FIFO ordering per timestamp is sufficient and simpler.
_PENDING = object()


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*.  ``succeed(value)`` or ``fail(exception)``
    triggers it; the environment then schedules its callbacks.  Waiting on an
    already-processed event is allowed and resumes the waiter immediately
    (on the next scheduling step).
    """

    #: Set by :meth:`Timer.cancel`; cancelled events are skipped (and lazily
    #: removed from the heap) instead of running their callbacks.  A class
    #: attribute, not a slot: only :class:`Timer` instances (which carry a
    #: ``__dict__``) ever set it, and every other event reads the shared
    #: ``False`` for free.
    cancelled: bool = False

    #: At 100k-host scale the kernel creates ~10⁶ events per run; dropping
    #: the per-instance ``__dict__`` makes creation and the hot attribute
    #: reads in the run loop measurably cheaper.  Subclasses that add state
    #: (Timer, Process, conditions, resources) simply omit ``__slots__``
    #: and get a ``__dict__`` back automatically.
    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_eid",
                 "__weakref__")

    def __init__(self, env: "Environment") -> None:
        # Keep this block in lockstep with Timeout.__init__, which inlines
        # it (plus scheduling) to shave two calls per timer tick.
        self.env = env
        self.callbacks: Optional[List[Callback]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: True once the exception carried by a failed event has been
        #: delivered to at least one waiter (or defused explicitly).
        self.defused = False
        #: Per-environment creation sequence number: a stable identity for
        #: reprs and traces.  A memory address (``id``) here would make any
        #:  debug output containing an event repr differ across runs.
        self._eid = next(env._event_ids)

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will have it raised."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if not event.triggered:
            raise SimulationError("cannot chain from an untriggered event")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- misc --------------------------------------------------------------
    def _push_callback(self, callback: Callback) -> None:
        """Append to the pending callback list (the event must be unprocessed)."""
        callbacks = self.callbacks
        if callbacks is None:
            raise SimulationError(f"{self!r} is already processed")
        callbacks.append(callback)

    def add_callback(self, callback: Callback) -> None:
        if self.callbacks is None:
            # Already processed: run on next scheduling step via a proxy event.
            proxy = Event(self.env)
            proxy._push_callback(callback)
            proxy._ok = self._ok
            proxy._value = self._value
            self.env._schedule(proxy)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} #{self._eid}>"


class Timeout(Event):
    """Event that fires after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Event.__init__ and Environment._schedule, inlined: a timeout is
        # created for every heartbeat tick of a 100k-host cohort run, so
        # the two extra calls (and the overwritten _PENDING defaults) are
        # measurable.  Keep in lockstep with both.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self._eid = next(env._event_ids)
        self.delay = delay
        env._scheduler.push((env._now + delay, 1, next(env._counter), self))


class Timer(Event):
    """A cancellable scheduled callback.

    Unlike :class:`Timeout`, a timer can be revoked with :meth:`cancel`
    before it fires; the heap entry is removed lazily, so components that
    frequently reschedule wake-ups (the flow network's completion timer) do
    not accumulate stale entries that each must be popped and filtered with
    a token check.
    """

    def __init__(self, env: "Environment", delay: float,
                 callback: Optional[Callback] = None,
                 value: Any = None, priority: int = 1) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        if callback is not None:
            self._push_callback(callback)
        env._schedule(self, delay=delay, priority=priority)

    def cancel(self) -> bool:
        """Revoke the timer; returns False if it already fired."""
        if self.processed:
            return False
        if not self.cancelled:
            self.cancelled = True
            self.callbacks = []
            # Let the scheduler account for the dead entry (it compacts the
            # queue when cancelled entries outnumber the live ones).
            self.env._scheduler.note_cancelled()
        return True


class Initialize(Event):
    """Internal event used to start a process on the next step."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self._push_callback(process._resume_cb)
        env._schedule(self)


class Process(Event):
    """Wraps a generator so it can be driven by the event loop.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes (or fails with the escaping exception),
    so processes can wait on each other.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The resume callback, bound once: it is registered on every event
        #: the process waits for, and binding it per yield is pure overhead.
        self._resume_cb: Callback = self._resume
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait point."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process before it starts")
        # Deliver asynchronously via a failing proxy event so ordering stays
        # consistent with the rest of the event queue.
        proxy = Event(self.env)
        proxy._ok = False
        proxy._value = Interrupt(cause)
        proxy.defused = True
        proxy._push_callback(self._resume_cb)
        # Detach from the old target so a later trigger does not resume us twice.
        if self._target.callbacks is not None and self._resume_cb in self._target.callbacks:
            self._target.callbacks.remove(self._resume_cb)
        self.env._schedule(proxy, priority=0)

    # -- driving ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        env._active_process = self
        try:
            while True:
                if event._ok:
                    try:
                        next_target = generator.send(event._value)
                    except StopIteration as stop:
                        self._terminate(True, stop.value)
                        return
                    except BaseException as exc:
                        self._terminate(False, exc)
                        return
                else:
                    event.defused = True
                    try:
                        next_target = generator.throw(event._value)
                    except StopIteration as stop:
                        self._terminate(True, stop.value)
                        return
                    except BaseException as exc:
                        # Either the process let the failure escape, or it
                        # raised a different exception while handling it;
                        # both terminate the process as failed.
                        self._terminate(False, exc)
                        return
                if not isinstance(next_target, Event):
                    raise SimulationError(
                        f"process yielded a non-event: {next_target!r}"
                    )
                # ``processed``/``add_callback``, inlined: this is the one
                # call per process yield, and an unprocessed target (the
                # overwhelmingly common case) only needs the append.
                callbacks = next_target.callbacks
                if callbacks is None:
                    # Already-resolved event: loop immediately with its value.
                    event = next_target
                    continue
                callbacks.append(self._resume_cb)
                self._target = next_target
                return
        finally:
            env._active_process = None

    def _terminate(self, ok: bool, value: Any) -> None:
        self._target = None
        if ok:
            self.succeed(value)
        else:
            if isinstance(value, (SystemExit, KeyboardInterrupt)):  # pragma: no cover
                raise value
            self.fail(value)


class _Condition(Event):
    """Base for AnyOf/AllOf: waits for a set of events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> Dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self.events
            if ev._value is not _PENDING and ev._ok
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as one of the events triggers (or any fails)."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once all events have triggered (fails fast on any failure)."""

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:   # triggered, inlined: hot path
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation environment: virtual clock, queue and run loop."""

    #: Priority of :meth:`settle` callbacks: they run after every
    #: normally-scheduled event at the same timestamp.
    SETTLE_PRIORITY = 2

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Union[str, Scheduler] = "heap") -> None:
        self._now = float(initial_time)
        #: The event-queue strategy: a name resolved through
        #: :func:`repro.sim.scheduler.make_scheduler`, or a ready scheduler
        #: object (anything satisfying :class:`repro.sim.scheduler.Scheduler`).
        self._scheduler: Scheduler = (make_scheduler(scheduler)
                                      if isinstance(scheduler, str)
                                      else scheduler)
        self._counter: Iterator[int] = itertools.count()
        #: Event creation counter, separate from the scheduling counter so
        #: repr identities never perturb the (time, priority, seq) order.
        self._event_ids = itertools.count(1)
        self._active_process: Optional[Process] = None
        #: Number of events processed by :meth:`step` (benchmark metric).
        self.processed_events = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention across the library)."""
        return self._now

    @property
    def scheduler(self) -> Scheduler:
        """The live event-queue strategy object."""
        return self._scheduler

    @property
    def scheduler_name(self) -> str:
        name = getattr(self._scheduler, "name", None)
        return name if isinstance(name, str) else type(self._scheduler).__name__

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_later(self, delay: float, callback: Callback) -> Timer:
        """Schedule *callback* after *delay*; returns a cancellable Timer."""
        return Timer(self, delay, callback)

    def settle(self, callback: Callback) -> Event:
        """Run *callback* at the current instant, after every event already
        queued for this timestamp (including ones those events schedule).

        This is the coalescing hook: a component can absorb a burst of
        same-time changes (e.g. hundreds of flow arrivals during a
        synchronisation storm) and settle its derived state exactly once.
        """
        proxy = Event(self)
        proxy._ok = True
        proxy._value = None
        proxy._push_callback(callback)
        self._schedule(proxy, priority=self.SETTLE_PRIORITY)
        return proxy

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._scheduler.push(
            (self._now + delay, priority, next(self._counter), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        entry = self._scheduler.peek()
        return entry[0] if entry is not None else float("inf")

    def step(self) -> None:
        """Process the next event; raise if the queue is empty."""
        try:
            when, _prio, _count, event = self._scheduler.pop()
        except IndexError:
            raise SimulationError("no more events to process") from None
        self._now = when
        self.processed_events += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if event._ok is False and not event.defused:
            # An untended failure (no one waited): surface it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run until that
        simulated time), or an :class:`Event` (run until it is processed, and
        return its value / raise its exception).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time!r} is in the past (now={self._now!r})"
                )

        if stop_time is None:
            # Hot path (run-to-exhaustion / run-until-event): no deadline to
            # check, so the per-event peek() is pure overhead — pop() skips
            # cancelled timers itself and signals exhaustion via IndexError.
            # The step() body is inlined: at 100k-host scale the extra
            # method call and the doubled scheduler head-bucket work are
            # measurable.  Keep this block in lockstep with step().
            scheduler_pop = self._scheduler.pop
            while True:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                try:
                    when, _prio, _count, event = scheduler_pop()
                except IndexError:
                    break
                self._now = when
                self.processed_events += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks or ():
                    callback(event)
                if event._ok is False and not event.defused:
                    # An untended failure (no one waited): surface it.
                    raise event._value
        else:
            while len(self._scheduler):
                next_time = self.peek()   # also purges cancelled timers
                if next_time == float("inf"):
                    break
                if next_time > stop_time:
                    self._now = stop_time
                    break
                self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() terminated before the stop event was triggered"
                )
            if stop_event._ok:
                return stop_event._value
            stop_event.defused = True
            raise stop_event._value
        if stop_time is not None and self._now < stop_time \
                and not len(self._scheduler):
            self._now = stop_time
        return None
