"""Discrete-event simulation kernel.

This subpackage is the substrate on which every other BitDew component runs.
The original BitDew prototype executed on real machines (Grid'5000 clusters,
the DSL-Lab ADSL testbed); here, per the reproduction plan in ``DESIGN.md``,
the distributed environment is reproduced as a discrete-event simulation so
that the paper's measurements (completion times, overheads, bandwidths,
failure-detection delays) can be regenerated deterministically on a single
machine.

The kernel follows the familiar generator-based process model (close in
spirit to SimPy): a :class:`~repro.sim.kernel.Environment` holds a virtual
clock and an event queue; user code writes *processes* as Python generators
that ``yield`` events (timeouts, other events, process completions, resource
requests).  The kernel resumes a process when the event it waits on fires.

Public API
----------

``Environment``
    The simulation core: clock, scheduling, ``run()``.
``Event``, ``Timeout``, ``Process``, ``AnyOf``, ``AllOf``
    Waitable primitives.
``Interrupt``
    Exception injected into a process by ``Process.interrupt``.
``Resource``, ``Store``, ``Container``
    Shared-resource primitives used by the network and database models.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
