"""Scheduled cross-domain replication, sovereignty-aware.

The Data Scheduler already maintains the *demand* signal: per-datum
replica deficits (:meth:`~repro.services.data_scheduler.DataSchedulerService.missing_replicas`
— PR 1's replica-deficit machinery).  The :class:`FederationReplicator`
turns unmet local demand into WAN exports: a datum homed here whose
replica target exceeds what the home domain has placed is offered to peer
domains — **iff** policy allows it to leave home (``public`` visibility,
an admitting peer).  ``unlisted``/``private`` data is *pinned*: deficits
stay local and are reported in ``exports_blocked`` rather than shipped.

Each round walks four phases, announced through ``on_phase`` exactly like
the rebalance coordinator's protocol (so the chaos harness can sever the
WAN at any point of the handshake):

* ``scan``   — local: compute the export plan from the deficit heap;
* ``offer``  — WAN: admission probe per (datum, peer) — the receiving
  gateway applies its trust policy and visibility rules;
* ``copy``   — WAN: bulk transfer + idempotent ``import_datum``;
* ``commit`` — local: record confirmed exports as synthetic ``wan::<peer>``
  owners on the home scheduler, so the deficit machinery sees the demand
  as met and the next scan converges.

A partition in any WAN phase fails those copies with
:class:`~repro.net.rpc.RpcError`; nothing is committed for them, so the
next round replans and the idempotent import (``offer`` → ``"have"``)
guarantees healing never duplicates a datum.

Peer ordering reuses the fabric's consistent-hash ring
(:class:`~repro.services.router.ShardRing`): each datum's uid hashes to a
starting peer, so exports spread deterministically across the federation
instead of hammering the alphabetically-first peer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.federation.policy import PUBLIC
from repro.net.rpc import RpcError
from repro.services.router import ShardRing

__all__ = ["FederationReplicator"]

#: the protocol phases, in order (the chaos suite parametrises over these)
PHASES = ("scan", "offer", "copy", "commit")


class FederationReplicator:
    """Drives one domain's scheduled exports to its peers."""

    def __init__(self, domain, period_s: float = 1.0,
                 on_phase: Optional[Callable] = None,
                 ring_vnodes: int = 16, ring_seed: int = 0):
        self.domain = domain
        self.gateway = domain.gateway
        self.env = domain.env
        self.period_s = float(period_s)
        self.on_phase = on_phase
        self._ring_vnodes = ring_vnodes
        self._ring_seed = ring_seed
        #: uid -> peers confirmed holding an exported copy
        self.exported: Dict[str, Set[str]] = {}
        #: uid -> peers whose gateway denied the offer (policy, not
        #: transport: denials are permanent under static policies, so they
        #: are not replanned — without this, a peer that admits us nothing
        #: would be re-offered every round forever)
        self.denied: Dict[str, Set[str]] = {}
        #: uids whose cross-domain demand policy refused to export (pinned)
        self.blocked_uids: Set[str] = set()
        self.rounds = 0
        self.copies_attempted = 0
        self.copies_completed = 0
        self.copies_failed = 0
        self.offers_denied = 0
        self.offers_have = 0
        self._running = False

    # ------------------------------------------------------------------ planning
    def _peer_order(self, uid: str, peers: List[str]) -> List[str]:
        """Deterministic per-datum peer rotation off the consistent ring."""
        if len(peers) <= 1:
            return list(peers)
        ring = ShardRing(len(peers), label="fed", vnodes=self._ring_vnodes,
                         seed=self._ring_seed)
        start = ring.shard_for(uid)
        return peers[start:] + peers[:start]

    def plan_round(self) -> List[Tuple[str, str]]:
        """The (uid, peer) exports this round wants to land.

        Only data *homed* in this domain is considered (imported replicas
        are never re-exported — no transitive leaks), only ``public``
        data may leave, and only peers the home's own trust policy admits
        are targets (the receiving gateway additionally applies *its*
        policy on import); everything else with unmet cross-domain demand
        is recorded as blocked.
        """
        peers = [p for p in self.gateway.peer_names()
                 if self.domain.trust.admits(p)]
        if not peers:
            return []
        plan: List[Tuple[str, str]] = []
        domain = self.domain
        entries = sorted(domain.scheduler.entries(),
                         key=lambda entry: entry.data.uid)
        deficits = domain.scheduler.missing_replicas()
        for entry in entries:
            uid = entry.data.uid
            if domain.home_of(uid) != domain.name:
                continue
            settled = (self.exported.get(uid, set())
                       | self.denied.get(uid, set()))
            candidates = [p for p in self._peer_order(uid, peers)
                          if p not in settled]
            if not candidates:
                continue
            if entry.attribute.replicate_to_all:
                wanted = len(candidates)
            else:
                wanted = min(deficits.get(uid, 0), len(candidates))
            if wanted <= 0:
                continue
            if domain.visibility_of(uid) != PUBLIC:
                self.blocked_uids.add(uid)
                continue
            for peer in candidates[:wanted]:
                plan.append((uid, peer))
        return plan

    # ------------------------------------------------------------------ the round
    def _phase(self, name: str) -> None:
        if self.on_phase is not None:
            self.on_phase(name, self)

    def run_round(self):
        """Generator: one scan/offer/copy/commit round.  Returns the number
        of exports confirmed this round."""
        self.rounds += 1
        self._phase("scan")
        plan = self.plan_round()

        self._phase("offer")
        admitted: List[Tuple[str, str]] = []
        for uid, peer in plan:
            descriptor = self.domain.descriptor_of(uid)
            try:
                verdict = yield from self.gateway.call_peer(
                    peer, "offer", descriptor, payload_kb=0.5)
            except RpcError:
                self.copies_failed += 1
                continue
            if verdict == "accept":
                admitted.append((uid, peer))
            elif verdict == "have":
                # The copy landed in an earlier round whose commit the
                # partition swallowed: confirm it now, don't re-send.
                self.offers_have += 1
                admitted.append((uid, peer))
            else:
                self.offers_denied += 1
                self.denied.setdefault(uid, set()).add(peer)

        self._phase("copy")
        confirmed: List[Tuple[str, str]] = []
        for uid, peer in admitted:
            descriptor = self.domain.descriptor_of(uid)
            attribute = self.domain.attribute_of(uid)
            content = self.domain.content_of(uid)
            self.copies_attempted += 1
            try:
                status = yield from self.gateway.call_peer(
                    peer, "import_datum", descriptor, attribute, content,
                    payload_kb=1.0,
                    bulk_kb=max(0.0, descriptor["size_mb"]) * 1024.0)
            except RpcError:
                self.copies_failed += 1
                continue
            if status in ("accepted", "have"):
                self.copies_completed += 1
                confirmed.append((uid, peer))

        self._phase("commit")
        for uid, peer in confirmed:
            holders = self.exported.setdefault(uid, set())
            if peer not in holders:
                holders.add(peer)
                # The exported copy satisfies one unit of the datum's
                # replica demand: a synthetic WAN owner on the home
                # scheduler is exactly how the deficit machinery hears it.
                self.domain.scheduler.confirm_ownership(f"wan::{peer}", uid)
        return len(confirmed)

    # ------------------------------------------------------------------ driving
    def run(self, for_s: Optional[float] = None):
        """Generator process: periodic rounds (the scheduled replication)."""
        self._running = True
        started = self.env.now
        while self._running and (for_s is None
                                 or self.env.now - started < for_s):
            yield from self.run_round()
            yield self.env.timeout(self.period_s)

    def stop(self) -> None:
        self._running = False

    def run_until_drained(self, max_rounds: int = 64):
        """Generator: round after round until the plan is empty (all
        exportable demand met) or the round budget runs out.  Returns True
        when drained."""
        for _ in range(max_rounds):
            if not self.plan_round():
                return True
            yield from self.run_round()
            yield self.env.timeout(self.period_s)
        return not self.plan_round()

    # ------------------------------------------------------------------ report
    def stats(self) -> dict:
        return {
            "rounds": self.rounds,
            "copies_attempted": self.copies_attempted,
            "copies_completed": self.copies_completed,
            "copies_failed": self.copies_failed,
            "offers_denied": self.offers_denied,
            "offers_have": self.offers_have,
            "exports_blocked": len(self.blocked_uids),
            "exports_denied_pairs": sum(len(p)
                                        for p in self.denied.values()),  # detlint: ignore[DET004] — sum of int lengths is order-insensitive
            "exported_datums": len(self.exported),
            "exported_copies": sum(len(p) for p in self.exported.values()),  # detlint: ignore[DET004] — sum of int lengths is order-insensitive
        }
