"""Federated deployments: several BitDew domains, one simulation.

A *domain* is a complete, sovereign BitDew environment — its own
``cluster_topology`` LAN, its own service fabric (or classic container),
its own Data Catalog/Scheduler/Repository, its own volatile hosts — plus
a :class:`~repro.federation.gateway.FederationGateway` on its primary
service host.  A :class:`Federation` builds D such domains on **one**
simulation kernel and peers their gateways over
:class:`~repro.federation.gateway.WanLink`\\ s, turning the multi-cluster
WAN topology into genuinely separate administrative domains.

Sovereignty bookkeeping lives here: every datum has exactly one *home*
domain (where it was published); imported replicas remember their home
and are never re-exported.  :meth:`Federation.private_leaks` is the audit
the chaos suite runs after every partition/heal cycle — a ``private``
datum observed anywhere outside its home domain is a leak, full stop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Tuple

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.runtime import BitDewEnvironment
from repro.federation.gateway import FederationGateway, WanLink
from repro.federation.policy import PRIVATE, PUBLIC, TrustPolicy
from repro.federation.replication import FederationReplicator
from repro.net.topology import cluster_topology
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent

__all__ = ["DomainSpec", "FederationDomain", "Federation"]


@dataclass(frozen=True)
class DomainSpec:
    """Declarative description of one administrative domain."""

    name: str
    n_workers: int = 4
    shards: int = 1
    service_hosts: int = 1
    service_replicas: int = 1
    #: "open" | "allowlist" — the domain's gateway trust policy
    trust: str = "open"
    trust_peers: Tuple[str, ...] = ()
    node_link_mbps: float = 125.0
    server_link_mbps: float = 125.0
    sync_period_s: float = 1.0
    heartbeat_period_s: float = 1.0
    seed: int = 0

    def trust_policy(self) -> TrustPolicy:
        return TrustPolicy(kind=self.trust, peers=frozenset(self.trust_peers))


class FederationDomain:
    """One sovereign BitDew environment inside a federation."""

    def __init__(self, federation: "Federation", spec: DomainSpec,
                 runtime: BitDewEnvironment):
        self.federation = federation
        self.spec = spec
        self.name = spec.name
        self.runtime = runtime
        self.env = runtime.env
        self.trust = spec.trust_policy()
        #: uid -> Data for data *homed* in this domain
        self._home: Dict[str, Data] = {}
        #: uid -> visibility for every datum this domain knows about
        self._visibility: Dict[str, str] = {}
        #: uid -> home-domain name (imports record their origin)
        self._home_domain: Dict[str, str] = {}
        self.gateway = FederationGateway(self)
        self.replicator: Optional[FederationReplicator] = None

    # ------------------------------------------------------------------ service access
    @property
    def catalog(self):
        return self.runtime.data_catalog

    @property
    def scheduler(self):
        return self.runtime.data_scheduler

    @property
    def repository(self):
        return self.runtime.data_repository

    # ------------------------------------------------------------------ publishing
    def publish(self, content: FileContent,
                attribute: Optional[Attribute] = None,
                name: Optional[str] = None) -> Data:
        """Publish one datum *homed* in this domain: catalog registration,
        repository copy, scheduling, and sovereignty bookkeeping."""
        attr = attribute if attribute is not None else Attribute(name="fed")
        data = Data.from_content(content, name=name)
        self.catalog.register_data_now(data)
        locator = self.repository.store_now(data, content)
        self.catalog.add_locator_now(locator)
        self.scheduler.schedule(data, attr)
        self._home[data.uid] = data
        self._visibility[data.uid] = attr.visibility
        self._home_domain[data.uid] = self.name
        return data

    def install_replica(self, descriptor: dict, attribute: Attribute,
                        content: Optional[FileContent],
                        home: str) -> bool:
        """Install an imported replica (the gateway's accepting side)."""
        uid = descriptor["uid"]
        if self.knows(uid):
            return False
        data = Data(name=descriptor["name"], size_mb=descriptor["size_mb"],
                    checksum=getattr(content, "checksum", "") or "",
                    uid=uid)
        self.catalog.register_data_now(data)
        if content is not None:
            locator = self.repository.store_now(data, content)
            self.catalog.add_locator_now(locator)
        # A copy of the home attribute drives *local* placement (e.g. a
        # replicate-to-all datum fans out to this domain's reservoirs too).
        self.scheduler.schedule(data, dc_replace(attribute))
        self._visibility[uid] = descriptor["visibility"]
        self._home_domain[uid] = home
        return True

    # ------------------------------------------------------------------ sovereignty views
    def home_data(self) -> List[Data]:
        return [self._home[uid] for uid in sorted(self._home)]

    def home_datum(self, uid: str) -> Optional[Data]:
        return self._home.get(uid)

    def home_of(self, uid: str) -> Optional[str]:
        return self._home_domain.get(uid)

    def visibility_of(self, uid: str) -> str:
        return self._visibility.get(uid, PUBLIC)

    def attribute_of(self, uid: str) -> Optional[Attribute]:
        entry = self.scheduler.entry(uid)
        return entry.attribute if entry is not None else None

    def content_of(self, uid: str) -> Optional[FileContent]:
        if self.repository.has(uid):
            return self.repository.retrieve_now(uid)
        return None

    def descriptor_of(self, uid: str) -> dict:
        data = self._home.get(uid)
        if data is None:
            raise KeyError(f"{uid} is not homed in domain {self.name}")
        return {
            "uid": data.uid,
            "name": data.name,
            "size_mb": data.size_mb,
            "visibility": self.visibility_of(uid),
            "home": self.name,
        }

    def knows(self, uid: str) -> bool:
        """Raw catalog check (routed by uid, works for both deployments)."""
        return self.catalog.get_data_now(uid) is not None

    def known_uids(self) -> List[str]:
        """Every uid registered anywhere in this domain's catalog."""
        return sorted(row.uid for row in self.catalog.all_data_now())

    # ------------------------------------------------------------------ replication
    def start_replicator(self, period_s: float = 1.0,
                         on_phase=None) -> FederationReplicator:
        """Create (or reconfigure) this domain's scheduled replicator."""
        self.replicator = FederationReplicator(
            self, period_s=period_s, on_phase=on_phase)
        return self.replicator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FederationDomain({self.name}, home={len(self._home)})"


class Federation:
    """D peered domains on one simulation kernel."""

    def __init__(self, specs: List[DomainSpec],
                 env: Optional[Environment] = None,
                 wan_latency_s: float = 0.05,
                 wan_bandwidth_mbps: float = 12.0):
        if not specs:
            raise ValueError("a federation needs at least one domain")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"domain names must be unique (got {names})")
        self.env = env if env is not None else Environment()
        self.wan_latency_s = float(wan_latency_s)
        self.wan_bandwidth_mbps = float(wan_bandwidth_mbps)
        self.domains: Dict[str, FederationDomain] = {}
        self.links: Dict[Tuple[str, str], WanLink] = {}
        for spec in specs:
            topology = cluster_topology(
                self.env, spec.n_workers, cluster=spec.name,
                node_link_mbps=spec.node_link_mbps,
                server_link_mbps=spec.server_link_mbps,
                n_service_hosts=max(spec.service_hosts, 1))
            runtime = BitDewEnvironment(
                topology,
                shards=spec.shards,
                service_hosts=max(spec.service_hosts, 1),
                service_replicas=spec.service_replicas,
                sync_period_s=spec.sync_period_s,
                heartbeat_period_s=spec.heartbeat_period_s,
                seed=spec.seed,
                domain=spec.name,
            )
            self.domains[spec.name] = FederationDomain(self, spec, runtime)

    # ------------------------------------------------------------------ access
    def domain(self, name: str) -> FederationDomain:
        return self.domains[name]

    def domain_names(self) -> List[str]:
        return list(self.domains)

    def link(self, a: str, b: str) -> WanLink:
        return self.links[tuple(sorted((a, b)))]

    # ------------------------------------------------------------------ peering
    def peer(self, a: str, b: str, latency_s: Optional[float] = None,
             bandwidth_mbps: Optional[float] = None) -> WanLink:
        """Peer two domains over one symmetric WAN link."""
        if a == b:
            raise ValueError("a domain cannot peer with itself")
        key = tuple(sorted((a, b)))
        if key in self.links:
            return self.links[key]
        link = WanLink(
            self.env, a, b,
            latency_s=self.wan_latency_s if latency_s is None else latency_s,
            bandwidth_mbps=(self.wan_bandwidth_mbps if bandwidth_mbps is None
                            else bandwidth_mbps))
        self.links[key] = link
        self.domains[a].gateway.connect(self.domains[b].gateway, link)
        self.domains[b].gateway.connect(self.domains[a].gateway, link)
        return link

    def peer_all(self, latency_s: Optional[float] = None,
                 bandwidth_mbps: Optional[float] = None) -> None:
        names = self.domain_names()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                self.peer(a, b, latency_s=latency_s,
                          bandwidth_mbps=bandwidth_mbps)

    # ------------------------------------------------------------------ faults
    def partition(self, a: str, b: str) -> None:
        """Sever the WAN link between two domains (both directions)."""
        self.link(a, b).sever()

    def heal(self, a: str, b: str) -> None:
        self.link(a, b).heal()

    # ------------------------------------------------------------------ audits
    def holders_of(self, uid: str) -> List[str]:
        """Domains whose catalog knows *uid* (raw scan, no RPC)."""
        return [name for name, domain in self.domains.items()
                if domain.knows(uid)]

    def private_leaks(self) -> List[str]:
        """The sovereignty audit: a ``private`` datum observed outside its
        home domain — in a catalog, a scheduler or a repository — is a
        leak.  Raw-scans every domain, bypassing the gateways."""
        leaks: List[str] = []
        for home_name, home in self.domains.items():
            for data in home.home_data():
                if home.visibility_of(data.uid) != PRIVATE:
                    continue
                for other_name, other in self.domains.items():
                    if other_name == home_name:
                        continue
                    sightings = []
                    if other.knows(data.uid):
                        sightings.append("catalog")
                    if other.scheduler.entry(data.uid) is not None:
                        sightings.append("scheduler")
                    if other.repository.has(data.uid):
                        sightings.append("repository")
                    if sightings:
                        leaks.append(
                            f"private datum {data.uid} (home {home_name}) "
                            f"observed in {other_name} "
                            f"({', '.join(sightings)})")
        return leaks

    def run(self, until=None):
        """Advance the shared simulation kernel."""
        return self.env.run(until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Federation({self.domain_names()}, "
                f"links={len(self.links)})")
