"""WAN links and the per-domain federation gateway.

Every federated domain runs one :class:`FederationGateway` on its primary
service host.  Gateways of peered domains are connected by a
:class:`WanLink` — the wide-area counterpart of the LAN links inside a
``cluster_topology``: high latency, narrow shared bandwidth, and the only
thing a partition severs.  All inter-domain traffic is gateway-to-gateway
RPC over that link; volatile hosts never talk across domains directly.

Policy enforcement lives on the **serving** side: ``search``, ``fetch``,
``offer`` and ``import_datum`` are executed by the *callee* gateway, which
applies its own domain's :class:`~repro.federation.policy.TrustPolicy` and
the datum's visibility through the pure :mod:`repro.federation.policy`
functions.  A malicious or buggy caller cannot bypass the checks, because
nothing on the calling side is trusted — exactly the openintent Federation
rule ("enforced at the router, never client-side").

Gateways only ever serve data *homed* in their own domain.  An imported
replica is never re-served or re-exported: transitive re-export would let
domain B leak domain A's data to a peer A itself denies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.federation.policy import PUBLIC, TrustPolicy, may_fetch, may_list
from repro.net.rpc import ChannelKind, RpcChannel, RpcEndpoint, RpcError
from repro.sim.resources import Resource

__all__ = ["WanLink", "FederationGateway"]


class WanLink:
    """A symmetric wide-area link between two domains' gateways.

    ``bandwidth_mbps`` (MB/s, matching the topology modules' convention) is
    a *shared* capacity: bulk payloads serialise through a capacity-1 pipe,
    so ten concurrent cross-domain fetches take ten transfer times — the
    WAN bottleneck the federated replication exists to amortise.  Control
    RPCs (small payloads) only pay the round-trip latency.

    :meth:`sever` / :meth:`heal` model a WAN partition: while severed,
    every gateway call over the link raises :class:`RpcError` — including
    calls already in flight (their response is lost).
    """

    def __init__(self, env, domain_a: str, domain_b: str,
                 latency_s: float = 0.05, bandwidth_mbps: float = 12.0):
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        self.env = env
        self.domains = tuple(sorted((domain_a, domain_b)))
        self.latency_s = float(latency_s)
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.up = True
        self.partitions = 0
        #: (event, time) audit trail: ("sever"|"heal", t)
        self.events: List[tuple] = []
        #: bulk payloads serialise through this pipe (capacity 1)
        self._pipe = Resource(env, capacity=1)
        self.kb_transferred = 0.0

    @property
    def per_kb_s(self) -> float:
        """Seconds to push one KB through the link at full bandwidth."""
        return 1.0 / (self.bandwidth_mbps * 1024.0)

    def name(self) -> str:
        return f"{self.domains[0]}<->{self.domains[1]}"

    def sever(self) -> None:
        """Partition the WAN: both directions go dark immediately."""
        if self.up:
            self.up = False
            self.partitions += 1
            self.events.append(("sever", self.env.now))

    def heal(self) -> None:
        if not self.up:
            self.up = True
            self.events.append(("heal", self.env.now))

    def check(self, context: str) -> None:
        if not self.up:
            raise RpcError(f"WAN link {self.name()} is partitioned ({context})")

    def occupy(self, kb: float):
        """Generator: stream *kb* of bulk payload through the shared pipe."""
        request = self._pipe.request()
        yield request
        try:
            self.check("before bulk transfer")
            yield self.env.timeout(kb * self.per_kb_s)
            # A partition that lands mid-stream kills the transfer: the
            # bytes spent are lost and the caller sees a plain RpcError
            # (safe to retry — imports are idempotent).
            self.check("mid bulk transfer")
            self.kb_transferred += kb
        finally:
            self._pipe.release(request)


class FederationGateway:
    """One domain's WAN-facing router: peering, policy, scatter-gather.

    The server-side surface (what peers invoke over the WAN channel):

    * ``search(caller, name)`` — policy-filtered catalog rows homed here;
    * ``fetch(caller, uid)`` — a datum's descriptor + content, if
      :func:`~repro.federation.policy.may_fetch` admits the caller;
    * ``offer(caller, descriptor)`` — replication admission probe;
    * ``import_datum(caller, descriptor, attribute, content)`` —
      idempotent replica install (the receiving half of scheduled
      replication).

    The client-side surface (what the local domain calls):

    * ``federated_search(name)`` — scatter-gather over every linked peer,
      merged with the local (home) view;
    * ``fetch_remote(peer, uid, size_mb)`` — explicit cross-domain fetch;
    * ``call_peer(...)`` — the raw WAN invocation primitive the
      replicator builds on.
    """

    def __init__(self, domain):
        self.domain = domain
        self.env = domain.env
        self.trust: TrustPolicy = domain.trust
        self.peers: Dict[str, "FederationGateway"] = {}
        self.links: Dict[str, WanLink] = {}
        self.channels: Dict[str, RpcChannel] = {}
        self.endpoint = RpcEndpoint(
            self, host=domain.runtime.container.host,
            name="FederationGateway", domain=domain.name)
        # -- serving-side counters (policy audit trail) ---------------------
        self.searches_served = 0
        self.searches_denied = 0
        self.fetches_served = 0
        self.fetches_denied = 0
        self.imports_accepted = 0
        self.imports_duplicate = 0
        self.imports_rejected = 0
        # -- calling-side counters ------------------------------------------
        self.wan_calls = 0
        self.wan_failures = 0
        self.peers_unreachable = 0

    # ------------------------------------------------------------------ peering
    def connect(self, peer: "FederationGateway", link: WanLink) -> None:
        """Register *peer* behind *link* (called for both directions)."""
        name = peer.domain.name
        self.peers[name] = peer
        self.links[name] = link
        self.channels[name] = RpcChannel(
            self.env, ChannelKind.RMI_REMOTE,
            round_trip_s=2.0 * link.latency_s,
            per_kb_s=link.per_kb_s)

    def peer_names(self) -> List[str]:
        return sorted(self.peers)

    # ------------------------------------------------------------------ client side
    def call_peer(self, peer_name: str, method: str, *args,
                  payload_kb: float = 1.0, bulk_kb: float = 0.0):
        """Generator: one WAN RPC to *peer_name*'s gateway.

        ``payload_kb`` is the marshalled control payload (charged on the
        WAN channel); ``bulk_kb`` is streamed through the link's shared
        pipe first, so concurrent bulk transfers serialise.  Raises
        :class:`RpcError` whenever the link is (or becomes) partitioned.
        """
        if peer_name not in self.peers:
            raise RpcError(f"domain {self.domain.name} has no peering "
                           f"with {peer_name}")
        link = self.links[peer_name]
        self.wan_calls += 1
        try:
            link.check("before call")
            if bulk_kb > 0.0:
                yield from link.occupy(bulk_kb)
            result = yield from self.channels[peer_name].invoke(
                self.peers[peer_name].endpoint, method,
                self.domain.name, *args, payload_kb=payload_kb)
            link.check("awaiting response")
        except RpcError:
            self.wan_failures += 1
            raise
        return result

    def _local_rows(self, name: Optional[str]) -> List[dict]:
        rows = []
        for data in self.domain.home_data():
            if name is not None and data.name != name:
                continue
            rows.append(self._descriptor(data))
        rows.sort(key=lambda row: row["uid"])
        return rows

    def _descriptor(self, data) -> dict:
        return {
            "uid": data.uid,
            "name": data.name,
            "size_mb": data.size_mb,
            "visibility": self.domain.visibility_of(data.uid),
            "home": self.domain.name,
        }

    def federated_search(self, name: Optional[str] = None):
        """Generator: scatter-gather catalog search across admitting peers.

        Returns ``(rows, unreachable)``: the merged, policy-admissible
        descriptors (local home view first — the home domain sees all its
        own data regardless of visibility) and the peers that could not be
        reached (partitioned links are a fact of WAN life, not an error).
        """
        merged: Dict[str, dict] = {}
        for row in self._local_rows(name):
            merged[row["uid"]] = row
        buckets: Dict[str, Optional[List[dict]]] = {}

        def ask(peer_name: str):
            try:
                rows = yield from self.call_peer(peer_name, "search", name,
                                                 payload_kb=0.5)
                buckets[peer_name] = rows
            except RpcError:
                buckets[peer_name] = None

        procs = [self.env.process(ask(peer)) for peer in self.peer_names()]
        if procs:
            yield self.env.all_of(procs)
        unreachable = []
        for peer in self.peer_names():
            rows = buckets[peer]
            if rows is None:
                self.peers_unreachable += 1
                unreachable.append(peer)
                continue
            for row in rows:
                merged.setdefault(row["uid"], row)
        ordered = sorted(merged.values(),
                         key=lambda row: (row["home"], row["uid"]))
        return ordered, unreachable

    def fetch_remote(self, peer_name: str, uid: str, size_mb: float = 0.0):
        """Generator: explicit cross-domain fetch of one datum's content.

        The peer's gateway enforces :func:`may_fetch`; a denial surfaces as
        ``None`` (policy verdicts are data, not transport errors)."""
        bulk_kb = max(0.0, size_mb) * 1024.0
        reply = yield from self.call_peer(peer_name, "fetch", uid,
                                          payload_kb=1.0, bulk_kb=bulk_kb)
        return reply

    # ------------------------------------------------------------------ server side
    def search(self, caller_domain: str, name: Optional[str] = None):
        """Serve a federated search: only home data the policy admits."""
        if (caller_domain != self.domain.name
                and not self.trust.admits(caller_domain)):
            self.searches_denied += 1
            return []
        self.searches_served += 1
        rows = []
        for row in self._local_rows(name):
            if may_list(row["visibility"], caller_domain, self.domain.name,
                        self.trust):
                rows.append(row)
        return rows

    def fetch(self, caller_domain: str, uid: str):
        """Serve an explicit fetch: descriptor + content, or ``None``."""
        data = self.domain.home_datum(uid)
        if data is None:
            self.fetches_denied += 1
            return None
        visibility = self.domain.visibility_of(uid)
        if not may_fetch(visibility, caller_domain, self.domain.name,
                         self.trust):
            self.fetches_denied += 1
            return None
        self.fetches_served += 1
        return {
            "descriptor": self._descriptor(data),
            "attribute": self.domain.attribute_of(uid),
            "content": self.domain.content_of(uid),
        }

    def offer(self, caller_domain: str, descriptor: dict) -> str:
        """Replication admission probe (the cheap half of the handshake).

        ``"accept"`` — send the copy; ``"have"`` — already installed
        (idempotent re-offer after a partition); ``"deny"`` — the policy
        does not admit this import (wrong trust, non-public visibility, or
        a caller lying about the datum's home)."""
        if not self.trust.admits(caller_domain):
            self.imports_rejected += 1
            return "deny"
        if descriptor.get("home") != caller_domain:
            # Only the home domain may push its data: no transitive export.
            self.imports_rejected += 1
            return "deny"
        if descriptor.get("visibility") != PUBLIC:
            self.imports_rejected += 1
            return "deny"
        if self.domain.knows(descriptor["uid"]):
            return "have"
        return "accept"

    def import_datum(self, caller_domain: str, descriptor: dict,
                     attribute, content) -> str:
        """Install one replicated datum (idempotent; re-applies the checks).

        The offer/import split exists so a partition can land between the
        two — the import re-validates everything the offer did, because by
        then the world may have changed."""
        verdict = self.offer(caller_domain, descriptor)
        if verdict == "deny":
            return "deny"
        if verdict == "have":
            self.imports_duplicate += 1
            return "have"
        self.domain.install_replica(descriptor, attribute, content,
                                    home=caller_domain)
        self.imports_accepted += 1
        return "accepted"

    # ------------------------------------------------------------------ report
    def stats(self) -> dict:
        return {
            "searches_served": self.searches_served,
            "searches_denied": self.searches_denied,
            "fetches_served": self.fetches_served,
            "fetches_denied": self.fetches_denied,
            "imports_accepted": self.imports_accepted,
            "imports_duplicate": self.imports_duplicate,
            "imports_rejected": self.imports_rejected,
            "wan_calls": self.wan_calls,
            "wan_failures": self.wan_failures,
            "peers_unreachable": self.peers_unreachable,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FederationGateway({self.domain.name}, "
                f"peers={self.peer_names()})")
