"""The federation policy layer: trust, visibility, admissibility.

Everything here is **pure** — no simulation kernel, no services — so the
hypothesis property suite can enumerate hundreds of random peer graphs,
trust policies and visibility assignments per second.  The gateway
(:mod:`repro.federation.gateway`) calls *these* functions on the serving
side of every cross-domain RPC; they are the single source of policy
truth, enforced at the gateway router and never client-side.

Model (after the openintent Federation idiom, see SNIPPETS.md Snippet 1):

* a domain's :class:`TrustPolicy` is ``open`` (any peer is admitted) or
  ``allowlist`` (only the named peer domains are admitted);
* every datum carries a ``visibility`` attribute
  (:data:`~repro.core.attributes.VISIBILITIES`):

  ========== ================= ==================== =====================
  visibility federated search   explicit fetch       scheduled replication
  ========== ================= ==================== =====================
  public     listed             allowed              exported
  unlisted   hidden             allowed              pinned to home
  private    hidden             denied               pinned to home
  ========== ================= ==================== =====================

  (each column additionally requires the serving domain's trust policy to
  admit the caller; the home domain itself is always admitted.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.core.attributes import VISIBILITIES

__all__ = [
    "PUBLIC",
    "UNLISTED",
    "PRIVATE",
    "TrustPolicy",
    "may_list",
    "may_fetch",
    "may_export",
]

PUBLIC, UNLISTED, PRIVATE = VISIBILITIES


def _check_visibility(visibility: str) -> None:
    if visibility not in VISIBILITIES:
        raise ValueError(f"unknown visibility {visibility!r} "
                         f"(expected one of {VISIBILITIES})")


@dataclass(frozen=True)
class TrustPolicy:
    """Which peer domains a domain's gateway admits.

    ``open`` admits every peer; ``allowlist`` admits exactly the domains in
    ``peers``.  The home domain is always admitted to its own data — a
    policy governs *cross*-domain access only.
    """

    kind: str = "open"
    peers: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self):
        if self.kind not in ("open", "allowlist"):
            raise ValueError(
                f"trust policy kind must be 'open' or 'allowlist' "
                f"(got {self.kind!r})")
        object.__setattr__(self, "peers", frozenset(self.peers))

    @classmethod
    def open_(cls) -> "TrustPolicy":
        return cls(kind="open")

    @classmethod
    def allowlist(cls, peers: Iterable[str]) -> "TrustPolicy":
        return cls(kind="allowlist", peers=frozenset(peers))

    def admits(self, caller_domain: str) -> bool:
        if self.kind == "open":
            return True
        return caller_domain in self.peers

    def describe(self) -> str:
        if self.kind == "open":
            return "trust open"
        return f"trust allowlist({', '.join(sorted(self.peers))})"


def may_list(visibility: str, caller_domain: str, home_domain: str,
             trust: TrustPolicy) -> bool:
    """May *caller_domain* see this datum in a federated search answered by
    *home_domain*'s gateway?  Only ``public`` data is listed cross-domain."""
    _check_visibility(visibility)
    if caller_domain == home_domain:
        return True
    if not trust.admits(caller_domain):
        return False
    return visibility == PUBLIC


def may_fetch(visibility: str, caller_domain: str, home_domain: str,
              trust: TrustPolicy) -> bool:
    """May *caller_domain* fetch this datum's content by explicit reference?
    ``unlisted`` data is reachable this way; ``private`` never is."""
    _check_visibility(visibility)
    if caller_domain == home_domain:
        return True
    if not trust.admits(caller_domain):
        return False
    return visibility in (PUBLIC, UNLISTED)


def may_export(visibility: str, target_domain: str, home_domain: str,
               home_trust: TrustPolicy, target_trust: TrustPolicy) -> bool:
    """May scheduled replication push this datum from *home_domain* into
    *target_domain*?  Sovereignty: only ``public`` data leaves home, only
    into domains the home's own trust policy admits (the home gateway
    enforces its side when planning exports), and only when the target's
    trust policy admits the home (the *receiving* gateway enforces its
    side on import) — replication needs mutual admission."""
    _check_visibility(visibility)
    if target_domain == home_domain:
        return True
    if not home_trust.admits(target_domain):
        return False
    if not target_trust.admits(home_domain):
        return False
    return visibility == PUBLIC
