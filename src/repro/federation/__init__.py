"""Federated multi-fabric BitDew: WAN-peered sovereign domains.

The paper promises data management for desktop grids that span
administrative boundaries; this package supplies the missing layer.
Several complete BitDew environments — each with its own LAN topology and
(optionally sharded) service fabric — peer across WAN gateways:

* :mod:`repro.federation.policy` — pure trust/visibility policy
  (``open``/``allowlist`` trust, ``public``/``unlisted``/``private``
  visibility), the single source of admissibility truth;
* :mod:`repro.federation.gateway` — :class:`WanLink` (shared-capacity,
  partitionable WAN pipes) and :class:`FederationGateway` (scatter-gather
  federated search, explicit fetch, idempotent replica import — policy
  enforced on the serving side, never client-side);
* :mod:`repro.federation.replication` — :class:`FederationReplicator`,
  scheduled sovereignty-aware exports driven by the Data Scheduler's
  replica-deficit machinery;
* :mod:`repro.federation.deployment` — :class:`DomainSpec`,
  :class:`FederationDomain` and :class:`Federation`, the builder that
  turns declarative domain specs into one peered simulation.
"""

from repro.federation.deployment import DomainSpec, Federation, FederationDomain
from repro.federation.gateway import FederationGateway, WanLink
from repro.federation.policy import (PRIVATE, PUBLIC, UNLISTED, TrustPolicy,
                                     may_export, may_fetch, may_list)
from repro.federation.replication import FederationReplicator

__all__ = [
    "DomainSpec",
    "Federation",
    "FederationDomain",
    "FederationGateway",
    "FederationReplicator",
    "TrustPolicy",
    "WanLink",
    "PUBLIC",
    "UNLISTED",
    "PRIVATE",
    "may_export",
    "may_fetch",
    "may_list",
]
