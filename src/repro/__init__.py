"""repro — a reproduction of *BitDew: A Programmable Environment for
Large-Scale Data Management and Distribution* (Fedak, He, Cappello, 2008).

The package is organised as the paper's architecture (Figure 1):

* **API layer** (:mod:`repro.core`): ``BitDew``, ``ActiveData``,
  ``TransferManager``, data attributes, life-cycle events and the runtime
  environment that wires everything together.
* **Service layer** (:mod:`repro.services`): Data Catalog, Data Repository,
  Data Transfer and Data Scheduler (Algorithm 1), plus the failure detector.
* **Back-ends** (:mod:`repro.storage`, :mod:`repro.transfer`,
  :mod:`repro.dht`): SQL-like persistence, out-of-band transfer protocols
  (FTP / HTTP / BitTorrent) and the Chord-style DHT behind the Distributed
  Data Catalog.
* **Substrate** (:mod:`repro.sim`, :mod:`repro.net`): the discrete-event
  kernel and the flow-level network that stand in for the paper's Grid'5000
  and DSL-Lab testbeds (see ``DESIGN.md`` for the substitution rationale).
* **Applications and workloads** (:mod:`repro.apps`, :mod:`repro.workloads`):
  the master/worker framework, the BLAST application model and the
  churn/workload generators the experiments use.
* **Experiments** (:mod:`repro.experiments`, ``python -m repro``): the
  declarative scenario layer — every table/figure of the paper and every
  beyond-the-paper stress run as a registered, seedable, JSON-serialisable
  scenario behind one CLI (``list`` / ``describe`` / ``run`` / ``sweep``).
"""

from repro.core import (
    ActiveData,
    ActiveDataEventHandler,
    Attribute,
    BitDew,
    BitDewEnvironment,
    Data,
    DataFlag,
    DataStatus,
    HostAgent,
    Locator,
    TransferManager,
    parse_attribute,
)
from repro.net import cluster_topology, dsl_lab_topology, grid5000_testbed
from repro.sim import Environment
from repro.storage import FileContent

__version__ = "1.0.0"

__all__ = [
    "ActiveData",
    "ActiveDataEventHandler",
    "Attribute",
    "BitDew",
    "BitDewEnvironment",
    "Data",
    "DataFlag",
    "DataStatus",
    "Environment",
    "FileContent",
    "HostAgent",
    "Locator",
    "TransferManager",
    "cluster_topology",
    "dsl_lab_topology",
    "grid5000_testbed",
    "parse_attribute",
    "__version__",
]
