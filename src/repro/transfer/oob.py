"""The out-of-band transfer plug-in framework (paper §3.4.2, Figure 2).

To plug a new file-transfer protocol into BitDew a programmer implements the
``OOBTransfer`` interface — seven methods: ``connect``, ``disconnect``,
``probe``, and send/receive from the sender and receiver sides, in blocking
or non-blocking flavours.  Protocols shipped as background daemons (the BTPD
BitTorrent client in the paper) use the ``DaemonConnector`` helper.

Here the "wire" is the flow-level network of :mod:`repro.net`; a transfer
moves a :class:`~repro.storage.filesystem.FileContent` from a source
endpoint (host + local file system + path) to a destination endpoint.  The
:class:`TransferHandle` tracks progress, supports probing (the
receiver-driven reliability check: size + MD5), and carries the completion
event the :class:`~repro.services.data_transfer.DataTransferService` waits
on.
"""

from __future__ import annotations

import abc
import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.sim.kernel import Environment
from repro.net.flows import Network
from repro.net.host import Host
from repro.storage.filesystem import FileContent, LocalFileSystem

__all__ = [
    "BlockingOOBTransfer",
    "DaemonConnector",
    "NonBlockingOOBTransfer",
    "OOBTransfer",
    "TransferEndpoint",
    "TransferError",
    "TransferHandle",
    "TransferState",
]

_handle_counter = itertools.count(1)


class TransferError(RuntimeError):
    """Raised when an out-of-band transfer fails definitively."""


class TransferState(enum.Enum):
    """Life cycle of one out-of-band transfer."""

    PENDING = "pending"
    CONNECTING = "connecting"
    TRANSFERRING = "transferring"
    COMPLETE = "complete"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class TransferEndpoint:
    """One side of a transfer: a host, its local file system and a path."""

    host: Host
    filesystem: LocalFileSystem
    path: str

    def read(self) -> FileContent:
        return self.filesystem.read(self.path)

    def write(self, content: FileContent) -> FileContent:
        return self.filesystem.write(self.path, content)

    def exists(self) -> bool:
        return self.filesystem.exists(self.path)


class TransferHandle:
    """Book-keeping for one transfer: state, progress, completion event."""

    def __init__(self, env: Environment, content: FileContent,
                 source: TransferEndpoint, destination: TransferEndpoint,
                 protocol: str):
        self.tid = next(_handle_counter)
        self.env = env
        self.content = content
        self.source = source
        self.destination = destination
        self.protocol = protocol
        self.state = TransferState.PENDING
        self.transferred_mb = 0.0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.error: Optional[str] = None
        self.attempts = 0
        #: Fires with the handle on success, or fails with TransferError.
        self.done = env.event()

    # -- progress -----------------------------------------------------------
    @property
    def size_mb(self) -> float:
        return self.content.size_mb

    @property
    def progress(self) -> float:
        """Fraction completed in [0, 1]."""
        if self.size_mb <= 0:
            return 1.0 if self.state is TransferState.COMPLETE else 0.0
        return min(1.0, self.transferred_mb / self.size_mb)

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def throughput_mbps(self) -> Optional[float]:
        dur = self.duration
        if dur is None or dur <= 0:
            return None
        return self.transferred_mb / dur

    # -- probing (receiver-driven reliability, §3.4.2) ------------------------
    def probe(self) -> TransferState:
        """Check the receiver side: size and MD5 of what has landed so far."""
        if self.state is TransferState.COMPLETE and self.destination.exists():
            received = self.destination.read()
            if not self.content.verify(received):
                self.state = TransferState.FAILED
                self.error = "integrity check failed (MD5 mismatch)"
        return self.state

    # -- completion ------------------------------------------------------------
    def _complete(self) -> None:
        if self.state is TransferState.CANCELLED:
            return  # a cancelled transfer stays cancelled even if bytes landed
        self.state = TransferState.COMPLETE
        self.transferred_mb = self.size_mb
        self.end_time = self.env.now
        if not self.done.triggered:
            self.done.succeed(self)

    def _fail(self, reason: str) -> None:
        if self.state is TransferState.CANCELLED:
            return
        self.state = TransferState.FAILED
        self.error = reason
        self.end_time = self.env.now
        if not self.done.triggered:
            self.done.fail(TransferError(reason))
            self.done.defused = True

    def cancel(self, reason: str = "cancelled") -> None:
        if self.state in (TransferState.COMPLETE, TransferState.FAILED):
            return
        self.state = TransferState.CANCELLED
        self.error = reason
        self.end_time = self.env.now
        if not self.done.triggered:
            self.done.fail(TransferError(reason))
            self.done.defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransferHandle(#{self.tid} {self.protocol} "
            f"{self.source.host.name}->{self.destination.host.name} "
            f"{self.content.name} {self.state.value})"
        )


class OOBTransfer(abc.ABC):
    """The seven-method plug-in interface of Figure 2.

    Concrete protocols subclass :class:`BlockingOOBTransfer` or
    :class:`NonBlockingOOBTransfer` and implement ``_run_transfer`` (the
    protocol-specific data movement, written as a simulation process).
    """

    #: protocol name used in data attributes (e.g. ``protocol="bittorrent"``)
    name: str = "oob"
    #: whether the protocol is provided as a library or as a daemon
    daemon_based: bool = False

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        #: all handles ever created through this protocol instance
        self.handles: list[TransferHandle] = []

    # -- the 7 methods ---------------------------------------------------------
    @abc.abstractmethod
    def connect(self, handle: TransferHandle):
        """Generator: open the protocol connection (control channel, tracker...)."""

    @abc.abstractmethod
    def disconnect(self, handle: TransferHandle):
        """Generator: close the protocol connection."""

    def probe(self, handle: TransferHandle) -> TransferState:
        """Poll the transfer state (receiver-driven check)."""
        return handle.probe()

    def blocking_send(self, handle: TransferHandle):
        """Generator: sender side, returns when the transfer completes."""
        yield from self._drive(handle)
        return handle

    def blocking_receive(self, handle: TransferHandle):
        """Generator: receiver side, returns when the transfer completes."""
        yield from self._drive(handle)
        return handle

    def non_blocking_send(self, handle: TransferHandle) -> TransferHandle:
        """Start the sender side and return immediately; wait on ``handle.done``."""
        self.env.process(self._drive(handle))
        return handle

    def non_blocking_receive(self, handle: TransferHandle) -> TransferHandle:
        """Start the receiver side and return immediately; wait on ``handle.done``."""
        self.env.process(self._drive(handle))
        return handle

    # -- handle creation ---------------------------------------------------------
    def create_handle(self, content: FileContent, source: TransferEndpoint,
                      destination: TransferEndpoint) -> TransferHandle:
        handle = TransferHandle(self.env, content, source, destination, self.name)
        self.handles.append(handle)
        return handle

    # -- protocol driver ----------------------------------------------------------
    def _drive(self, handle: TransferHandle):
        """Run connect -> transfer -> disconnect, updating the handle state."""
        if handle.state not in (TransferState.PENDING, TransferState.FAILED):
            raise TransferError(f"handle #{handle.tid} already driven")
        handle.attempts += 1
        handle.state = TransferState.CONNECTING
        handle.start_time = self.env.now if handle.start_time is None else handle.start_time
        try:
            yield from self.connect(handle)
            handle.state = TransferState.TRANSFERRING
            yield from self._run_transfer(handle)
            yield from self.disconnect(handle)
        except TransferError as exc:
            handle._fail(str(exc))
            return handle
        # Receiver-driven integrity verification before declaring success.
        if not handle.destination.exists() or not handle.content.verify(
            handle.destination.read()
        ):
            handle._fail("integrity check failed (MD5 mismatch)")
            return handle
        handle._complete()
        return handle

    @abc.abstractmethod
    def _run_transfer(self, handle: TransferHandle):
        """Generator: move the bytes (protocol specific)."""


class BlockingOOBTransfer(OOBTransfer):
    """Base class for protocols whose native API is blocking (FTP, HTTP libs)."""

    blocking = True


class NonBlockingOOBTransfer(OOBTransfer):
    """Base class for protocols whose native API is asynchronous."""

    blocking = False


class DaemonConnector:
    """Helper for protocols provided as a background daemon (paper Figure 2).

    The daemon must be started before any transfer and contacted through a
    small local-IPC latency.  BTPD in the paper is such a daemon; the
    BitTorrent protocol below uses this connector when configured in daemon
    mode.
    """

    def __init__(self, env: Environment, startup_cost_s: float = 0.5,
                 ipc_latency_s: float = 0.002):
        self.env = env
        self.startup_cost_s = float(startup_cost_s)
        self.ipc_latency_s = float(ipc_latency_s)
        self._started_hosts: set = set()

    def ensure_started(self, host: Host):
        """Generator: start the daemon on *host* if not already running."""
        if host.uid not in self._started_hosts:
            yield self.env.timeout(self.startup_cost_s)
            self._started_hosts.add(host.uid)
        return True

    def is_started(self, host: Host) -> bool:
        return host.uid in self._started_hosts

    def stop(self, host: Host) -> None:
        self._started_hosts.discard(host.uid)

    def command(self):
        """Generator: one IPC round trip with the daemon."""
        yield self.env.timeout(self.ipc_latency_s)
        return True
