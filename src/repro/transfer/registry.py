"""Protocol registry: the plug-in point for out-of-band transfer protocols.

Users select a protocol through the ``protocol`` (a.k.a. ``oob``) data
attribute; the Data Transfer service resolves the name through this registry
(§3.4.2: "all of these components can be replaced and plugged-in by the
users").  The registry maps protocol names to factories so that a fresh
protocol instance can be created per platform (it needs the simulation
environment and the network), while instances are cached per registry so
that every transfer of the same platform shares protocol state (FTP server
connection slots, BitTorrent swarms, HTTP keep-alive connections).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.sim.kernel import Environment
from repro.net.flows import Network
from repro.transfer.bittorrent import BitTorrentProtocol
from repro.transfer.ftp import FTPProtocol
from repro.transfer.http import HTTPProtocol
from repro.transfer.oob import OOBTransfer

__all__ = ["ProtocolRegistry", "UnknownProtocolError", "default_registry"]

ProtocolFactory = Callable[[Environment, Network], OOBTransfer]


class UnknownProtocolError(KeyError):
    """Raised when a data attribute names a protocol nobody registered."""


class ProtocolRegistry:
    """Maps protocol names to factories and caches built instances."""

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        self._factories: Dict[str, ProtocolFactory] = {}
        self._instances: Dict[str, OOBTransfer] = {}

    # -- registration -----------------------------------------------------------
    def register(self, name: str, factory: ProtocolFactory,
                 replace: bool = False) -> None:
        key = name.lower()
        if key in self._factories and not replace:
            raise ValueError(f"protocol {name!r} already registered")
        self._factories[key] = factory
        self._instances.pop(key, None)

    def register_instance(self, name: str, instance: OOBTransfer) -> None:
        """Register an already-built protocol instance (e.g. a tuned swarm)."""
        key = name.lower()
        self._factories[key] = lambda env, net: instance
        self._instances[key] = instance

    def names(self) -> Iterable[str]:
        return sorted(self._factories)

    def supports(self, name: str) -> bool:
        return name.lower() in self._factories

    # -- resolution ----------------------------------------------------------------
    def get(self, name: str) -> OOBTransfer:
        key = name.lower()
        instance = self._instances.get(key)
        if instance is not None:
            return instance
        factory = self._factories.get(key)
        if factory is None:
            raise UnknownProtocolError(
                f"no transfer protocol registered under {name!r}; "
                f"known protocols: {list(self.names())}"
            )
        instance = factory(self.env, self.network)
        self._instances[key] = instance
        return instance


def default_registry(env: Environment, network: Network,
                     bittorrent_mode: str = "auto") -> ProtocolRegistry:
    """The registry the paper's prototype ships: HTTP, FTP and BitTorrent."""
    registry = ProtocolRegistry(env, network)
    registry.register("ftp", lambda e, n: FTPProtocol(e, n))
    registry.register("http", lambda e, n: HTTPProtocol(e, n))
    registry.register(
        "bittorrent",
        lambda e, n: BitTorrentProtocol(e, n, mode=bittorrent_mode),
    )
    return registry
