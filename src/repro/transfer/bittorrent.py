"""Collaborative BitTorrent-style transfer protocol (the paper's collective
out-of-band protocol, §3.4.2, evaluated in §4.3 and §5).

The paper distributes large shared files (the 2.68 GB Genebase, the
application binary) with BitTorrent because a swarm's aggregate upload
capacity grows with the number of participants: completion time stays nearly
flat as nodes are added, whereas an FTP server's uplink is divided among
them (Figures 3a and 5).  BitTorrent also pays a noticeably higher fixed
overhead (tracker announce, peer handshakes, per-piece protocol chatter),
which is why the paper observes FTP winning for small files and small node
counts.

Two swarm models are provided (this is the ablation called out in
``DESIGN.md``):

``piece``
    A piece-level simulation: the file is cut into pieces; every leecher
    repeatedly selects its rarest missing piece, picks a peer that has it
    and a free upload slot, and downloads the piece as a network flow.
    Completed peers keep seeding.  Faithful but O(nodes x pieces) flows.

``fluid``
    A calibrated analytic model of swarm makespan (seed-constrained start-up,
    peer-exchange steady state, piece-granularity propagation term) used for
    large sweeps where the piece-level model would be too slow.  The seeder's
    uplink is reserved as background load for the duration so that concurrent
    point-to-point transfers still see the contention.

``auto`` (default) picks ``piece`` when ``nodes x pieces`` is below
``detail_budget`` and ``fluid`` otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.kernel import Environment, Event
from repro.sim.rng import RandomStreams
from repro.net.flows import Network, TransferFailed
from repro.net.host import Host
from repro.transfer.oob import (
    DaemonConnector,
    NonBlockingOOBTransfer,
    TransferError,
    TransferHandle,
)

__all__ = ["BitTorrentProtocol", "SwarmStats"]


@dataclass
class SwarmStats:
    """Aggregate statistics of one swarm (exported for experiment reports)."""

    infohash: str
    piece_count: int
    peers_joined: int = 0
    peers_completed: int = 0
    pieces_transferred: int = 0
    first_join_time: Optional[float] = None
    last_completion_time: Optional[float] = None


class _Peer:
    """Piece-level swarm participant."""

    def __init__(self, handle: TransferHandle, piece_count: int):
        self.handle = handle
        self.host: Host = handle.destination.host
        self.pieces: Set[int] = set()
        self.piece_count = piece_count
        self.active_uploads = 0
        self.active_downloads = 0
        self.failed = False

    @property
    def complete(self) -> bool:
        return len(self.pieces) == self.piece_count


class _Swarm:
    """All state shared by the transfers of one content item."""

    def __init__(self, env: Environment, infohash: str, piece_count: int,
                 piece_size_mb: float):
        self.env = env
        self.infohash = infohash
        self.piece_count = piece_count
        self.piece_size_mb = piece_size_mb
        #: initial seeders: hosts that have the full content (the service node)
        self.seed_hosts: List[Host] = []
        self.seed_active_uploads: Dict[int, int] = {}
        self.peers: Dict[int, _Peer] = {}
        self.stats = SwarmStats(infohash=infohash, piece_count=piece_count)
        self._changed = env.event()
        #: background-load reservation flag for the fluid model
        self.background_reserved = False
        self.fluid_active = 0

    # -- change notification ---------------------------------------------------
    def notify(self) -> None:
        event, self._changed = self._changed, self.env.event()
        if not event.triggered:
            event.succeed(None)

    @property
    def changed(self) -> Event:
        return self._changed

    # -- membership ---------------------------------------------------------------
    def add_seed(self, host: Host) -> None:
        if host.uid not in self.seed_active_uploads:
            self.seed_hosts.append(host)
            self.seed_active_uploads[host.uid] = 0
            self.notify()

    def add_peer(self, peer: _Peer) -> None:
        self.peers[peer.host.uid] = peer
        self.stats.peers_joined += 1
        if self.stats.first_join_time is None:
            self.stats.first_join_time = self.env.now
        self.notify()

    def remove_peer(self, peer: _Peer) -> None:
        self.peers.pop(peer.host.uid, None)
        self.notify()

    # -- piece availability ----------------------------------------------------------
    def piece_availability(self, piece: int) -> int:
        count = len(self.seed_hosts)
        for peer in self.peers.values():
            if piece in peer.pieces:
                count += 1
        return count

    def holders_of(self, piece: int, max_uploads: int) -> List[object]:
        """Peers/seeds that have *piece* and a free upload slot (online only)."""
        holders: List[object] = []
        for host in self.seed_hosts:
            if host.online and self.seed_active_uploads[host.uid] < max_uploads:
                holders.append(("seed", host))
        for peer in self.peers.values():
            if (piece in peer.pieces and peer.host.online
                    and peer.active_uploads < max_uploads):
                holders.append(("peer", peer))
        return holders


class BitTorrentProtocol(NonBlockingOOBTransfer):
    """BitTorrent: collaborative swarm distribution of shared files."""

    name = "bittorrent"
    daemon_based = True

    def __init__(
        self,
        env: Environment,
        network: Network,
        mode: str = "auto",
        piece_size_mb: float = 4.0,
        max_pieces: int = 64,
        min_pieces: int = 4,
        tracker_announce_s: float = 0.5,
        handshake_s: float = 0.2,
        per_piece_overhead_s: float = 0.01,
        max_uploads_per_peer: int = 4,
        max_parallel_piece_downloads: int = 2,
        peer_discovery_s: float = 1.0,
        connection_rate_cap_mbps: float = 8.0,
        efficiency: float = 0.85,
        detail_budget: int = 4000,
        daemon: Optional[DaemonConnector] = None,
        rng: Optional[RandomStreams] = None,
    ):
        super().__init__(env, network)
        if mode not in ("auto", "piece", "fluid"):
            raise ValueError("mode must be 'auto', 'piece' or 'fluid'")
        if not (0.0 < efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")
        self.mode = mode
        self.piece_size_mb = float(piece_size_mb)
        self.max_pieces = int(max_pieces)
        self.min_pieces = int(min_pieces)
        self.tracker_announce_s = float(tracker_announce_s)
        self.handshake_s = float(handshake_s)
        self.per_piece_overhead_s = float(per_piece_overhead_s)
        self.max_uploads_per_peer = int(max_uploads_per_peer)
        self.max_parallel_piece_downloads = int(max_parallel_piece_downloads)
        self.peer_discovery_s = float(peer_discovery_s)
        #: BitTorrent clients (Azureus/BTPD in the paper) do not saturate a
        #: GigE link; this caps each peer connection's application throughput.
        self.connection_rate_cap_mbps = float(connection_rate_cap_mbps)
        self.efficiency = float(efficiency)
        self.detail_budget = int(detail_budget)
        self.daemon = daemon if daemon is not None else DaemonConnector(env)
        self.rng = rng if rng is not None else RandomStreams(7)
        self._swarms: Dict[str, _Swarm] = {}

    # -- swarm management -------------------------------------------------------
    def piece_count_for(self, size_mb: float) -> int:
        if size_mb <= 0:
            return 1
        raw = int(math.ceil(size_mb / self.piece_size_mb))
        return max(self.min_pieces, min(self.max_pieces, raw))

    def swarm_for(self, handle: TransferHandle) -> _Swarm:
        infohash = handle.content.checksum
        swarm = self._swarms.get(infohash)
        if swarm is None:
            pieces = self.piece_count_for(handle.content.size_mb)
            swarm = _Swarm(self.env, infohash, pieces,
                           handle.content.size_mb / pieces)
            self._swarms[infohash] = swarm
        swarm.add_seed(handle.source.host)
        return swarm

    def swarm_stats(self, content_checksum: str) -> Optional[SwarmStats]:
        swarm = self._swarms.get(content_checksum)
        return swarm.stats if swarm else None

    def _effective_mode(self, swarm: _Swarm) -> str:
        if self.mode != "auto":
            return self.mode
        expected_peers = max(len(swarm.peers) + 1, swarm.stats.peers_joined + 1)
        if expected_peers * swarm.piece_count > self.detail_budget:
            return "fluid"
        return "piece"

    # -- OOBTransfer interface -----------------------------------------------------
    def connect(self, handle: TransferHandle):
        """Start the local daemon, fetch metadata and announce to the tracker."""
        yield from self.daemon.ensure_started(handle.destination.host)
        latency = self.network.latency_between(handle.source.host,
                                               handle.destination.host)
        # .torrent metadata fetch + tracker announce + first peer handshakes.
        yield self.env.timeout(self.tracker_announce_s + self.handshake_s
                               + 2.0 * latency)
        return True

    def disconnect(self, handle: TransferHandle):
        yield from self.daemon.command()
        return True

    def _run_transfer(self, handle: TransferHandle):
        if not handle.source.exists():
            raise TransferError(
                f"source file {handle.source.path!r} missing on "
                f"{handle.source.host.name}"
            )
        swarm = self.swarm_for(handle)
        if self._effective_mode(swarm) == "fluid":
            yield from self._run_fluid(handle, swarm)
        else:
            yield from self._run_piece_level(handle, swarm)
        return handle

    # -- piece-level model -----------------------------------------------------------
    def _run_piece_level(self, handle: TransferHandle, swarm: _Swarm):
        peer = _Peer(handle, swarm.piece_count)
        swarm.add_peer(peer)
        downloads_done = 0
        try:
            while not peer.complete:
                if not peer.host.online:
                    raise TransferError(f"peer {peer.host.name} went offline")
                choice = self._select_piece_and_source(swarm, peer)
                if choice is None:
                    # Nothing downloadable right now: wait for the swarm to change.
                    yield swarm.changed
                    continue
                piece, kind, source = choice
                yield from self._download_piece(swarm, peer, piece, kind, source)
                downloads_done += 1
            # Full file assembled locally.
            handle.transferred_mb = handle.content.size_mb
            handle.destination.write(handle.source.read())
            swarm.stats.peers_completed += 1
            swarm.stats.last_completion_time = self.env.now
            # The peer keeps seeding (its pieces stay available to others).
            swarm.notify()
        except TransferError:
            peer.failed = True
            swarm.remove_peer(peer)
            raise
        return handle

    def _select_piece_and_source(self, swarm: _Swarm, peer: _Peer):
        """Rarest-first piece selection + least-busy source selection."""
        if peer.active_downloads >= self.max_parallel_piece_downloads:
            return None
        missing = [p for p in range(swarm.piece_count) if p not in peer.pieces]
        if not missing:
            return None
        # Order by availability (rarest first); shuffle ties via the RNG.
        missing = self.rng.shuffle(f"pieces-{peer.host.uid}", missing)
        missing.sort(key=swarm.piece_availability)
        for piece in missing:
            holders = swarm.holders_of(piece, self.max_uploads_per_peer)
            holders = [h for h in holders
                       if not (h[0] == "peer" and h[1] is peer)]
            if not holders:
                continue
            holders.sort(key=lambda h: (
                swarm.seed_active_uploads[h[1].uid] if h[0] == "seed"
                else h[1].active_uploads
            ))
            kind, source = holders[0]
            return piece, kind, source
        return None

    def _download_piece(self, swarm: _Swarm, peer: _Peer, piece: int,
                        kind: str, source) -> None:
        source_host = source if kind == "seed" else source.host
        peer.active_downloads += 1
        if kind == "seed":
            swarm.seed_active_uploads[source_host.uid] += 1
        else:
            source.active_uploads += 1
        try:
            yield self.env.timeout(self.per_piece_overhead_s)
            flow = self.network.transfer(
                source_host, peer.host, swarm.piece_size_mb,
                label=f"bt:{swarm.infohash[:8]}:p{piece}->{peer.host.name}",
                rate_cap_mbps=self.connection_rate_cap_mbps,
            )
            try:
                yield flow.done
            except TransferFailed as exc:
                raise TransferError(str(exc)) from exc
            peer.pieces.add(piece)
            peer.handle.transferred_mb = len(peer.pieces) * swarm.piece_size_mb
            swarm.stats.pieces_transferred += 1
            swarm.notify()
        finally:
            peer.active_downloads -= 1
            if kind == "seed":
                swarm.seed_active_uploads[source_host.uid] -= 1
            else:
                source.active_uploads -= 1

    # -- fluid model -------------------------------------------------------------------
    def _fluid_makespan(self, handle: TransferHandle, swarm: _Swarm,
                        n_peers: int) -> float:
        """Analytic swarm completion time for a homogeneous-ish swarm."""
        size_mb = handle.content.size_mb
        # Upload side: up to max_uploads_per_peer parallel connections, each
        # capped; download side: the piece-level model downloads pieces
        # serially, so one connection cap applies (keeps both models aligned).
        upload_cap = self.connection_rate_cap_mbps * self.max_uploads_per_peer
        seed_up = sum(min(h.uplink_mbps, upload_cap)
                      for h in swarm.seed_hosts if h.online)
        seed_up = max(seed_up, 1e-9)
        peer_up = min(handle.destination.host.uplink_mbps, upload_cap)
        peer_down = min(handle.destination.host.downlink_mbps,
                        self.connection_rate_cap_mbps)
        n = max(1, n_peers)
        # Steady-state bound: total demand over total (efficiency-discounted)
        # upload capacity, the receiver's downlink, and the requirement that
        # the seed push at least one full copy into the swarm.
        aggregate = (n * size_mb) / (seed_up + (n - 1) * peer_up * self.efficiency)
        steady = max(size_mb / peer_down, size_mb / seed_up, aggregate)
        # Piece-granularity propagation: the last piece still has to ripple
        # through ~log2(n) exchange generations.
        propagation = (swarm.piece_size_mb / (peer_up * self.efficiency)) \
            * math.ceil(math.log2(n + 1))
        overhead = swarm.piece_count * self.per_piece_overhead_s
        return steady + propagation + overhead

    def _run_fluid(self, handle: TransferHandle, swarm: _Swarm):
        swarm.stats.peers_joined += 1
        if swarm.stats.first_join_time is None:
            swarm.stats.first_join_time = self.env.now
        swarm.fluid_active += 1
        seed_host = handle.source.host
        if not swarm.background_reserved:
            # The swarm keeps the seeder's uplink busy; reserve it so that
            # concurrent point-to-point transfers observe the contention.
            self.network.add_background_load(seed_host, "up",
                                             seed_host.uplink_mbps * 0.9)
            swarm.background_reserved = True
        try:
            # Let the tracker learn about simultaneously-arriving peers before
            # sizing the swarm (one tracker-poll interval).
            yield self.env.timeout(self.peer_discovery_s)
            # Peers currently known to the tracker (including this one).
            n_peers = swarm.fluid_active + swarm.stats.peers_completed
            makespan = self._fluid_makespan(handle, swarm, n_peers)
            jitter = self.rng.uniform(
                f"bt-jitter-{handle.destination.host.uid}", 0.0, 0.05 * makespan)
            yield self.env.timeout(makespan + jitter)
            if not handle.destination.host.online:
                raise TransferError(
                    f"peer {handle.destination.host.name} went offline")
            handle.transferred_mb = handle.content.size_mb
            handle.destination.write(handle.source.read())
            swarm.stats.peers_completed += 1
            swarm.stats.last_completion_time = self.env.now
        finally:
            swarm.fluid_active -= 1
            if swarm.fluid_active == 0 and swarm.background_reserved:
                self.network.remove_background_load(seed_host, "up",
                                                    seed_host.uplink_mbps * 0.9)
                swarm.background_reserved = False
        return handle
