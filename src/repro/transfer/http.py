"""HTTP transfer protocol (one of the paper's out-of-band protocols, §3.4.2).

HTTP GET from a web server: functionally the same point-to-point pull as
FTP but with a much lighter connection setup (a single request/response
exchange, optional keep-alive), which makes it the protocol of choice for
the small files of the BLAST application (Sequences and Results, §5).
"""

from __future__ import annotations

from repro.sim.kernel import Environment
from repro.net.flows import Network, TransferFailed
from repro.transfer.oob import (
    BlockingOOBTransfer,
    TransferError,
    TransferHandle,
)

__all__ = ["HTTPProtocol"]


class HTTPProtocol(BlockingOOBTransfer):
    """HTTP: light-weight point-to-point pull transfers."""

    name = "http"

    def __init__(
        self,
        env: Environment,
        network: Network,
        request_overhead_s: float = 0.005,
        keep_alive: bool = True,
    ):
        super().__init__(env, network)
        self.request_overhead_s = float(request_overhead_s)
        self.keep_alive = keep_alive
        #: (client uid, server uid) pairs with an established keep-alive connection
        self._connections: set = set()

    def _conn_key(self, handle: TransferHandle):
        return (handle.destination.host.uid, handle.source.host.uid)

    # -- OOBTransfer interface ---------------------------------------------------
    def connect(self, handle: TransferHandle):
        latency = self.network.latency_between(handle.source.host,
                                               handle.destination.host)
        key = self._conn_key(handle)
        if self.keep_alive and key in self._connections:
            return True
        # TCP handshake: one round trip.
        yield self.env.timeout(2.0 * latency)
        if self.keep_alive:
            self._connections.add(key)
        return True

    def disconnect(self, handle: TransferHandle):
        if not self.keep_alive:
            self._connections.discard(self._conn_key(handle))
        # Closing is asynchronous; no simulated cost.
        return True
        yield  # pragma: no cover - makes this a generator

    def _run_transfer(self, handle: TransferHandle):
        if not handle.source.exists():
            raise TransferError(
                f"source file {handle.source.path!r} missing on "
                f"{handle.source.host.name}"
            )
        yield self.env.timeout(self.request_overhead_s)
        flow = self.network.transfer(
            handle.source.host, handle.destination.host,
            handle.content.size_mb,
            label=f"http:{handle.content.name}->{handle.destination.host.name}",
        )
        try:
            yield flow.done
        except TransferFailed as exc:
            raise TransferError(str(exc)) from exc
        handle.transferred_mb = handle.content.size_mb
        handle.destination.write(handle.source.read())
        return handle
