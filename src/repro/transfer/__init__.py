"""Out-of-band transfer protocols.

BitDew moves file content *out of band*: the runtime only issues and
supervises transfers, the bytes move through a pluggable protocol (§3.4.2,
Figure 2 of the paper).  This subpackage reproduces that plug-in framework
and three concrete protocols:

* :mod:`repro.transfer.oob` — the ``OOBTransfer`` interface (connect,
  disconnect, probe, blocking/non-blocking send and receive), the
  ``DaemonConnector`` helper for daemon-style protocols, transfer handles
  and endpoints.
* :mod:`repro.transfer.ftp` — client/server FTP: the file is pulled from a
  central server; the server's uplink is the bottleneck when many nodes
  download at once.
* :mod:`repro.transfer.http` — HTTP GET: like FTP but with a cheaper
  connection setup; preferred for small files (the paper's Sequence and
  Result files).
* :mod:`repro.transfer.bittorrent` — a collaborative swarm: a piece-level
  simulation for small swarms and a calibrated fluid model for large ones
  (both reproduce the near-flat scaling of Figures 3a and 5).
* :mod:`repro.transfer.registry` — the protocol registry through which users
  plug in protocols by name (``"ftp"``, ``"http"``, ``"bittorrent"``).
"""

from repro.transfer.oob import (
    BlockingOOBTransfer,
    DaemonConnector,
    NonBlockingOOBTransfer,
    OOBTransfer,
    TransferEndpoint,
    TransferHandle,
    TransferState,
)
from repro.transfer.ftp import FTPProtocol
from repro.transfer.http import HTTPProtocol
from repro.transfer.bittorrent import BitTorrentProtocol, SwarmStats
from repro.transfer.registry import ProtocolRegistry, default_registry

__all__ = [
    "BitTorrentProtocol",
    "BlockingOOBTransfer",
    "DaemonConnector",
    "FTPProtocol",
    "HTTPProtocol",
    "NonBlockingOOBTransfer",
    "OOBTransfer",
    "ProtocolRegistry",
    "SwarmStats",
    "TransferEndpoint",
    "TransferHandle",
    "TransferState",
    "default_registry",
]
