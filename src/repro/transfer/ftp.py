"""Client/server FTP transfer protocol (one of the paper's out-of-band
protocols, §3.4.2; the workhorse of the §4.3 distribution benchmarks).

The paper uses ProFTPD as file server and the Apache commons-net client.
FTP is a point-to-point pull: the receiver opens a control connection to the
server (login + passive-mode negotiation), then the file flows over a data
connection.  When many nodes download the same file concurrently the
server's uplink is shared among them, which is exactly the linear-in-*n*
scaling that Figures 3a and 5 show for FTP.

Parameters:

``control_setup_s``
    Cost of opening the control connection and authenticating (a few RTTs).
``per_file_overhead_s``
    Cost of the RETR/226 exchange around the data connection.
``max_server_connections``
    ProFTPD-style cap on simultaneous data connections; extra clients queue.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Environment
from repro.sim.resources import Resource
from repro.net.flows import Network, TransferFailed
from repro.transfer.oob import (
    BlockingOOBTransfer,
    TransferError,
    TransferHandle,
)

__all__ = ["FTPProtocol"]


class FTPProtocol(BlockingOOBTransfer):
    """FTP: point-to-point client/server pull transfers."""

    name = "ftp"

    def __init__(
        self,
        env: Environment,
        network: Network,
        control_setup_s: float = 0.05,
        per_file_overhead_s: float = 0.02,
        max_server_connections: Optional[int] = None,
    ):
        super().__init__(env, network)
        self.control_setup_s = float(control_setup_s)
        self.per_file_overhead_s = float(per_file_overhead_s)
        self._server_slots: Optional[Resource] = None
        if max_server_connections is not None:
            if max_server_connections <= 0:
                raise ValueError("max_server_connections must be positive")
            self._server_slots = Resource(env, capacity=max_server_connections)

    # -- OOBTransfer interface -------------------------------------------------
    def connect(self, handle: TransferHandle):
        """Open the control connection: a couple of RTTs plus authentication."""
        latency = self.network.latency_between(handle.source.host,
                                               handle.destination.host)
        yield self.env.timeout(self.control_setup_s + 2.0 * latency)
        return True

    def disconnect(self, handle: TransferHandle):
        latency = self.network.latency_between(handle.source.host,
                                               handle.destination.host)
        yield self.env.timeout(latency)
        return True

    def _run_transfer(self, handle: TransferHandle):
        """RETR: stream the file from the source host to the destination host."""
        if not handle.source.exists():
            raise TransferError(
                f"source file {handle.source.path!r} missing on "
                f"{handle.source.host.name}"
            )
        slot = None
        if self._server_slots is not None:
            slot = self._server_slots.request()
            yield slot
        try:
            yield self.env.timeout(self.per_file_overhead_s)
            flow = self.network.transfer(
                handle.source.host, handle.destination.host,
                handle.content.size_mb,
                label=f"ftp:{handle.content.name}->{handle.destination.host.name}",
            )
            try:
                yield flow.done
            except TransferFailed as exc:
                raise TransferError(str(exc)) from exc
            handle.transferred_mb = handle.content.size_mb
            handle.destination.write(handle.source.read())
        finally:
            if slot is not None:
                self._server_slots.release(slot)
        return handle
