"""Host model.

A :class:`Host` is one machine in the simulated platform: a stable service
node, a client, or a volatile reservoir host.  The host carries the
capacities the network model needs (uplink/downlink in MB/s), the compute
characteristics the application models need (CPU speed factor, number of
cores), and the volatility state the scheduler's failure detector observes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Host", "HostState", "HostSpec"]

_host_counter = itertools.count()


class HostState(enum.Enum):
    """Availability state of a host."""

    ONLINE = "online"
    OFFLINE = "offline"


@dataclass
class HostSpec:
    """Static description of a host's hardware, used by topology builders.

    ``cpu_factor`` expresses relative single-core speed: 1.0 is the reference
    (the paper's 2.0 GHz Opteron 246); the gdx 2.4 GHz nodes are ~1.2, the
    grelon 1.6 GHz Xeon cores ~0.8, the DSL-Lab Pentium-M 1 GHz nodes ~0.45.
    """

    uplink_mbps: float
    downlink_mbps: float
    cpu_factor: float = 1.0
    cores: int = 2
    memory_mb: int = 2048
    disk_mb: float = float("inf")


class Host:
    """One simulated machine."""

    def __init__(
        self,
        name: str,
        cluster: str = "default",
        uplink_mbps: float = 100.0,
        downlink_mbps: float = 100.0,
        cpu_factor: float = 1.0,
        cores: int = 2,
        memory_mb: int = 2048,
        disk_mb: float = float("inf"),
        stable: bool = False,
    ):
        if uplink_mbps <= 0 or downlink_mbps <= 0:
            raise ValueError("link capacities must be positive")
        if cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        self.uid = next(_host_counter)
        self.name = name
        self.cluster = cluster
        self.uplink_mbps = float(uplink_mbps)
        self.downlink_mbps = float(downlink_mbps)
        self.cpu_factor = float(cpu_factor)
        self.cores = int(cores)
        self.memory_mb = int(memory_mb)
        self.disk_mb = float(disk_mb)
        #: Stable hosts run D* services; volatile hosts are reservoirs/clients.
        self.stable = bool(stable)
        self.state = HostState.ONLINE
        #: Callbacks invoked with (host,) when the host goes offline.
        self._failure_listeners: List[Callable[["Host"], None]] = []
        #: Callbacks invoked with (host,) when the host comes back online.
        self._recovery_listeners: List[Callable[["Host"], None]] = []

    # -- state -------------------------------------------------------------
    @property
    def online(self) -> bool:
        return self.state is HostState.ONLINE

    def on_failure(self, callback: Callable[["Host"], None]) -> None:
        self._failure_listeners.append(callback)

    def on_recovery(self, callback: Callable[["Host"], None]) -> None:
        self._recovery_listeners.append(callback)

    def fail(self) -> None:
        """Mark the host offline and notify listeners (network, services)."""
        if self.state is HostState.OFFLINE:
            return
        self.state = HostState.OFFLINE
        for callback in list(self._failure_listeners):
            callback(self)

    def recover(self) -> None:
        """Bring the host back online (transient-fault model for service nodes)."""
        if self.state is HostState.ONLINE:
            return
        self.state = HostState.ONLINE
        for callback in list(self._recovery_listeners):
            callback(self)

    # -- compute model -----------------------------------------------------
    def compute_time(self, reference_seconds: float) -> float:
        """Wall-clock time on this host for work taking ``reference_seconds``
        on the reference CPU (single-core, cpu_factor == 1.0)."""
        if reference_seconds < 0:
            raise ValueError("reference_seconds must be non-negative")
        return reference_seconds / self.cpu_factor

    def __repr__(self) -> str:
        role = "stable" if self.stable else "volatile"
        return (
            f"Host({self.name!r}, cluster={self.cluster!r}, {role}, "
            f"up={self.uplink_mbps}MB/s, down={self.downlink_mbps}MB/s, "
            f"{self.state.value})"
        )

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other
