"""Flow-level network substrate.

The BitDew paper evaluates its runtime on real networks (Grid'5000 cluster
interconnects and the DSL-Lab ADSL testbed).  This subpackage replaces those
testbeds with a *flow-level* network simulation:

* :mod:`repro.net.host` — host model (uplink/downlink capacity, CPU speed,
  cluster membership, online/offline state, local storage).
* :mod:`repro.net.flows` — the bandwidth-sharing engine.  Active transfers are
  fluid flows; whenever the set of flows changes, a max-min fair allocation is
  recomputed over host and cluster-gateway capacity constraints.
* :mod:`repro.net.topology` — ready-made topologies: a single cluster, the
  4-cluster Grid'5000 testbed of Table 1, and the 12-node DSL-Lab platform.
* :mod:`repro.net.rpc` — a latency-modelled RPC layer standing in for Java
  RMI (local call, loopback RMI, remote RMI), used by the D* services.

Units: sizes are megabytes (MB), rates are MB/s, times are seconds.
"""

from repro.net.flows import Flow, Network, TransferFailed
from repro.net.host import Host, HostState
from repro.net.rpc import RpcChannel, RpcEndpoint, ChannelKind
from repro.net.topology import (
    Topology,
    cluster_topology,
    dsl_lab_topology,
    grid5000_testbed,
)

__all__ = [
    "ChannelKind",
    "Flow",
    "Host",
    "HostState",
    "Network",
    "RpcChannel",
    "RpcEndpoint",
    "Topology",
    "TransferFailed",
    "cluster_topology",
    "dsl_lab_topology",
    "grid5000_testbed",
]
