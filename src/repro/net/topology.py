"""Ready-made topologies reproducing the paper's three testbeds (§4.1).

* :func:`cluster_topology` — a single cluster like Grid Explorer (GdX), used
  for the micro-benchmarks (Tables 2-3, Figures 3a-c).
* :func:`grid5000_testbed` — the 4-cluster Grid'5000 configuration of
  Table 1 (gdx, grelon, grillon, sagittaire), used for the BLAST
  master/worker experiments (Figures 5-6).
* :func:`dsl_lab_topology` — the 12-node DSL-Lab broadband-ADSL platform,
  used for the fault-tolerance scenario (Figure 4).

All builders return a :class:`Topology` bundling the network, the stable
service host(s) and the volatile worker hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.net.flows import Network
from repro.net.host import Host, HostSpec

__all__ = [
    "GRID5000_CLUSTERS",
    "Topology",
    "cluster_topology",
    "dsl_lab_topology",
    "grid5000_testbed",
]


#: Table 1 of the paper: hardware configuration of the Grid testbed.
#: CPU factors are relative to a 2.0 GHz Opteron 246 core.
GRID5000_CLUSTERS: Dict[str, dict] = {
    "gdx": {
        "cluster_type": "IBM eServer 326m",
        "location": "Orsay",
        "cpus": 312,
        "cpu_type": "AMD Opteron 246/250",
        "frequency_ghz": 2.2,   # mix of 2.0 and 2.4 GHz nodes
        "memory_mb": 2048,
        "cpu_factor": 1.1,
        "node_link_mbps": 125.0,     # GigE NICs
        "gateway_mbps": 125.0,       # shared site uplink used in the experiments
    },
    "grelon": {
        "cluster_type": "HP ProLiant DL140G3",
        "location": "Nancy",
        "cpus": 120,
        "cpu_type": "Intel Xeon 5110",
        "frequency_ghz": 1.6,
        "memory_mb": 2048,
        "cpu_factor": 0.8,
        "node_link_mbps": 125.0,
        "gateway_mbps": 125.0,
    },
    "grillon": {
        "cluster_type": "HP ProLiant DL145G2",
        "location": "Nancy",
        "cpus": 47,
        "cpu_type": "AMD Opteron 246",
        "frequency_ghz": 2.0,
        "memory_mb": 2048,
        "cpu_factor": 1.0,
        "node_link_mbps": 125.0,
        "gateway_mbps": 125.0,
    },
    "sagittaire": {
        "cluster_type": "Sun Fire V20z",
        "location": "Lyon",
        "cpus": 65,
        "cpu_type": "AMD Opteron 250",
        "frequency_ghz": 2.4,
        "memory_mb": 2048,
        "cpu_factor": 1.2,
        "node_link_mbps": 125.0,
        "gateway_mbps": 125.0,
    },
}


@dataclass
class Topology:
    """A built platform: the network plus its host roles."""

    env: Environment
    network: Network
    service_hosts: List[Host] = field(default_factory=list)
    worker_hosts: List[Host] = field(default_factory=list)
    name: str = "topology"

    @property
    def service_host(self) -> Host:
        """The primary stable node running the D* services."""
        if not self.service_hosts:
            raise ValueError("topology has no service host")
        return self.service_hosts[0]

    @property
    def all_hosts(self) -> List[Host]:
        return self.service_hosts + self.worker_hosts

    def workers_in_cluster(self, cluster: str) -> List[Host]:
        return [h for h in self.worker_hosts if h.cluster == cluster]


def cluster_topology(
    env: Environment,
    n_workers: int,
    cluster: str = "gdx",
    node_link_mbps: float = 125.0,
    server_link_mbps: float = 125.0,
    cpu_factor: float = 1.0,
    lan_latency_s: float = 0.0002,
    allocator: str = "incremental",
    coalesce: bool = True,
    n_service_hosts: int = 1,
) -> Topology:
    """A single LAN cluster: stable service/file-server node(s) + workers.

    Defaults correspond to the GdX cluster used for the micro-benchmarks: a
    GigE LAN (~125 MB/s per NIC) and sub-millisecond latency.  The service
    host doubles as FTP server and BitTorrent initial seeder, exactly as in
    the paper's stress setup (§4.3).

    ``n_service_hosts`` > 1 adds further stable hosts (same links) for the
    service-fabric deployments; the primary keeps the classic
    ``{cluster}-service`` name, so single-host behaviour is unchanged.
    """
    if n_workers < 0:
        raise ValueError("n_workers must be non-negative")
    if n_service_hosts < 1:
        raise ValueError("n_service_hosts must be at least 1")
    network = Network(env, default_latency_s=lan_latency_s,
                      allocator=allocator, coalesce=coalesce)
    servers = []
    for i in range(n_service_hosts):
        name = f"{cluster}-service" if i == 0 else f"{cluster}-service{i + 1}"
        server = Host(
            name, cluster=cluster,
            uplink_mbps=server_link_mbps, downlink_mbps=server_link_mbps,
            cpu_factor=cpu_factor, stable=True,
        )
        network.add_host(server)
        servers.append(server)
    server = servers[0]
    workers = []
    for i in range(n_workers):
        worker = Host(
            f"{cluster}-node{i:03d}", cluster=cluster,
            uplink_mbps=node_link_mbps, downlink_mbps=node_link_mbps,
            cpu_factor=cpu_factor,
        )
        network.add_host(worker)
        workers.append(worker)
    return Topology(env=env, network=network, service_hosts=servers,
                    worker_hosts=workers, name=f"cluster-{cluster}")


def grid5000_testbed(
    env: Environment,
    nodes_per_cluster: Optional[Dict[str, int]] = None,
    total_nodes: Optional[int] = None,
    service_cluster: str = "gdx",
    wan_latency_s: float = 0.01,
    allocator: str = "incremental",
    coalesce: bool = True,
) -> Topology:
    """The 4-cluster Grid'5000 testbed of Table 1.

    ``nodes_per_cluster`` gives the worker count per cluster; if omitted, the
    counts are derived proportionally to the cluster sizes of Table 1 so that
    they sum to ``total_nodes`` (default 400, the paper's §5 deployment).
    The service node lives in ``service_cluster`` (gdx/Orsay by default);
    inter-cluster traffic goes through per-cluster WAN gateways.
    """
    if nodes_per_cluster is None:
        total = 400 if total_nodes is None else int(total_nodes)
        weights = {name: spec["cpus"] for name, spec in GRID5000_CLUSTERS.items()}
        total_weight = sum(weights.values())
        nodes_per_cluster = {
            name: max(1, int(round(total * w / total_weight)))
            for name, w in weights.items()
        }
    unknown = set(nodes_per_cluster) - set(GRID5000_CLUSTERS)
    if unknown:
        raise ValueError(f"unknown clusters: {sorted(unknown)}")

    network = Network(env, default_latency_s=0.0002, wan_latency_s=wan_latency_s,
                      allocator=allocator, coalesce=coalesce)
    spec0 = GRID5000_CLUSTERS[service_cluster]
    server = Host(
        f"{service_cluster}-service", cluster=service_cluster,
        uplink_mbps=spec0["node_link_mbps"], downlink_mbps=spec0["node_link_mbps"],
        cpu_factor=spec0["cpu_factor"], stable=True,
    )
    network.add_host(server)

    workers: List[Host] = []
    for name, count in nodes_per_cluster.items():
        spec = GRID5000_CLUSTERS[name]
        network.set_cluster_gateway(name, spec["gateway_mbps"])
        for i in range(count):
            worker = Host(
                f"{name}-node{i:03d}", cluster=name,
                uplink_mbps=spec["node_link_mbps"],
                downlink_mbps=spec["node_link_mbps"],
                cpu_factor=spec["cpu_factor"],
                memory_mb=spec["memory_mb"],
            )
            network.add_host(worker)
            workers.append(worker)
    return Topology(env=env, network=network, service_hosts=[server],
                    worker_hosts=workers, name="grid5000")


def dsl_lab_topology(
    env: Environment,
    n_workers: int = 12,
    rng: Optional[RandomStreams] = None,
    min_down_mbps: float = 0.05,
    max_down_mbps: float = 0.50,
    uplink_fraction: float = 0.25,
    adsl_latency_s: float = 0.03,
    allocator: str = "incremental",
    coalesce: bool = True,
) -> Topology:
    """The DSL-Lab broadband platform (§4.1, §4.4).

    Twelve Mini-ITX Pentium-M nodes behind consumer ADSL lines: asymmetric
    links with heterogeneous downstream bandwidth (the paper's Figure 4
    reports 53-492 KB/s during downloads), higher latency, and a service
    host reachable over the WAN.  Bandwidths are drawn per node from a
    uniform distribution so each node's quality of service differs, as in
    the real platform.
    """
    if rng is None:
        rng = RandomStreams(42)
    network = Network(env, default_latency_s=adsl_latency_s,
                      wan_latency_s=adsl_latency_s,
                      allocator=allocator, coalesce=coalesce)
    server = Host(
        "dsl-service", cluster="dsl-server",
        uplink_mbps=5.0, downlink_mbps=5.0, cpu_factor=1.0, stable=True,
    )
    network.add_host(server)
    workers = []
    for i in range(n_workers):
        down = rng.uniform(f"dsl-down-{i}", min_down_mbps, max_down_mbps)
        up = down * uplink_fraction
        worker = Host(
            f"DSL{i + 1:02d}", cluster="dsl-lab",
            uplink_mbps=up, downlink_mbps=down,
            cpu_factor=0.45, cores=1, memory_mb=512, disk_mb=2048.0,
        )
        network.add_host(worker)
        workers.append(worker)
    return Topology(env=env, network=network, service_hosts=[server],
                    worker_hosts=workers, name="dsl-lab")
