"""Bandwidth-allocation strategies for the flow-level network model.

The network delegates max-min fair sharing to an *allocator*.  Two
implementations with identical observable results are provided:

* :class:`DenseAllocator` — the reference implementation: every allocation
  pass rebuilds the constraint set from scratch and runs progressive filling
  with a full scan per bottleneck round.  Per pass this is O(F·R) work with
  R bottleneck rounds (worst case O(F²)), plus O(F) allocations for the
  constraint dictionaries.  Kept as the oracle for equivalence tests and as
  the baseline the scaling benchmark measures against.

* :class:`IncrementalAllocator` — constraint membership is maintained
  incrementally as flows arrive and depart, so an allocation pass touches
  only existing :class:`Constraint` objects; bottleneck selection uses a
  lazy min-heap keyed by the current fair share, making one pass
  O((F + C)·log C) for F active flows crossing C constraints.

* :class:`VectorAllocator` — numpy water-filling: constraint membership
  becomes index arrays and each saturation round runs as a handful of
  vector operations over *every* unfixed flow at once, instead of the
  per-flow Python loops of the other two.  The float operations replicate
  the dense allocator's exactly (same divisions, same subtraction order
  via ``np.subtract.at``), so the computed rates are bit-identical, not
  just close — which keeps ``run --out`` JSON byte-identical across
  allocators.  This is the allocator for 10⁴–10⁵ simultaneous flows.

All compute the *unique* max-min fair allocation subject to the same
constraints (per-flow rate caps, host uplink/downlink, WAN cluster
gateways, minus reserved background rates), so simulated completion times
are identical whichever is plugged in — a property pinned by the
hypothesis oracle tests in ``tests/test_property_based.py`` and
``tests/test_allocation_vector.py``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, Iterable, List, Optional, Tuple

try:                                    # numpy is required only by the
    import numpy as _np                 # vectorized allocator; the default
except ImportError:                     # pragma: no cover - numpy is baked
    _np = None                          # into the supported environments

__all__ = [
    "Constraint",
    "DenseAllocator",
    "IncrementalAllocator",
    "VectorAllocator",
    "constraint_keys",
    "make_allocator",
]


class Constraint:
    """A capacity constraint over a set of flows (one link direction)."""

    __slots__ = ("key", "capacity", "reserved", "members", "provider")

    def __init__(self, key: Tuple, capacity: float):
        self.key = key
        self.capacity = capacity
        self.reserved = 0.0
        #: fids of the active flows crossing this constraint (maintained by
        #: the incremental allocator; unused by the dense one).
        self.members: set = set()
        #: (kind, obj) the capacity is read from at allocation time, so a
        #: mid-simulation change to a host's link speed takes effect on the
        #: next pass — matching the dense allocator's per-pass rebuild.
        self.provider: Optional[Tuple[str, object]] = None

    @property
    def effective_capacity(self) -> float:
        return max(0.0, self.capacity - self.reserved)


def constraint_keys(flow, gateways: Dict[str, Tuple[float, float]]) -> List[Tuple]:
    """The constraint keys a flow crosses, in canonical order."""
    keys: List[Tuple] = []
    if flow.rate_cap_mbps is not None:
        keys.append(("flow-cap", flow.fid))
    keys.append(("host-up", flow.src.uid))
    keys.append(("host-down", flow.dst.uid))
    if flow.src.cluster != flow.dst.cluster:
        if flow.src.cluster in gateways:
            keys.append(("wan-egress", flow.src.cluster))
        if flow.dst.cluster in gateways:
            keys.append(("wan-ingress", flow.dst.cluster))
    return keys


def _constraint_capacity(key: Tuple, flow,
                         gateways: Dict[str, Tuple[float, float]]) -> float:
    kind = key[0]
    if kind == "flow-cap":
        return flow.rate_cap_mbps
    if kind == "host-up":
        return flow.src.uplink_mbps
    if kind == "host-down":
        return flow.dst.downlink_mbps
    if kind == "wan-egress":
        return gateways[key[1]][0]
    return gateways[key[1]][1]   # wan-ingress


class DenseAllocator:
    """Reference allocator: full rebuild + full-scan progressive filling."""

    name = "dense"

    def __init__(self) -> None:
        self.gateways: Dict[str, Tuple[float, float]] = {}

    # The dense allocator is stateless w.r.t. flows.
    def flow_added(self, flow) -> None:
        pass

    def flow_removed(self, flow) -> None:
        pass

    def rebuild(self, active: Iterable) -> None:
        pass

    def allocate(self, active: List, background: Dict[Tuple, float]) -> Dict[int, float]:
        """Max-min fair allocation via progressive filling (full scans)."""
        if not active:
            return {}
        constraints: Dict[Tuple, Constraint] = {}
        membership: Dict[int, List[Tuple]] = {}
        for flow in active:
            keys = constraint_keys(flow, self.gateways)
            for key in keys:
                if key not in constraints:
                    con = Constraint(key, _constraint_capacity(key, flow,
                                                               self.gateways))
                    con.reserved = background.get(key, 0.0)
                    constraints[key] = con
            membership[flow.fid] = keys

        remaining_capacity = {
            key: con.effective_capacity for key, con in constraints.items()  # detlint: ignore[DET004] — dict→dict rebuild; constraints is filled in deterministic flow order
        }
        unfixed = {flow.fid: flow for flow in active}
        rates: Dict[int, float] = {}

        while unfixed:
            # For each constraint, the fair share available to its unfixed flows.
            best_share = math.inf
            best_key = None
            counts: Dict[Tuple, int] = {}
            for fid in unfixed:
                for key in membership[fid]:
                    counts[key] = counts.get(key, 0) + 1
            if not counts:
                break
            for key, count in counts.items():  # detlint: ignore[DET004] — first-minimum tie-break over deterministic insertion order IS the pinned reference semantics; sorting would change allocations
                share = remaining_capacity[key] / count
                if share < best_share:
                    best_share = share
                    best_key = key
            if best_key is None:  # pragma: no cover - defensive
                break
            best_share = max(0.0, best_share)
            # Fix every unfixed flow crossing the bottleneck constraint.
            fixed_now = [
                fid for fid in unfixed if best_key in membership[fid]
            ]
            for fid in fixed_now:
                rates[fid] = best_share
                for key in membership[fid]:
                    remaining_capacity[key] = max(
                        0.0, remaining_capacity[key] - best_share
                    )
                del unfixed[fid]
        return rates


class IncrementalAllocator:
    """Incrementally maintained membership + heap-based progressive filling."""

    name = "incremental"

    def __init__(self) -> None:
        self.gateways: Dict[str, Tuple[float, float]] = {}
        self._constraints: Dict[Tuple, Constraint] = {}
        #: fid -> constraint keys, in canonical order
        self._membership: Dict[int, List[Tuple]] = {}
        self._push_seq = itertools.count()

    # -- membership maintenance -------------------------------------------
    def flow_added(self, flow) -> None:
        keys = constraint_keys(flow, self.gateways)
        for key in keys:
            con = self._constraints.get(key)
            if con is None:
                con = Constraint(key, _constraint_capacity(key, flow,
                                                           self.gateways))
                kind = key[0]
                if kind == "flow-cap":
                    con.provider = ("flow-cap", flow)
                elif kind == "host-up":
                    con.provider = ("host-up", flow.src)
                elif kind == "host-down":
                    con.provider = ("host-down", flow.dst)
                else:   # wan-egress / wan-ingress
                    con.provider = (kind, key[1])
                self._constraints[key] = con
            con.members.add(flow.fid)
        self._membership[flow.fid] = keys

    def _live_capacity(self, con: Constraint) -> float:
        kind, obj = con.provider
        if kind == "flow-cap":
            return obj.rate_cap_mbps
        if kind == "host-up":
            return obj.uplink_mbps
        if kind == "host-down":
            return obj.downlink_mbps
        if kind == "wan-egress":
            return self.gateways[obj][0]
        return self.gateways[obj][1]   # wan-ingress

    def flow_removed(self, flow) -> None:
        keys = self._membership.pop(flow.fid, None)
        if keys is None:
            return
        for key in keys:
            con = self._constraints.get(key)
            if con is None:
                continue
            con.members.discard(flow.fid)
            if not con.members:
                del self._constraints[key]

    def rebuild(self, active: Iterable) -> None:
        """Recompute membership from scratch (topology changed mid-flight)."""
        self._constraints.clear()
        self._membership.clear()
        for flow in active:
            self.flow_added(flow)

    # -- allocation --------------------------------------------------------
    def allocate(self, active: List, background: Dict[Tuple, float]) -> Dict[int, float]:
        """One progressive-filling pass over the maintained constraints.

        Bottlenecks are found with a lazy min-heap: each constraint is keyed
        by ``remaining / unfixed_count``; a popped entry whose share is stale
        (its constraint lost members or capacity since the push) is re-pushed
        with the current value.  Progressive filling fixes at least one flow
        per genuine pop, so the pass does O(F + C) pushes overall.
        """
        if not active:
            return {}
        constraints = self._constraints
        remaining: Dict[Tuple, float] = {}
        counts: Dict[Tuple, int] = {}
        heap: List[Tuple[float, int, Tuple]] = []
        seq = self._push_seq
        for key, con in constraints.items():  # detlint: ignore[DET004] — heap seeded in maintained constraint order; ties broken by the explicit push seq, mirroring the dense reference bit-for-bit
            cap = max(0.0, self._live_capacity(con) - background.get(key, 0.0))
            remaining[key] = cap
            counts[key] = len(con.members)
            heap.append((cap / len(con.members), next(seq), key))
        heapq.heapify(heap)

        rates: Dict[int, float] = {}
        membership = self._membership
        n_unfixed = len(active)
        while heap and n_unfixed > 0:
            share, _, key = heapq.heappop(heap)
            count = counts[key]
            if count <= 0:
                continue   # all members already fixed through other constraints
            current = remaining[key] / count
            if current > share:
                # Stale entry: members were fixed elsewhere since the push.
                heapq.heappush(heap, (current, next(seq), key))
                continue
            share = max(0.0, current)
            fixed_now = sorted(
                fid for fid in constraints[key].members if fid not in rates
            )
            for fid in fixed_now:
                rates[fid] = share
                n_unfixed -= 1
                for other in membership[fid]:
                    remaining[other] = max(0.0, remaining[other] - share)
                    counts[other] -= 1
            counts[key] = 0
        return rates


class VectorAllocator(IncrementalAllocator):
    """Numpy-vectorized progressive filling over incremental membership.

    Membership bookkeeping is inherited from :class:`IncrementalAllocator`
    (flow arrival/departure stays O(keys)); the allocation pass flattens it
    into ``(flow, constraint)`` index arrays and water-fills one saturation
    round at a time:

    1. count the unfixed members of every constraint (``np.bincount``),
    2. compute every constraint's fair share in one vector division and
       pick the bottleneck (``np.argmin`` over the dense scan order),
    3. fix all its unfixed flows at the bottleneck share and subtract the
       share from every constraint they cross (``np.subtract.at``).

    Each round is O(P) vector work for P live membership pairs — the same
    asymptotics as the dense reference but with the per-flow Python
    interpreter loop replaced by a few numpy kernels, which is 1–2 orders
    of magnitude cheaper for the 10⁴+-flow storms of the 100k-host grid.

    **Bit-exactness**: the scan order, the divisions and the sequential
    subtraction order replicate :class:`DenseAllocator` operation for
    operation (``np.subtract.at`` is unbuffered and applies updates in
    index order), so the resulting rates are the same IEEE-754 doubles the
    reference produces — asserted exactly, not within a tolerance, by the
    oracle suite.
    """

    name = "vector"

    def __init__(self) -> None:
        if _np is None:  # pragma: no cover - numpy ships with the toolchain
            raise RuntimeError(
                "the 'vector' allocator requires numpy; install it or use "
                "'incremental'")
        super().__init__()

    def allocate(self, active: List, background: Dict[Tuple, float]) -> Dict[int, float]:
        if not active:
            return {}
        np = _np
        membership = self._membership
        # Constraints in dense first-seen order (flow-major, canonical key
        # order within a flow) and the flattened membership pairs.
        con_of: Dict[Tuple, int] = {}
        cons: List[Tuple] = []
        pair_flow: List[int] = []
        pair_con: List[int] = []
        for i, flow in enumerate(active):
            for key in membership[flow.fid]:
                j = con_of.get(key)
                if j is None:
                    j = con_of[key] = len(cons)
                    cons.append(key)
                pair_flow.append(i)
                pair_con.append(j)
        n_flows = len(active)
        n_cons = len(cons)
        mem_flow = np.asarray(pair_flow, dtype=np.intp)
        mem_con = np.asarray(pair_con, dtype=np.intp)
        constraints = self._constraints
        remaining = np.empty(n_cons, dtype=np.float64)
        for j, key in enumerate(cons):
            remaining[j] = max(
                0.0,
                self._live_capacity(constraints[key]) - background.get(key, 0.0))

        unfixed = np.ones(n_flows, dtype=bool)
        rate_of = np.zeros(n_flows, dtype=np.float64)
        while True:
            live = unfixed[mem_flow]
            if not live.any():
                break
            live_con = mem_con[live]
            counts = np.bincount(live_con, minlength=n_cons)
            # The dense reference scans constraints in first-seen order over
            # the *unfixed* flows and keeps the first strict minimum; that is
            # exactly np.argmin over the first-occurrence ordering.
            uniq, first_at = np.unique(live_con, return_index=True)
            order = uniq[np.argsort(first_at, kind="stable")]
            shares = remaining[order] / counts[order]
            best = int(order[int(np.argmin(shares))])
            share = max(0.0, float(remaining[best]) / float(counts[best]))

            fixed_now = np.unique(mem_flow[live & (mem_con == best)])
            rate_of[fixed_now] = share
            newly = np.zeros(n_flows, dtype=bool)
            newly[fixed_now] = True
            updates = live & newly[mem_flow]
            touched = mem_con[updates]
            # Unbuffered scatter-subtract: one subtraction per membership
            # pair, applied in the dense reference's flow-major order; the
            # final clamp matches its per-step max(0, ·) (a value can only
            # go negative on its last update or stay negative throughout).
            np.subtract.at(remaining, touched, share)
            touched = np.unique(touched)
            remaining[touched] = np.maximum(remaining[touched], 0.0)
            unfixed[fixed_now] = False

        rates = rate_of.tolist()
        return {flow.fid: rates[i] for i, flow in enumerate(active)}


def make_allocator(name: str):
    if name == "dense":
        return DenseAllocator()
    if name == "incremental":
        return IncrementalAllocator()
    if name == "vector":
        return VectorAllocator()
    raise ValueError(f"unknown allocator {name!r}; "
                     f"use 'dense', 'incremental' or 'vector'")
