"""Flow-level bandwidth-sharing network model.

Transfers are modelled as *fluid flows*.  Each flow has a source host, a
destination host, a size (MB) and a remaining volume.  At any instant every
active flow receives a rate determined by **max-min fair sharing** subject to
capacity constraints:

* the source host's uplink capacity,
* the destination host's downlink capacity,
* optionally, per-cluster WAN gateway capacities (egress and ingress) for
  flows crossing cluster boundaries — this is how the Grid'5000 multi-cluster
  topology of Table 1 is modelled.

Whenever the set of active flows changes (a flow starts, finishes, or is
aborted because a host failed) the allocation must be recomputed and the
next completion rescheduled.  Two design decisions keep that hot path
proportional to what changed rather than to global state:

* **Coalescing** — a flow arrival/departure marks the network *dirty* and
  the allocation settles exactly once per timestamp via the kernel's
  same-time settle hook.  A synchronisation storm in which hundreds of
  workers start downloads at the same instant therefore triggers a single
  allocation pass instead of one full recompute per flow.  Rates are only
  consumed when simulated time advances, so deferring the pass to the end
  of the timestamp is observationally identical.
* **Allocator strategies** — the actual max-min computation lives in
  :mod:`repro.net.allocation`; the default :class:`IncrementalAllocator`
  maintains constraint membership across events, the reference
  :class:`DenseAllocator` rebuilds everything per pass (the two are
  equivalence-tested against each other).

The next-completion wake-up uses a cancellable kernel :class:`Timer`
instead of the earlier stale-token pattern, so superseded wake-ups are
dropped from the heap lazily instead of firing as no-ops.

Control-plane traffic (the BitDew protocol's heartbeats and transfer-monitor
messages, §4.3 of the paper) is modelled as *background load*: a reserved
rate subtracted from a constraint's capacity, see
:meth:`Network.add_background_load`.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.sim.kernel import Environment, Event, Timer
from repro.net.allocation import make_allocator
from repro.net.host import Host

__all__ = ["Flow", "Network", "TransferFailed"]

_flow_counter = itertools.count()

#: Rates below this (MB/s) are treated as zero to avoid numerical dust.
_EPSILON = 1e-12


class TransferFailed(Exception):
    """Raised (through the flow's event) when a transfer is aborted."""

    def __init__(self, flow: "Flow", reason: str):
        super().__init__(f"transfer {flow.label or flow.fid} failed: {reason}")
        self.flow = flow
        self.reason = reason


class Flow:
    """One fluid transfer between two hosts."""

    def __init__(self, env: Environment, src: Host, dst: Host, size_mb: float,
                 label: Optional[str] = None,
                 rate_cap_mbps: Optional[float] = None):
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        if rate_cap_mbps is not None and rate_cap_mbps <= 0:
            raise ValueError("rate_cap_mbps must be positive")
        self.fid = next(_flow_counter)
        self.env = env
        self.src = src
        self.dst = dst
        self.size_mb = float(size_mb)
        self.remaining_mb = float(size_mb)
        self.rate_mbps = 0.0
        self.rate_cap_mbps = rate_cap_mbps
        self.label = label
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        #: Event triggered when the flow completes (value = the flow) or
        #: fails (TransferFailed).
        self.done = env.event()
        self.aborted = False

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def transferred_mb(self) -> float:
        return self.size_mb - self.remaining_mb

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def mean_rate_mbps(self) -> Optional[float]:
        """Average goodput over the flow's lifetime (MB/s)."""
        dur = self.duration
        if dur is None or dur <= 0:
            return None
        return self.transferred_mb / dur

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow(#{self.fid} {self.src.name}->{self.dst.name} "
            f"{self.remaining_mb:.2f}/{self.size_mb:.2f}MB @ {self.rate_mbps:.2f}MB/s)"
        )


class Network:
    """The flow network: registers hosts, runs transfers, shares bandwidth."""

    def __init__(self, env: Environment, default_latency_s: float = 0.001,
                 wan_latency_s: float = 0.01,
                 allocator: str = "incremental",
                 coalesce: bool = True):
        self.env = env
        self.default_latency_s = float(default_latency_s)
        self.wan_latency_s = float(wan_latency_s)
        self.hosts: Dict[str, Host] = {}
        self._active: List[Flow] = []
        self._pending_latency: Dict[int, Flow] = {}
        #: cluster name -> (egress MB/s, ingress MB/s); None means unlimited.
        self._cluster_gateways: Dict[str, Tuple[float, float]] = {}
        #: background (reserved) rates per constraint key.
        self._background: Dict[Tuple, float] = {}
        self._last_update = env.now
        self._allocator = make_allocator(allocator)
        self._allocator.gateways = self._cluster_gateways
        self._coalesce = bool(coalesce)
        self._settle_pending = False
        self._completion_timer: Optional[Timer] = None
        #: statistics
        self.completed_flows = 0
        self.failed_flows = 0
        self.total_mb_delivered = 0.0
        #: number of full allocation passes actually run (benchmark metric)
        self.allocation_passes = 0
        #: number of events that requested a re-allocation
        self.recompute_requests = 0

    @property
    def allocator_name(self) -> str:
        return self._allocator.name

    # -- topology ------------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        if host.name in self.hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        host.on_failure(self._on_host_failure)
        return host

    def get_host(self, name: str) -> Host:
        return self.hosts[name]

    def set_cluster_gateway(self, cluster: str, egress_mbps: float,
                            ingress_mbps: Optional[float] = None) -> None:
        """Cap the aggregate rate of flows leaving/entering a cluster."""
        if egress_mbps <= 0:
            raise ValueError("egress capacity must be positive")
        ingress = egress_mbps if ingress_mbps is None else ingress_mbps
        if ingress <= 0:
            raise ValueError("ingress capacity must be positive")
        self._cluster_gateways[cluster] = (float(egress_mbps), float(ingress))
        # Gateway changes can alter which constraints existing flows cross.
        self._allocator.rebuild(self._active)
        self._recompute()

    # -- background load -----------------------------------------------------
    def add_background_load(self, host: Host, direction: str, rate_mbps: float) -> None:
        """Reserve ``rate_mbps`` of a host's uplink/downlink for control traffic."""
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        key = ("host-up", host.uid) if direction == "up" else ("host-down", host.uid)
        self._background[key] = self._background.get(key, 0.0) + float(rate_mbps)
        self._recompute()

    def remove_background_load(self, host: Host, direction: str, rate_mbps: float) -> None:
        """Release previously reserved control-traffic bandwidth."""
        key = ("host-up", host.uid) if direction == "up" else ("host-down", host.uid)
        current = self._background.get(key, 0.0) - float(rate_mbps)
        if current <= _EPSILON:
            self._background.pop(key, None)
        else:
            self._background[key] = current
        self._recompute()

    # -- transfers -------------------------------------------------------------
    def latency_between(self, src: Host, dst: Host) -> float:
        if src is dst:
            return 0.0
        if src.cluster == dst.cluster:
            return self.default_latency_s
        return self.wan_latency_s

    def transfer(self, src: Host, dst: Host, size_mb: float,
                 label: Optional[str] = None,
                 extra_latency_s: float = 0.0,
                 rate_cap_mbps: Optional[float] = None) -> Flow:
        """Start a transfer of ``size_mb`` MB from *src* to *dst*.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.  A
        transfer from a host to itself completes after just the extra latency.
        ``rate_cap_mbps`` adds a per-flow application-level throughput cap
        (used to model protocol clients that cannot saturate a fast LAN link).
        """
        if src.name not in self.hosts or dst.name not in self.hosts:
            raise KeyError("both hosts must be registered with the network")
        flow = Flow(self.env, src, dst, size_mb, label=label,
                    rate_cap_mbps=rate_cap_mbps)
        if not src.online or not dst.online:
            flow.done.fail(TransferFailed(flow, "endpoint offline at start"))
            flow.done.defused = True
            self.failed_flows += 1
            return flow
        latency = self.latency_between(src, dst) + max(0.0, extra_latency_s)
        flow.start_time = self.env.now

        if size_mb <= _EPSILON or src is dst:
            # Pure-latency transfer (control message or local copy).
            def _finish(_evt, flow=flow):
                if flow.aborted:
                    return
                flow.end_time = self.env.now
                self.completed_flows += 1
                self.total_mb_delivered += flow.size_mb
                flow.done.succeed(flow)

            self.env.timeout(latency).add_callback(_finish)
            return flow

        self._pending_latency[flow.fid] = flow

        def _activate(_evt, flow=flow):
            self._pending_latency.pop(flow.fid, None)
            if flow.aborted:
                return
            if not flow.src.online or not flow.dst.online:
                self._fail_flow(flow, "endpoint offline")
                return
            self._active.append(flow)
            self._allocator.flow_added(flow)
            self._recompute()

        self.env.timeout(latency).add_callback(_activate)
        return flow

    def abort(self, flow: Flow, reason: str = "aborted") -> None:
        """Abort an in-progress transfer (its ``done`` event fails)."""
        if flow.finished or flow.aborted:
            return
        self._advance()
        self._fail_flow(flow, reason)
        self._recompute()

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._active)

    # -- failure handling -------------------------------------------------------
    def _on_host_failure(self, host: Host) -> None:
        self._advance()
        for flow in [f for f in self._active] + list(self._pending_latency.values()):  # detlint: ignore[DET004] — dict filled in flow-creation event order, which the kernel makes deterministic
            if flow.src is host or flow.dst is host:
                self._fail_flow(flow, f"host {host.name} failed")
        self._recompute()

    def _fail_flow(self, flow: Flow, reason: str) -> None:
        flow.aborted = True
        flow.end_time = self.env.now
        if flow in self._active:
            self._active.remove(flow)
            self._allocator.flow_removed(flow)
        self._pending_latency.pop(flow.fid, None)
        self.failed_flows += 1
        if not flow.done.triggered:
            flow.done.fail(TransferFailed(flow, reason))
            # Abort is an expected outcome; don't crash the simulation if the
            # initiator stopped listening (e.g. it crashed too).
            flow.done.defused = True

    # -- bandwidth sharing -------------------------------------------------------
    def _advance(self) -> None:
        """Progress all active flows from the last update time to now."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._active:
                flow.remaining_mb = max(0.0, flow.remaining_mb - flow.rate_mbps * dt)
        self._last_update = now

    def _recompute(self) -> None:
        """Request a re-allocation of rates.

        With coalescing (the default) the request marks the network dirty
        and the allocation settles once at the end of the current timestamp;
        without it, the pass runs immediately (the reference behaviour, one
        full recompute per flow event).
        """
        self.recompute_requests += 1
        if not self._coalesce:
            self._settle()
            return
        if self._settle_pending:
            return
        self._settle_pending = True
        self.env.settle(self._settle)

    def _settle(self, _evt: Optional[Event] = None) -> None:
        """One allocation pass: advance, complete, re-allocate, re-arm timer."""
        self._settle_pending = False
        # Bring every flow's remaining volume up to date before re-allocating
        # (idempotent: _advance() is a no-op when already at the current time).
        self._advance()
        # Complete flows that have (numerically) finished.
        finished = [f for f in self._active if f.remaining_mb <= 1e-9]
        for flow in finished:
            self._active.remove(flow)
            self._allocator.flow_removed(flow)
            flow.remaining_mb = 0.0
            flow.end_time = self.env.now
            self.completed_flows += 1
            self.total_mb_delivered += flow.size_mb
            flow.done.succeed(flow)

        self.allocation_passes += 1
        rates = self._allocator.allocate(self._active, self._background)
        for flow in self._active:
            flow.rate_mbps = rates.get(flow.fid, 0.0)
        self._reschedule_completion()

    def _reschedule_completion(self) -> None:
        """Point the (single, cancellable) wake-up timer at the next completion."""
        if self._completion_timer is not None:
            self._completion_timer.cancel()
            self._completion_timer = None
        if not self._active:
            return
        horizon = math.inf
        for flow in self._active:
            if flow.rate_mbps > _EPSILON:
                horizon = min(horizon, flow.remaining_mb / flow.rate_mbps)
        if not math.isfinite(horizon):
            # All active flows are starved (zero capacity); nothing to schedule —
            # a topology/background change will trigger a new recompute.
            return
        self._completion_timer = self.env.call_later(max(horizon, 0.0),
                                                     self._on_completion_timer)

    def _on_completion_timer(self, _evt: Event) -> None:
        self._completion_timer = None
        self._recompute()
