"""RPC layer standing in for Java RMI.

The BitDew prototype uses Java RMI between the API layer and the D*
services.  Table 2 of the paper distinguishes three call paths:

* ``local`` — a direct function call (client and service in one JVM, no RMI),
* ``RMI local`` — an RMI call over the loopback interface,
* ``RMI remote`` — an RMI call between two machines on the LAN.

:class:`RpcChannel` reproduces these as latency profiles; the round-trip
costs are calibrated so that the data-slot-creation micro-benchmark
(Table 2) lands in the paper's bands (see ``benchmarks/``).  A channel can
also charge a per-kilobyte marshalling cost for larger payloads.

A :class:`RpcEndpoint` wraps a service object; ``channel.invoke(endpoint,
"method", ...)`` is a generator meant to be yielded from inside a simulation
process.  If the target method itself returns a generator it is run as a
sub-process (so services can perform their own simulated waits, e.g.
database accesses).
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.kernel import Environment

__all__ = ["ChannelKind", "RpcChannel", "RpcEndpoint", "RpcError"]


class RpcError(RuntimeError):
    """Raised when an RPC cannot be completed (e.g. the service host is down)."""


class ChannelKind(enum.Enum):
    """The three call paths measured by Table 2."""

    LOCAL = "local"
    RMI_LOCAL = "rmi local"
    RMI_REMOTE = "rmi remote"


#: Calibrated round-trip latencies (seconds).  "local" is a plain call.
_DEFAULT_RTT = {
    ChannelKind.LOCAL: 0.0,
    ChannelKind.RMI_LOCAL: 130e-6,
    ChannelKind.RMI_REMOTE: 245e-6,
}

#: Marshalling cost per KB of payload (seconds/KB); RMI serialisation is slow.
_DEFAULT_PER_KB = {
    ChannelKind.LOCAL: 0.0,
    ChannelKind.RMI_LOCAL: 2e-6,
    ChannelKind.RMI_REMOTE: 4e-6,
}


@dataclass
class RpcEndpoint:
    """A service object reachable through a channel.

    ``host`` is optional; when given, calls fail with :class:`RpcError` while
    the host is offline (this is how the transient-fault model for service
    nodes manifests to clients).
    """

    service: Any
    host: Any = None
    name: Optional[str] = None

    def label(self) -> str:
        if self.name:
            return self.name
        return type(self.service).__name__


class RpcChannel:
    """A latency-modelled request/response channel."""

    def __init__(
        self,
        env: Environment,
        kind: ChannelKind = ChannelKind.RMI_REMOTE,
        round_trip_s: Optional[float] = None,
        per_kb_s: Optional[float] = None,
    ):
        self.env = env
        self.kind = kind
        self.round_trip_s = (
            _DEFAULT_RTT[kind] if round_trip_s is None else float(round_trip_s)
        )
        self.per_kb_s = (
            _DEFAULT_PER_KB[kind] if per_kb_s is None else float(per_kb_s)
        )
        #: Counters useful for protocol-overhead accounting (Figure 3b/3c).
        self.calls = 0
        self.total_latency_s = 0.0

    def call_cost(self, payload_kb: float = 1.0) -> float:
        """Latency charged for one round trip carrying ``payload_kb`` KB."""
        return self.round_trip_s + self.per_kb_s * max(0.0, payload_kb)

    def invoke(self, endpoint: RpcEndpoint, method: str, *args,
               payload_kb: float = 1.0, **kwargs):
        """Generator performing one remote invocation.

        Yields the request latency, runs the target method (as a sub-process
        when it is a generator), then yields the response latency, and
        finally returns the method's result.
        """
        if endpoint.host is not None and not endpoint.host.online:
            raise RpcError(
                f"service host {endpoint.host.name} is offline "
                f"(calling {endpoint.label()}.{method})"
            )
        target = getattr(endpoint.service, method)
        cost = self.call_cost(payload_kb)
        self.calls += 1
        self.total_latency_s += cost
        if cost > 0:
            yield self.env.timeout(cost / 2.0)
        result = target(*args, **kwargs)
        if inspect.isgenerator(result):
            result = yield self.env.process(result)
        if cost > 0:
            yield self.env.timeout(cost / 2.0)
        if endpoint.host is not None and not endpoint.host.online:
            raise RpcError(
                f"service host {endpoint.host.name} failed during the call "
                f"to {endpoint.label()}.{method}"
            )
        return result


def channel_for(env: Environment, kind: ChannelKind) -> RpcChannel:
    """Convenience factory mirroring the paper's three experimental settings."""
    return RpcChannel(env, kind)


__all__.append("channel_for")
