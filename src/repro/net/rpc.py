"""RPC layer standing in for Java RMI.

The BitDew prototype uses Java RMI between the API layer and the D*
services.  Table 2 of the paper distinguishes three call paths:

* ``local`` — a direct function call (client and service in one JVM, no RMI),
* ``RMI local`` — an RMI call over the loopback interface,
* ``RMI remote`` — an RMI call between two machines on the LAN.

:class:`RpcChannel` reproduces these as latency profiles; the round-trip
costs are calibrated so that the data-slot-creation micro-benchmark
(Table 2) lands in the paper's bands (see ``benchmarks/``).  A channel can
also charge a per-kilobyte marshalling cost for larger payloads.

A :class:`RpcEndpoint` wraps a service object; ``channel.invoke(endpoint,
"method", ...)`` is a generator meant to be yielded from inside a simulation
process.  If the target method itself returns a generator it is run as a
sub-process (so services can perform their own simulated waits, e.g.
database accesses).
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.sim.kernel import Environment

__all__ = [
    "ChannelKind",
    "FailoverPolicy",
    "RpcChannel",
    "RpcEndpoint",
    "RpcError",
    "RpcResponseLostError",
]


class RpcError(RuntimeError):
    """Raised when an RPC cannot be completed (e.g. the service host is down)."""


class RpcResponseLostError(RpcError):
    """The service host failed *after* executing the call: the method ran but
    its response never reached the client.  Failover must not blindly retry
    these — re-executing a non-idempotent method (a synchronisation, an
    ownership change) on a live replica would duplicate its effects.  The
    caller decides (BitDew's pull model simply re-synchronises later)."""


class ChannelKind(enum.Enum):
    """The three call paths measured by Table 2."""

    LOCAL = "local"
    RMI_LOCAL = "rmi local"
    RMI_REMOTE = "rmi remote"


#: Calibrated round-trip latencies (seconds).  "local" is a plain call.
_DEFAULT_RTT = {
    ChannelKind.LOCAL: 0.0,
    ChannelKind.RMI_LOCAL: 130e-6,
    ChannelKind.RMI_REMOTE: 245e-6,
}

#: Marshalling cost per KB of payload (seconds/KB); RMI serialisation is slow.
_DEFAULT_PER_KB = {
    ChannelKind.LOCAL: 0.0,
    ChannelKind.RMI_LOCAL: 2e-6,
    ChannelKind.RMI_REMOTE: 4e-6,
}


@dataclass
class RpcEndpoint:
    """A service object reachable through a channel.

    ``host`` is optional; when given, calls fail with :class:`RpcError` while
    the host is offline (this is how the transient-fault model for service
    nodes manifests to clients).

    ``shard`` names the fabric shard this endpoint belongs to (e.g.
    ``"ds-2"``); it is included in :meth:`label` so a multi-shard
    :class:`RpcError` identifies which shard of which service failed.

    ``domain`` names the administrative domain (federation) the endpoint
    serves.  Shard names and host ids are only unique *within* one domain —
    two federated domains both have a ``dc-0`` — so the domain qualifies
    the label; otherwise a :class:`~repro.services.autoscaler.HotspotMonitor`
    spanning channels from several domains would alias their per-label
    deltas onto one counter.  ``domain=None`` (every single-domain
    deployment) keeps the historical labels byte-identical.
    """

    service: Any
    host: Any = None
    name: Optional[str] = None
    shard: Optional[str] = None
    domain: Optional[str] = None

    def label(self) -> str:
        # Memoized: endpoints are long-lived and their fields never change
        # after construction, and invoke() reads the label on every call.
        cached = self.__dict__.get("_label")
        if cached is None:
            base = self.name if self.name else type(self.service).__name__
            if self.domain is not None:
                qualifier = (f"{self.domain}/{self.shard}"
                             if self.shard is not None else self.domain)
                cached = f"{base}[{qualifier}]"
            elif self.shard is not None:
                cached = f"{base}[{self.shard}]"
            else:
                cached = base
            self.__dict__["_label"] = cached
        return cached


@dataclass(frozen=True)
class FailoverPolicy:
    """Retry-on-:class:`RpcError` policy for fabric-routed invocations.

    Each failed attempt waits ``backoff_s`` before the endpoint is resolved
    again — by then the fabric's heartbeat detector may have declared the
    dead service host and rerouted the shard to a live replica.  After
    ``max_attempts`` total attempts the request is *lost* (counted on the
    channel) and the last :class:`RpcError` propagates to the caller.
    """

    max_attempts: int = 16
    backoff_s: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")


class RpcChannel:
    """A latency-modelled request/response channel."""

    def __init__(
        self,
        env: Environment,
        kind: ChannelKind = ChannelKind.RMI_REMOTE,
        round_trip_s: Optional[float] = None,
        per_kb_s: Optional[float] = None,
    ):
        self.env = env
        self.kind = kind
        self.round_trip_s = (
            _DEFAULT_RTT[kind] if round_trip_s is None else float(round_trip_s)
        )
        self.per_kb_s = (
            _DEFAULT_PER_KB[kind] if per_kb_s is None else float(per_kb_s)
        )
        #: Counters useful for protocol-overhead accounting (Figure 3b/3c).
        self.calls = 0
        self.total_latency_s = 0.0
        #: Marshalling accounting: payload KB pushed through the channel and
        #: the per-KB serialisation latency it cost (part of total_latency_s).
        self.marshalled_kb = 0.0
        self.marshalling_latency_s = 0.0
        #: Per-endpoint-label accounting (fabric shards show up individually,
        #: e.g. ``"DataScheduler[ds-2]"`` — the per-shard latency breakdown).
        self.calls_by_label: Dict[str, int] = {}
        self.latency_by_label: Dict[str, float] = {}
        #: Failover accounting: attempts that failed and were retried, and
        #: requests lost after exhausting a policy's attempts.
        self.failover_attempts = 0
        self.lost_requests = 0

    def call_cost(self, payload_kb: float = 1.0) -> float:
        """Latency charged for one round trip carrying ``payload_kb`` KB."""
        return self.round_trip_s + self.per_kb_s * max(0.0, payload_kb)

    def invoke(self, endpoint: RpcEndpoint, method: str, *args,
               payload_kb: float = 1.0, **kwargs):
        """Generator performing one remote invocation.

        Yields the request latency, runs the target method (as a sub-process
        when it is a generator), then yields the response latency, and
        finally returns the method's result.
        """
        if endpoint.host is not None and not endpoint.host.online:
            raise RpcError(
                f"service host {endpoint.host.name} is offline "
                f"(calling {endpoint.label()}.{method})"
            )
        target = getattr(endpoint.service, method)
        cost = self.call_cost(payload_kb)
        label = endpoint.label()
        self.calls += 1
        self.total_latency_s += cost
        self.marshalled_kb += max(0.0, payload_kb)
        self.marshalling_latency_s += self.per_kb_s * max(0.0, payload_kb)
        self.calls_by_label[label] = self.calls_by_label.get(label, 0) + 1
        self.latency_by_label[label] = (
            self.latency_by_label.get(label, 0.0) + cost)
        if cost > 0:
            yield self.env.timeout(cost / 2.0)
        if endpoint.host is not None and not endpoint.host.online:
            # The host died while the request was marshalled/in transit:
            # the method never ran, so this is a plain retryable RpcError —
            # not a lost response, which at-most-once must never retry.
            raise RpcError(
                f"service host {endpoint.host.name} went offline before "
                f"dispatch (calling {endpoint.label()}.{method})"
            )
        result = target(*args, **kwargs)
        if inspect.isgenerator(result):
            result = yield self.env.process(result)
        if cost > 0:
            yield self.env.timeout(cost / 2.0)
        if endpoint.host is not None and not endpoint.host.online:
            raise RpcResponseLostError(
                f"service host {endpoint.host.name} failed during the call "
                f"to {endpoint.label()}.{method}"
            )
        return result

    def invoke_failover(self, resolve: Callable[[], RpcEndpoint], method: str,
                        *args, policy: Optional[FailoverPolicy] = None,
                        payload_kb: float = 1.0, **kwargs):
        """Generator: invoke with retry-on-:class:`RpcError` failover.

        ``resolve`` is called before *every* attempt and returns the endpoint
        to try (the fabric router resolves the currently-live replica of the
        target shard; it raises :class:`RpcError` itself when no replica is
        believed alive).  A failed attempt waits ``policy.backoff_s`` and
        re-resolves, so a crashed service host is retried until the
        heartbeat detector reroutes the shard — or the attempt budget runs
        out, which counts the request as lost and re-raises.

        At-most-once execution: a :class:`RpcResponseLostError` — the host
        died *after* the method ran, only the response was lost — is never
        retried (re-executing a non-idempotent call on a replica would
        duplicate its effects); it counts as a lost request and propagates
        for the caller's own recovery (the pull model's next sync).
        """
        if policy is None:
            policy = FailoverPolicy()
        attempt = 0
        while True:
            attempt += 1
            try:
                endpoint = resolve()
                result = yield from self.invoke(
                    endpoint, method, *args, payload_kb=payload_kb, **kwargs)
                return result
            except RpcResponseLostError:
                self.lost_requests += 1
                raise
            except RpcError:
                if attempt >= policy.max_attempts:
                    self.lost_requests += 1
                    raise
                self.failover_attempts += 1
            if policy.backoff_s > 0:
                yield self.env.timeout(policy.backoff_s)


def channel_for(env: Environment, kind: ChannelKind) -> RpcChannel:
    """Convenience factory mirroring the paper's three experimental settings."""
    return RpcChannel(env, kind)


__all__.append("channel_for")
