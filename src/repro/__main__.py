"""``python -m repro`` — the experiment catalog on the command line.

Subcommands:

* ``list`` — every registered scenario with its paper reference.
* ``describe NAME`` — parameters, defaults and provenance of one scenario.
* ``run NAME [--set k=v ...] [--seed N] [--out results.json]`` — run one
  scenario; the JSON written by ``--out`` is deterministic (same seed →
  byte-identical bytes).  Every run prints a ``# stats:`` perf line
  (wall clock, and when the scenario reports them, ``processed_events``
  and ``events_per_sec``) to stderr; ``--profile`` additionally runs the
  scenario under cProfile and prints the top ``--profile-limit``
  functions to stderr, ordered by ``--profile-sort`` (cumulative or
  tottime); ``--profile-out FILE`` (implies ``--profile``) writes a JSON
  report splitting the profiled time by phase — placement (Algorithm 1),
  allocation (flow max-min fair shares), kernel dispatch (event loop +
  scheduler) and other — plus the top functions.
* ``sweep NAME --grid k=v1,v2 [--grid ...] [--set k=v ...] [--out f.json]``
  — the cartesian product of one or more parameter axes, executed by the
  parallel sweep engine: ``--jobs N`` runs points on a process pool
  (byte-identical output to ``--jobs 1``), a content-addressed result cache
  (on by default; ``--cache-dir``/``--no-cache``) skips already-computed
  points, ``--retries K`` re-runs crashing points, and a point that still
  fails becomes a structured failure entry in the JSON (exit code 1).
* ``cache ls|stats|clear`` — inspect or empty the sweep result cache.
* ``lint [PATH] [--format json] [--rules IDS] [--baseline f.json]`` —
  run detlint, the determinism & architecture linter (``repro.analysis``)
  over ``src/repro``; exit 1 on findings, 2 on usage errors.  See
  "Determinism contract & layer DAG" in ``docs/ARCHITECTURE.md``.

Parameter values (``--set``/``--grid``) are parsed as JSON when possible
(``replica=5`` → int, ``sizes_mb=[10,100]`` → list) and fall back to plain
strings (``protocol=ftp``).  Malformed assignments and unknown parameter
names are reported as one-line errors with exit code 2.

Examples::

    python -m repro list
    python -m repro describe fig4
    python -m repro run fig4 --out fig4.json
    python -m repro run distribution --set protocol=bittorrent --set size_mb=100
    python -m repro sweep fig4 --grid replica=3,5 --grid crash_interval_s=10,20
    python -m repro sweep fig3a --grid "sizes_mb=[[10],[100]]" --jobs 4 --retries 1
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.bench.reporting import format_table
from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    UnknownScenarioError,
    default_registry,
    execute_sweep,
    run_spec,
)
from repro.experiments.cache import default_cache_dir

__all__ = ["main"]


def _parse_value(text: str):
    """One CLI parameter value: JSON if it parses, plain string otherwise."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_assignment(text: str) -> tuple:
    if "=" not in text:
        raise ValueError(f"expected name=value, got {text!r}")
    name, _, value = text.partition("=")
    name = name.strip()
    if not name:
        raise ValueError(f"empty parameter name in {text!r}")
    return name, _parse_value(value.strip())


def _parse_grid_axis(text: str) -> tuple:
    """``name=v1,v2,...`` → (name, [values]).

    A JSON list (``name=[1,2]``) is taken whole, and a JSON-quoted string
    (``name='"x,y"'``) is one value even if it contains commas; otherwise
    the value splits on commas.
    """
    if "=" not in text:
        raise ValueError(f"expected name=value, got {text!r}")
    name, _, raw = text.partition("=")
    name, raw = name.strip(), raw.strip()
    if not name:
        raise ValueError(f"empty parameter name in {text!r}")
    try:
        parsed = json.loads(raw)
    except ValueError:
        if "," in raw:
            return name, [_parse_value(part.strip())
                          for part in raw.split(",")]
        return name, [raw]
    return name, parsed if isinstance(parsed, list) else [parsed]


def _collect_params(assignments: Optional[Sequence[str]],
                    seed: Optional[int]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for assignment in assignments or ():
        name, value = _parse_assignment(assignment)
        params[name] = value
    if seed is not None:
        params["seed"] = seed
    return params


def _write_output(text: str, out: Optional[str]) -> None:
    if out is None or out == "-":
        sys.stdout.write(text)
    else:
        with open(out, "w") as fh:
            fh.write(text)


def _summarise(results: object) -> str:
    """A short human-readable account of a scenario's results."""
    if isinstance(results, dict):
        scalars = {k: v for k, v in results.items()
                   if isinstance(v, (int, float, str, bool)) or v is None}
        return format_table([scalars]) if scalars else repr(results)
    if isinstance(results, list) and results \
            and all(isinstance(row, dict) for row in results):
        columns = [k for k in results[0]
                   if isinstance(results[0][k], (int, float, str, bool))]
        return format_table(results, columns=columns)
    return repr(results)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_list(args: argparse.Namespace) -> int:
    registry = default_registry()
    rows = [{
        "scenario": d.name,
        "group": d.group,
        "paper_ref": d.paper_ref,
        "title": d.title,
    } for d in registry.definitions(group=args.group)]
    print(format_table(rows, title=f"{len(rows)} registered scenarios"))
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    registry = default_registry()
    definition = registry.get(args.scenario)
    print(f"scenario : {definition.name}")
    print(f"title    : {definition.title}")
    print(f"paper    : {definition.paper_ref}")
    print(f"module   : {definition.module}")
    print(f"group    : {definition.group}"
          + (f"   tags: {', '.join(definition.tags)}" if definition.tags else ""))
    print(f"usage    : {definition.cli_example()}")
    print()
    params = definition.parameters()
    rows = [{"parameter": name,
             "default": ("(required)" if default is inspect.Parameter.empty
                         else repr(default))}
            for name, default in params.items()]
    print(format_table(rows, title="parameters (override with --set name=value)"))
    if definition.accepts_extra_params():
        print("(extra --set parameters are forwarded to the underlying run)")
    if definition.description:
        print()
        print(definition.description)
    return 0


def _sweep_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """The result cache for ``sweep``: on by default, ``--no-cache`` kills it."""
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _run_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """The result cache for ``run``: off unless ``--cache``/``--cache-dir``.

    A single ``run`` is usually *meant* to execute (its summary shows live,
    volatile quantities like wall-clock), so caching is opt-in there —
    unlike ``sweep``, whose product is the deterministic merged JSON.
    """
    if args.no_cache:
        return None
    if args.cache or args.cache_dir is not None:
        return ResultCache(args.cache_dir)
    return None


def _progress_printer(args: argparse.Namespace):
    """Progress lines go to stderr so ``--out -`` JSON keeps stdout clean."""
    if args.quiet:
        return None
    return lambda line: print(line, file=sys.stderr, flush=True)


def _sum_key(results: object, key: str) -> Optional[float]:
    """Sum every value of *key* found anywhere in a results structure."""
    found: List[float] = []

    def walk(value: object) -> None:
        if isinstance(value, dict):
            item = value.get(key)
            if isinstance(item, (int, float)) and not isinstance(item, bool):
                found.append(item)
            for item in value.values():
                walk(item)
        elif isinstance(value, (list, tuple)):
            for item in value:
                walk(item)

    walk(results)
    return sum(found) if found else None


def _print_run_stats(results: object, wall_s: float) -> None:
    """The perf line every run reports: event count and throughput.

    Goes to stderr so ``--out -`` JSON keeps stdout clean; scenarios whose
    results carry no ``processed_events`` report only the wall clock.
    """
    events = _sum_key(results, "processed_events")
    line = f"# stats: wall_s={wall_s:.3f}"
    if events is not None:
        rate = events / wall_s if wall_s > 0 else 0.0
        line += f" processed_events={int(events)} events_per_sec={rate:.0f}"
    print(line, file=sys.stderr, flush=True)


# Per-phase attribution of profile samples: a function belongs to the
# phase of the *module* it lives in.  ``tottime`` sums are disjoint across
# functions, so the per-phase split always adds up to the profiled total —
# no double counting, unlike cumulative times.
_PROFILE_PHASES = (
    ("placement", ("/services/data_scheduler",)),
    ("allocation", ("/net/allocation", "/net/flows")),
    ("kernel_dispatch", ("/sim/kernel", "/sim/scheduler")),
)


def _profile_phase(filename: str) -> str:
    normalised = filename.replace("\\", "/")
    for phase, markers in _PROFILE_PHASES:
        if any(marker in normalised for marker in markers):
            return phase
    return "other"


def _profile_report(profiler, sort: str, limit: int,
                    wall_s: float) -> Dict[str, object]:
    """The ``--profile-out`` JSON: per-phase split plus the top functions."""
    import pstats

    stats = pstats.Stats(profiler)
    phases: Dict[str, Dict[str, float]] = {
        phase: {"tottime_s": 0.0, "calls": 0}
        for phase, _markers in _PROFILE_PHASES}
    phases["other"] = {"tottime_s": 0.0, "calls": 0}
    rows = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        phase = _profile_phase(filename)
        phases[phase]["tottime_s"] += tt
        phases[phase]["calls"] += nc
        rows.append({"function": name, "file": filename, "line": line,
                     "phase": phase, "ncalls": nc, "tottime_s": tt,
                     "cumtime_s": ct})
    key = "tottime_s" if sort == "tottime" else "cumtime_s"
    rows.sort(key=lambda row: (-row[key], row["file"], row["line"]))
    total = sum(entry["tottime_s"] for entry in phases.values())
    for entry in phases.values():
        entry["tottime_s"] = round(entry["tottime_s"], 6)
        entry["share"] = round(entry["tottime_s"] / total, 4) if total else 0.0
    return {
        "sort": sort,
        "wall_s": round(wall_s, 6),
        "profiled_s": round(total, 6),
        "phases": phases,
        "top": [dict(row, tottime_s=round(row["tottime_s"], 6),
                     cumtime_s=round(row["cumtime_s"], 6))
                for row in rows[:limit]],
    }


def cmd_run(args: argparse.Namespace) -> int:
    params = _collect_params(args.set, args.seed)
    cache = _run_cache(args)
    if args.profile_out is not None:
        args.profile = True      # --profile-out implies profiling
    if args.profile and not (cache is None and args.retries == 0):
        print("error: --profile runs the scenario in-process; it cannot be "
              "combined with --cache/--cache-dir/--retries", file=sys.stderr)
        return 2
    if cache is None and args.retries == 0:
        # The plain path: run in-process, keep the raw results (including
        # volatile keys like wall-clock) for the summary.
        spec = ScenarioSpec(scenario=args.scenario, params=params)
        profiler = None
        if args.profile:
            import cProfile
            profiler = cProfile.Profile()
        wall_start = time.perf_counter()
        if profiler is not None:
            profiler.enable()
            try:
                result = run_spec(spec)
            finally:
                profiler.disable()
        else:
            result = run_spec(spec)
        wall_s = time.perf_counter() - wall_start
        if profiler is not None:
            import pstats
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats(args.profile_sort).print_stats(args.profile_limit)
            if args.profile_out is not None:
                report = _profile_report(profiler, args.profile_sort,
                                         args.profile_limit, wall_s)
                report["scenario"] = args.scenario
                _write_output(json.dumps(report, indent=2, sort_keys=True)
                              + "\n", args.profile_out)
        if not args.quiet:
            _print_run_stats(result.results, wall_s)
        if args.out is not None:
            _write_output(result.to_json(), args.out)
        # With '--out -' the JSON owns stdout; the summary would corrupt it.
        if not args.quiet and args.out != "-":
            ref = (f" [{result.definition.paper_ref}]"
                   if result.definition.paper_ref else "")
            print(f"# scenario {result.spec.scenario}{ref}"
                  + (f" -> {args.out}" if args.out not in (None, "-") else ""))
            print(_summarise(result.results))
        return 0

    # Cache and/or retries requested: a run is a one-point sweep.
    outcome = execute_sweep(args.scenario, {}, base_params=params,
                            cache=cache, retries=args.retries,
                            progress=_progress_printer(args))
    point = outcome.points[0]
    if not point.ok:
        failure = point.failure
        print(failure.traceback, file=sys.stderr, end="")
        print(f"error: scenario {args.scenario!r} failed after "
              f"{failure.attempts} attempt{'s' if failure.attempts != 1 else ''}"
              f": {failure.error}: {failure.message}", file=sys.stderr)
        return 1
    text = json.dumps(point.run, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        _write_output(text, args.out)
    if not args.quiet and args.out != "-":
        ref = f" [{outcome.paper_ref}]" if outcome.paper_ref else ""
        cached = " (cached)" if point.cached else ""
        print(f"# scenario {outcome.scenario}{ref}{cached}"
              + (f" -> {args.out}" if args.out not in (None, "-") else ""))
        print(_summarise(point.run["results"]))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    grid: Dict[str, List[object]] = {}
    for axis in args.grid:
        name, values = _parse_grid_axis(axis)
        if name in grid:
            raise ValueError(
                f"duplicate --grid axis {name!r}; give every value in one "
                f"axis: --grid {name}={','.join(map(str, grid[name] + values))}")
        grid[name] = values
    base = _collect_params(args.set, args.seed)
    outcome = execute_sweep(
        args.scenario, grid, base_params=base, jobs=args.jobs,
        cache=_sweep_cache(args), retries=args.retries,
        progress=_progress_printer(args),
        derive_seeds=args.seed_per_point)
    text = outcome.to_json()
    if args.out is not None:
        _write_output(text, args.out)
    if not args.quiet and args.out != "-":
        stats = outcome.stats
        print(f"# swept {outcome.scenario}: {stats.points} points over axes "
              f"{sorted(grid)} ({stats.executed} run, "
              f"{stats.cache_hits} cached, {stats.failed} failed)"
              + (f" -> {args.out}" if args.out not in (None, "-") else ""))
        for point in outcome.failures():
            overrides = {axis: point.spec.params.get(axis)
                         for axis in sorted(grid)}
            print(f"  FAILED {overrides}: {point.failure.error}: "
                  f"{point.failure.message}")
    return 0 if outcome.ok else 1


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result"
              f"{'s' if removed != 1 else ''} from {cache.root}")
        return 0
    entries = cache.entries()
    if args.action == "stats":
        total = sum(int(entry["bytes"]) for entry in entries)
        scenarios = sorted({str(entry["scenario"]) for entry in entries})
        print(f"cache dir : {cache.root}")
        print(f"entries   : {len(entries)}")
        print(f"bytes     : {total}")
        print(f"scenarios : {', '.join(scenarios) if scenarios else '(none)'}")
        return 0
    # ls
    rows = [{"key": str(entry["key"])[:16], "scenario": entry["scenario"],
             "bytes": entry["bytes"]} for entry in entries]
    print(format_table(rows, title=f"{len(rows)} cached results "
                                   f"in {cache.root}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the declarative experiment scenarios of this "
                    "BitDew reproduction (see docs/EXPERIMENTS.md).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--group", choices=("paper", "scale", "extra"),
                        default=None, help="only one scenario group")
    p_list.set_defaults(func=cmd_list)

    p_desc = sub.add_parser("describe", help="show one scenario's parameters")
    p_desc.add_argument("scenario")
    p_desc.set_defaults(func=cmd_describe)

    p_run = sub.add_parser("run", help="run one scenario")
    p_run.add_argument("scenario")
    p_run.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="override one parameter (repeatable)")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the scenario's RNG seed")
    p_run.add_argument("--out", metavar="FILE",
                       help="write deterministic JSON results ('-' = stdout)")
    p_run.add_argument("--profile", action="store_true",
                       help="profile the run with cProfile and print the top "
                            "functions by cumulative time to stderr")
    p_run.add_argument("--profile-limit", type=int, default=25, metavar="N",
                       help="number of profile rows to print (default 25)")
    p_run.add_argument("--profile-sort", choices=("cumulative", "tottime"),
                       default="cumulative",
                       help="profile ordering for the stderr table and the "
                            "--profile-out top list (default cumulative)")
    p_run.add_argument("--profile-out", metavar="FILE", default=None,
                       help="write a JSON profile report (implies --profile): "
                            "per-phase tottime split — placement / allocation "
                            "/ kernel_dispatch / other — plus the top "
                            "--profile-limit functions ('-' = stdout)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress the human-readable summary")
    p_run.add_argument("--retries", type=int, default=0, metavar="K",
                       help="re-run a crashing scenario up to K extra times")
    p_run.add_argument("--cache", action="store_true",
                       help="reuse/store this run in the result cache")
    p_run.add_argument("--cache-dir", metavar="DIR", default=None,
                       help=f"result cache directory (implies --cache; "
                            f"default {default_cache_dir()})")
    p_run.add_argument("--no-cache", action="store_true",
                       help="never touch the result cache")
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser("sweep",
                             help="run the cartesian product of a grid")
    p_sweep.add_argument("scenario")
    p_sweep.add_argument("--grid", action="append", required=True,
                         metavar="NAME=V1,V2,...",
                         help="one parameter axis (repeatable)")
    p_sweep.add_argument("--set", action="append", metavar="NAME=VALUE",
                         help="fixed override applied to every run")
    p_sweep.add_argument("--seed", type=int, default=None,
                         help="RNG seed applied to every run")
    p_sweep.add_argument("--seed-per-point", action="store_true",
                         help="derive a deterministic per-point seed from "
                              "the base seed and each point's overrides")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="run points on an N-process pool "
                              "(output byte-identical to --jobs 1)")
    p_sweep.add_argument("--retries", type=int, default=0, metavar="K",
                         help="re-run a crashing point up to K extra times")
    p_sweep.add_argument("--cache-dir", metavar="DIR", default=None,
                         help=f"result cache directory "
                              f"(default {default_cache_dir()})")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="always execute every point")
    p_sweep.add_argument("--out", metavar="FILE",
                         help="write the sweep JSON ('-' = stdout)")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress progress lines and the summary")
    p_sweep.set_defaults(func=cmd_sweep)

    p_cache = sub.add_parser("cache",
                             help="inspect or clear the sweep result cache")
    p_cache.add_argument("action", choices=("ls", "stats", "clear"))
    p_cache.add_argument("--cache-dir", metavar="DIR", default=None,
                         help=f"result cache directory "
                              f"(default {default_cache_dir()})")
    p_cache.set_defaults(func=cmd_cache)

    p_lint = sub.add_parser(
        "lint", help="run detlint (determinism & architecture rules)")
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=run_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnknownScenarioError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Malformed --set/--grid values, unknown or missing parameter names:
        # a clean one-line diagnostic, never a traceback.  (Deliberately not
        # TypeError — that would misclassify genuine scenario crashes on the
        # plain `run` path as malformed CLI input.)
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
