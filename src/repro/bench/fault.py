"""Fault-tolerance scenario harness: Figure 4.

The paper's scenario (§4.4), run on DSL-Lab: a datum is created with
``replica = 5, fault tolerance = true, protocol = ftp``; the runtime must
keep five replicas alive.  Every 20 seconds one machine owning the datum is
killed while a new machine joins.  The measurements are, for each new
arrival, the elapsed time between the node's arrival and the datum being
scheduled to it (dominated by the 3 x heartbeat failure-detection timeout),
the download time, and the download bandwidth (heterogeneous across ADSL
lines).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.attributes import Attribute
from repro.core.runtime import BitDewEnvironment
from repro.experiments.entry import registered_entry_point
from repro.net.topology import dsl_lab_topology
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.storage.filesystem import FileContent
from repro.workloads.traces import ChurnScript, crash_replace_script

__all__ = ["run_fig4"]


def _run_fig4(
    size_mb: float = 5.0,
    replica: int = 5,
    n_initial: int = 5,
    n_spare: int = 5,
    crash_interval_s: float = 20.0,
    heartbeat_period_s: float = 1.0,
    timeout_multiplier: float = 3.0,
    sync_period_s: float = 1.0,
    settle_s: float = 60.0,
    horizon_s: float = 260.0,
    seed: int = 42,
) -> Dict[str, object]:
    """Run the Figure 4 scenario and return the per-arrival timeline."""
    if n_initial + n_spare > 12:
        raise ValueError("DSL-Lab has 12 nodes; n_initial + n_spare must fit")
    env = Environment()
    rng = RandomStreams(seed)
    topo = dsl_lab_topology(env, n_workers=n_initial + n_spare, rng=rng)
    runtime = BitDewEnvironment(
        topo,
        sync_period_s=sync_period_s,
        heartbeat_period_s=heartbeat_period_s,
        timeout_multiplier=timeout_multiplier,
        monitor_period_s=0.5,
        seed=seed,
    )
    master = runtime.attach(topo.service_host, auto_sync=False)

    initial_hosts = topo.worker_hosts[:n_initial]
    spare_hosts = topo.worker_hosts[n_initial:n_initial + n_spare]

    content = FileContent.from_seed("replicated.dat", size_mb)
    attribute = Attribute(name="replicated", replica=replica,
                          fault_tolerance=True, protocol="ftp")

    published = {}

    def master_program():
        data = yield from master.bitdew.create_data("replicated.dat", content=content)
        yield from master.bitdew.put(data, content, protocol="ftp")
        yield from master.active_data.schedule(data, attribute)
        published["data"] = data
        return data

    setup = env.process(master_program())
    env.run(until=setup)
    data = published["data"]

    # The initial owner population.
    for host in initial_hosts:
        runtime.attach(host, stagger_start=True)

    # Let the initial replicas settle before injecting churn.
    env.run(until=env.now + settle_s)

    script = ChurnScript(runtime, crash_replace_script(
        [h.name for h in initial_hosts],
        [h.name for h in spare_hosts],
        interval_s=crash_interval_s,
        start_s=env.now,
    ))
    script.start()
    env.run(until=horizon_s)

    rows: List[Dict[str, float]] = []
    for host in topo.worker_hosts:
        agent = runtime.agents.get(host.name)
        if agent is None:
            continue
        stats = agent.stats.get(data.uid)
        if stats is None or stats.download_completed_at is None:
            continue
        is_replacement = host in spare_hosts
        wait = (stats.assigned_at - agent.attached_at
                if stats.assigned_at is not None else None)
        rows.append({
            "host": host.name,
            "replacement": bool(is_replacement),
            "attached_at": agent.attached_at,
            "assigned_at": stats.assigned_at,
            "wait_s": wait,
            "download_s": stats.download_time_s,
            "bandwidth_kbps": (stats.bandwidth_mbps or 0.0) * 1024.0,
        })

    owners = runtime.data_scheduler.owners_of(data.uid)
    live_owners = [name for name in owners
                   if name in runtime.agents
                   and runtime.agents[name].host.online
                   and runtime.agents[name].has_content(data.uid)]
    replacement_rows = [r for r in rows if r["replacement"]]
    return {
        "rows": rows,
        "replacement_rows": replacement_rows,
        "timeout_s": heartbeat_period_s * timeout_multiplier,
        "live_replicas": len(live_owners),
        "requested_replicas": replica,
        "crashes": len([e for e in script.applied if e.action == "crash"]),
        "joins": len([e for e in script.applied if e.action == "join"]),
    }


#: Public entry point: dispatches through the scenario registry as ``fig4``.
run_fig4 = registered_entry_point("fig4", _run_fig4)
