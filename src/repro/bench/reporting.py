"""Reporting helpers shared by the benchmark harness.

``format_table`` renders experiment rows as a plain-text table (used by the
benchmark output and ``examples/reproduce_paper.py``); ``shape_check``
collects simple assertions about the *shape* of results (who wins, by what
rough factor) so that benchmarks can fail loudly when a change breaks the
qualitative reproduction, without pinning exact simulated numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "shape_check", "geometric_mean"]


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None,
                 float_format: str = "{:.2f}") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


class ShapeCheckFailure(AssertionError):
    """A qualitative reproduction property does not hold."""


class shape_check:
    """Collects named qualitative assertions and raises a summary on failure.

    Usage::

        checks = shape_check("figure 3a")
        checks.is_true("bt wins at 500MB/150 nodes", bt_time < ftp_time)
        checks.ratio_at_least("ftp slowdown 10->150 nodes", ftp_150 / ftp_10, 5.0)
        checks.verify()
    """

    def __init__(self, label: str):
        self.label = label
        self.failures: List[str] = []
        self.passed: List[str] = []

    def is_true(self, name: str, condition: bool) -> None:
        (self.passed if condition else self.failures).append(name)

    def ratio_at_least(self, name: str, ratio: float, minimum: float) -> None:
        self.is_true(f"{name} (ratio {ratio:.2f} >= {minimum:g})", ratio >= minimum)

    def ratio_at_most(self, name: str, ratio: float, maximum: float) -> None:
        self.is_true(f"{name} (ratio {ratio:.2f} <= {maximum:g})", ratio <= maximum)

    def within(self, name: str, value: float, low: float, high: float) -> None:
        self.is_true(f"{name} ({value:.3g} in [{low:g}, {high:g}])",
                     low <= value <= high)

    def verify(self) -> None:
        if self.failures:
            raise ShapeCheckFailure(
                f"{self.label}: {len(self.failures)} shape check(s) failed: "
                + "; ".join(self.failures)
            )


__all__.append("ShapeCheckFailure")
