"""Sweep-throughput benchmark: the experiment engine as its own workload.

The paper's evaluation is a grid of independent simulation runs; the
ROADMAP's north star is running them "as fast as the hardware allows".
This harness measures the sweep executor itself on a fixed Figure-3-style
``distribution`` grid, three ways:

* **serial** — ``jobs=1``, no cache: the baseline the old in-process loop
  would have produced;
* **parallel** — ``jobs=N``, no cache: the process-pool path, whose merged
  JSON must be byte-identical to serial (asserted, and recorded as
  ``identical``);
* **warm** — the same sweep against a pre-populated result cache: every
  point must be a hit and nothing may execute.

``benchmarks/test_scale_grid.py`` asserts the invariants and records the
measured walls as the ``sweep-parallel`` BENCH trajectory point.  The
recorded ``cpus`` field is essential context for ``speedup``: a process
pool cannot beat serial on a single effective core, while the warm-cache
speedup is hardware-independent.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, Optional, Sequence

from repro.experiments.cache import ResultCache, code_version_salt, point_key
from repro.experiments.entry import registered_entry_point
from repro.experiments.executor import execute_sweep

__all__ = ["run_sweep_parallel"]


def _run_sweep_parallel(
    sizes_mb: Sequence[float] = (50.0, 100.0),
    node_counts: Sequence[int] = (100, 150, 200, 250),
    protocol: str = "ftp",
    jobs: int = 4,
    cache_dir: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """Serial vs ``jobs``-way parallel vs warm-cache wall-clock of one sweep.

    The grid is ``sizes_mb × node_counts`` over the ``distribution``
    scenario (the Figure 3a building block) — independent, CPU-bound
    simulation points of a few hundred milliseconds each, the regime the
    process pool is built for.
    """
    grid = {"size_mb": list(sizes_mb), "n_nodes": list(node_counts)}
    base = {"protocol": protocol, "seed": seed}

    wall = time.perf_counter()
    serial = execute_sweep("distribution", grid, base_params=base, jobs=1)
    serial_wall_s = time.perf_counter() - wall

    wall = time.perf_counter()
    parallel = execute_sweep("distribution", grid, base_params=base,
                             jobs=jobs)
    parallel_wall_s = time.perf_counter() - wall

    identical = serial.to_json() == parallel.to_json()

    # Warm-cache phase: seed the cache from the runs already computed, then
    # re-run the sweep — every point must come back as a hit.
    own_tmp = cache_dir is None
    root = cache_dir or tempfile.mkdtemp(prefix="repro-sweep-bench-")
    cache = ResultCache(root)
    salt = code_version_salt()
    for point in parallel.points:
        if point.ok:
            cache.put(point_key(point.spec.scenario, point.spec.params, salt),
                      point.spec.scenario, point.run)
    wall = time.perf_counter()
    warm = execute_sweep("distribution", grid, base_params=base,
                         jobs=jobs, cache=cache)
    warm_wall_s = time.perf_counter() - wall
    identical = identical and warm.to_json() == serial.to_json()
    if own_tmp:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "scenario": "sweep-parallel",
        "target": "distribution",
        "points": len(serial.points),
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "identical": identical,
        "serial_wall_s": serial_wall_s,
        "parallel_wall_s": parallel_wall_s,
        "warm_wall_s": warm_wall_s,
        "speedup": serial_wall_s / max(parallel_wall_s, 1e-9),
        "warm_speedup": serial_wall_s / max(warm_wall_s, 1e-9),
        "warm_cache_hits": warm.stats.cache_hits,
        "warm_executed": warm.stats.executed,
        "failed": serial.stats.failed + parallel.stats.failed
                  + warm.stats.failed,
    }


# Public entry point: dispatches through the scenario registry.
run_sweep_parallel = registered_entry_point("sweep-parallel",
                                            _run_sweep_parallel)
