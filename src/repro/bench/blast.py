"""BLAST master/worker harness: Figures 5 and 6.

Figure 5: total execution time (broadcast of the Genebase + Sequences plus
BLAST execution) as a function of the number of workers, with the shared
files distributed over FTP vs BitTorrent.  The paper runs 10..275 workers on
Grid'5000 with a 2.68 GB Genebase; FTP grows steeply with worker count while
BitTorrent stays nearly flat.

Figure 6: breakdown of the total execution time (transfer / unzip /
execution) per cluster for a 400-node deployment over the four clusters of
Table 1, for both protocols; BitTorrent shrinks the transfer component by
roughly an order of magnitude.

Simulation-cost knobs (``sync_period_s``, ``monitor_period_s``) default to
coarser values than the micro-benchmarks: the BLAST runs last thousands of
simulated seconds and the paper itself notes that real deployments poll far
less aggressively (§4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.blast import BlastParameters, build_blast_application
from repro.core.runtime import BitDewEnvironment
from repro.experiments.entry import registered_entry_point
from repro.net.topology import cluster_topology, grid5000_testbed
from repro.sim.kernel import Environment
from repro.transfer.registry import default_registry

__all__ = ["run_blast_once", "run_fig5", "run_fig6"]


def _run_blast_once(
    n_workers: int,
    transfer_protocol: str,
    topology: str = "cluster",
    n_tasks: Optional[int] = None,
    parameters: Optional[BlastParameters] = None,
    sync_period_s: float = 30.0,
    monitor_period_s: float = 10.0,
    max_data_schedule: int = 2,
    deadline_s: float = 50_000.0,
    bittorrent_mode: str = "fluid",
    seed: int = 0,
) -> Dict[str, object]:
    """One BLAST master/worker run; returns the report plus derived metrics."""
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    env = Environment()
    if topology == "cluster":
        topo = cluster_topology(env, n_workers=n_workers)
    elif topology == "grid5000":
        topo = grid5000_testbed(env, total_nodes=n_workers)
    else:
        raise ValueError("topology must be 'cluster' or 'grid5000'")

    registry = default_registry(env, topo.network, bittorrent_mode=bittorrent_mode)
    runtime = BitDewEnvironment(
        topo, registry=registry,
        sync_period_s=sync_period_s,
        monitor_period_s=monitor_period_s,
        max_data_schedule=max_data_schedule,
        heartbeat_period_s=max(1.0, sync_period_s / 2.0),
        seed=seed,
    )
    tasks = n_tasks if n_tasks is not None else len(topo.worker_hosts)
    app = build_blast_application(
        runtime, master_host=topo.service_host, n_tasks=tasks,
        transfer_protocol=transfer_protocol, parameters=parameters,
    )
    app.register_workers()
    report = app.run(deadline_s=deadline_s, poll_s=sync_period_s)
    breakdown = report.mean_breakdown()
    return {
        "protocol": transfer_protocol,
        "n_workers": float(n_workers),
        "n_tasks": float(tasks),
        "makespan_s": report.makespan_s,
        "tasks_executed": float(report.tasks_executed),
        "results_collected": float(report.results_collected),
        "mean_transfer_s": breakdown["transfer_s"],
        "mean_unzip_s": breakdown["unzip_s"],
        "mean_execution_s": breakdown["execution_s"],
        "breakdown_by_cluster": report.breakdown_by_cluster(),
        "report": report,
    }


def _run_fig5(
    worker_counts: Sequence[int] = (10, 50, 150),
    protocols: Sequence[str] = ("ftp", "bittorrent"),
    **kwargs,
) -> List[Dict[str, object]]:
    """Total BLAST execution time vs number of workers, per protocol."""
    rows = []
    for protocol in protocols:
        for workers in worker_counts:
            result = _run_blast_once(workers, protocol, topology="cluster", **kwargs)
            rows.append(result)
    return rows


def _run_fig6(
    total_nodes: int = 100,
    protocols: Sequence[str] = ("ftp", "bittorrent"),
    **kwargs,
) -> List[Dict[str, object]]:
    """Per-cluster breakdown (transfer / unzip / execution) on Grid'5000."""
    rows = []
    for protocol in protocols:
        result = _run_blast_once(total_nodes, protocol, topology="grid5000", **kwargs)
        for cluster, values in result["breakdown_by_cluster"].items():
            rows.append({
                "protocol": protocol,
                "cluster": cluster,
                "transfer_s": values["transfer_s"],
                "unzip_s": values["unzip_s"],
                "execution_s": values["execution_s"],
                "tasks": values["tasks"],
            })
        mean = result  # overall means
        rows.append({
            "protocol": protocol,
            "cluster": "mean",
            "transfer_s": mean["mean_transfer_s"],
            "unzip_s": mean["mean_unzip_s"],
            "execution_s": mean["mean_execution_s"],
            "tasks": mean["tasks_executed"],
        })
    return rows


# Public entry points: dispatch through the scenario registry.
run_blast_once = registered_entry_point("blast", _run_blast_once)
run_fig5 = registered_entry_point("fig5", _run_fig5)
run_fig6 = registered_entry_point("fig6", _run_fig6)
