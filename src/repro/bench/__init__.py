"""Experiment harness: one entry point per table/figure of the paper.

Each ``run_*`` function builds a fresh simulated platform, runs the
experiment and returns plain dictionaries/lists with the same rows or series
the paper reports.  Every entry point is a thin wrapper
(:func:`repro.experiments.entry.registered_entry_point`) over a scenario
registered in :mod:`repro.experiments.scenarios`, so the functions below,
the pytest benchmarks under ``benchmarks/`` and the ``python -m repro`` CLI
all dispatch to the same registered experiment; ``docs/EXPERIMENTS.md`` maps
the full catalog.

Index (see DESIGN.md and docs/EXPERIMENTS.md for the full mapping):

=============  ==========================================================
Experiment     Harness function
=============  ==========================================================
Table 1        :func:`repro.bench.micro.table1_testbed`
Table 2        :func:`repro.bench.micro.run_table2`
Table 3        :func:`repro.bench.micro.run_table3`
Figure 3a      :func:`repro.bench.transfer.run_fig3a`
Figure 3b/3c   :func:`repro.bench.transfer.run_fig3bc`
Figure 4       :func:`repro.bench.fault.run_fig4`
Figure 5       :func:`repro.bench.blast.run_fig5`
Figure 6       :func:`repro.bench.blast.run_fig6`
Scale (BENCH)  :func:`repro.bench.scale.run_sync_storm` /
               :func:`repro.bench.scale.run_scale_grid` /
               :func:`repro.bench.sweep.run_sweep_parallel`
=============  ==========================================================
"""

from repro.bench.micro import run_table2, run_table2_cell, run_table3, table1_testbed
from repro.bench.transfer import (
    run_distribution,
    run_fig3a,
    run_fig3bc,
    run_ftp_alone,
)
from repro.bench.fabric import run_fabric_failover, run_fabric_scale
from repro.bench.fault import run_fig4
from repro.bench.blast import run_fig5, run_fig6
from repro.bench.reporting import format_table, shape_check
from repro.bench.scale import (
    run_completion_curve,
    run_scale_grid,
    run_sync_storm,
)
from repro.bench.sweep import run_sweep_parallel

__all__ = [
    "format_table",
    "run_completion_curve",
    "run_distribution",
    "run_fabric_failover",
    "run_fabric_scale",
    "run_fig3a",
    "run_fig3bc",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_ftp_alone",
    "run_scale_grid",
    "run_sweep_parallel",
    "run_sync_storm",
    "run_table2",
    "run_table2_cell",
    "run_table3",
    "shape_check",
    "table1_testbed",
]
