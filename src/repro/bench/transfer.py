"""Transfer-benchmark harness: Figures 3a, 3b and 3c.

The paper's setup (§4.3): the D* services, the FTP server and the BitTorrent
seeder all run on the same node of the GdX cluster; BitDew replicates a file
of 10..500 MB to 10..250 nodes; the DT heartbeat monitors transfers every
500 ms and the DS synchronises every second to maximise protocol pressure.

* :func:`run_ftp_alone` — the baseline: the same file distributed to the
  same nodes with the raw FTP protocol, no BitDew runtime involved.
* :func:`run_distribution` — the BitDew-driven distribution with a chosen
  out-of-band protocol (FTP or BitTorrent).
* :func:`run_fig3a` — completion-time grid for both protocols (Figure 3a).
* :func:`run_fig3bc` — BitDew+FTP vs FTP-alone overhead, in percent
  (Figure 3b) and in seconds (Figure 3c).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.attributes import Attribute
from repro.core.runtime import BitDewEnvironment
from repro.experiments.entry import registered_entry_point
from repro.net.topology import cluster_topology
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent, LocalFileSystem
from repro.transfer.ftp import FTPProtocol
from repro.transfer.oob import TransferEndpoint

__all__ = ["run_distribution", "run_fig3a", "run_fig3bc", "run_ftp_alone"]


def _run_ftp_alone(size_mb: float, n_nodes: int,
                  server_link_mbps: float = 125.0,
                  node_link_mbps: float = 125.0) -> Dict[str, float]:
    """Distribute one file to *n_nodes* with the raw FTP protocol only."""
    if size_mb <= 0 or n_nodes <= 0:
        raise ValueError("size_mb and n_nodes must be positive")
    env = Environment()
    topo = cluster_topology(env, n_workers=n_nodes,
                            server_link_mbps=server_link_mbps,
                            node_link_mbps=node_link_mbps)
    server = topo.service_host
    server_fs = LocalFileSystem(owner=server.name)
    content = FileContent.from_seed("payload.bin", size_mb)
    server_fs.write("payload.bin", content)
    protocol = FTPProtocol(env, topo.network)

    handles = []
    for worker in topo.worker_hosts:
        worker_fs = LocalFileSystem(owner=worker.name)
        handle = protocol.create_handle(
            content,
            source=TransferEndpoint(server, server_fs, "payload.bin"),
            destination=TransferEndpoint(worker, worker_fs, "payload.bin"),
        )
        protocol.non_blocking_receive(handle)
        handles.append(handle)

    env.run(until=env.all_of([h.done for h in handles]))
    completion = max(h.end_time for h in handles)
    return {
        "size_mb": float(size_mb),
        "n_nodes": float(n_nodes),
        "completion_s": completion,
        "per_node_throughput_mbps": size_mb / completion if completion > 0 else 0.0,
    }


def _run_distribution(
    protocol: str,
    size_mb: float,
    n_nodes: int,
    monitor_period_s: float = 0.5,
    sync_period_s: float = 1.0,
    use_scheduler: bool = False,
    bittorrent_mode: str = "auto",
    server_link_mbps: float = 125.0,
    node_link_mbps: float = 125.0,
    seed: int = 0,
) -> Dict[str, float]:
    """Distribute one file to *n_nodes* through the full BitDew runtime.

    With ``use_scheduler=False`` (the default, matching the §4.3 measurement)
    every node issues the transfer immediately through the DC/DR/DT protocol;
    with ``use_scheduler=True`` the file is scheduled with ``replica = -1``
    and nodes discover it through their periodic synchronisation, which adds
    the pull-model latency on top.
    """
    if size_mb <= 0 or n_nodes <= 0:
        raise ValueError("size_mb and n_nodes must be positive")
    env = Environment()
    topo = cluster_topology(env, n_workers=n_nodes,
                            server_link_mbps=server_link_mbps,
                            node_link_mbps=node_link_mbps)
    from repro.transfer.registry import default_registry
    registry = default_registry(env, topo.network, bittorrent_mode=bittorrent_mode)
    runtime = BitDewEnvironment(
        topo, registry=registry,
        sync_period_s=sync_period_s, monitor_period_s=monitor_period_s,
        seed=seed,
    )
    master = runtime.attach(topo.service_host, auto_sync=False)
    content = FileContent.from_seed("payload.bin", size_mb)

    setup_done = {}

    def master_program():
        data = yield from master.bitdew.create_data("payload.bin", content=content)
        yield from master.bitdew.put(data, content, protocol=protocol)
        attribute = Attribute(name="payload", replica=-1, protocol=protocol)
        if use_scheduler:
            yield from master.active_data.schedule(data, attribute)
        setup_done["data"] = data
        setup_done["attribute"] = attribute
        setup_done["time"] = env.now
        return data

    setup_proc = env.process(master_program())
    env.run(until=setup_proc)
    data = setup_done["data"]
    attribute = setup_done["attribute"]
    start_time = setup_done["time"]

    agents = runtime.attach_all(auto_sync=use_scheduler)
    fetch_events = []
    if not use_scheduler:
        for agent in agents:
            agent.set_attribute(data, attribute)
            fetch_events.append(env.process(
                agent.fetch(data, protocol=protocol, attribute=attribute)))
        env.run(until=env.all_of(fetch_events))
    else:
        deadline = start_time + max(3600.0, 100.0 * size_mb)
        while env.now < deadline:
            if all(agent.has_content(data.uid) for agent in agents):
                break
            env.run(until=env.now + sync_period_s)

    completions = []
    for agent in agents:
        stats = agent.stats.get(data.uid)
        if stats is not None and stats.download_completed_at is not None:
            completions.append(stats.download_completed_at)
    if not completions:
        raise RuntimeError("no node completed the distribution")
    completion = max(completions) - start_time

    dt = runtime.data_transfer
    return {
        "protocol": protocol,
        "size_mb": float(size_mb),
        "n_nodes": float(n_nodes),
        "completion_s": completion,
        "completed_nodes": float(len(completions)),
        "monitor_messages": float(dt.monitor_messages),
        "retries": float(dt.retries),
    }


def _run_fig3a(
    sizes_mb: Sequence[float] = (10, 100, 500),
    node_counts: Sequence[int] = (10, 50, 150),
    protocols: Sequence[str] = ("ftp", "bittorrent"),
    **kwargs,
) -> List[Dict[str, float]]:
    """Completion time of BitDew-driven distribution, FTP vs BitTorrent."""
    rows = []
    for protocol in protocols:
        for size in sizes_mb:
            for nodes in node_counts:
                result = _run_distribution(protocol, size, nodes, **kwargs)
                rows.append(result)
    return rows


def _run_fig3bc(
    sizes_mb: Sequence[float] = (10, 100, 500),
    node_counts: Sequence[int] = (10, 50, 150),
    **kwargs,
) -> List[Dict[str, float]]:
    """BitDew+FTP vs FTP alone: overhead in percent (3b) and seconds (3c)."""
    rows = []
    for size in sizes_mb:
        for nodes in node_counts:
            baseline = _run_ftp_alone(size, nodes)
            bitdew = _run_distribution("ftp", size, nodes, **kwargs)
            overhead_s = bitdew["completion_s"] - baseline["completion_s"]
            overhead_pct = (100.0 * overhead_s / baseline["completion_s"]
                            if baseline["completion_s"] > 0 else float("inf"))
            rows.append({
                "size_mb": float(size),
                "n_nodes": float(nodes),
                "ftp_alone_s": baseline["completion_s"],
                "bitdew_ftp_s": bitdew["completion_s"],
                "overhead_s": overhead_s,
                "overhead_pct": overhead_pct,
            })
    return rows


# Public entry points: each dispatches through the scenario registry under
# the name shown, so ``python -m repro run fig3a`` and these functions are
# one and the same experiment.
run_ftp_alone = registered_entry_point("ftp-alone", _run_ftp_alone)
run_distribution = registered_entry_point("distribution", _run_distribution)
run_fig3a = registered_entry_point("fig3a", _run_fig3a)
run_fig3bc = registered_entry_point("fig3bc", _run_fig3bc)
