"""Scaling benchmarks beyond the paper's grids.

The paper stops at 275 workers (Fig. 5) and a few hundred data items; the
ROADMAP's north star is production scale.  This harness stresses exactly the
two hot paths the O(active)-work refactor targets:

* :func:`run_sync_storm` — N workers all starting a download from the same
  file server at the same instant (the worst case for per-event global
  bandwidth re-allocation), repeated for several rounds.  Runs with a
  selectable allocator (``dense`` = the reference full-recompute
  implementation, ``incremental`` = coalesced incremental allocation) so the
  two can be compared on identical scenarios: simulated completion times
  must match exactly, wall-clock must not.

* :func:`run_completion_curve` — the Fig. 3a FTP shape at scale: with the
  server uplink as the bottleneck, completion time must keep growing
  linearly with the worker count well past the paper's 250 nodes.

* :func:`run_scale_grid` — the full runtime at ≥1000 hosts × ≥5000 data
  items: data is scheduled with a replica target, every host synchronises
  in batched storms (:meth:`BitDewEnvironment.kick_sync`), downloads flow
  through the DC/DR/DT protocol stack, and the indexed Data Scheduler must
  place every datum without ever scanning all of Θ.

* :func:`run_scale_grid_100k` — the 100k-host tier: identical hosts are
  batched into array-backed cohorts (:mod:`repro.workloads.cohort`), each
  driven by a single generator calling the Data Scheduler's pure
  ``compute_schedule`` and the flow network directly.  Defaults to the
  calendar-queue event scheduler and the vectorized allocator; both are
  scenario parameters (``--set scheduler=heap``/``allocator=incremental``
  restores the reference path, which must produce identical results).

The existing harnesses accept the perf knobs ``scheduler`` (and, for the
grid, ``allocator``) as *extra* parameters: they default to the reference
implementations and deliberately stay out of the runner signatures, so the
resolved spec — and therefore the serialised ``run --out`` JSON — of a
default-configuration run is byte-identical to what it was before the
knobs existed.

Each function returns a plain metrics dict; ``benchmarks/test_scale_grid.py``
asserts the curve shapes and records the numbers as a BENCH trajectory
point in ``BENCH.json``.  Every dict carries ``processed_events`` and the
wall-clock-derived ``events_per_sec`` (volatile, scrubbed from serialised
output) so perf work always starts from data.
"""

from __future__ import annotations

import contextlib
import gc
import time
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.attributes import Attribute
from repro.experiments.entry import registered_entry_point
from repro.core.data import Data
from repro.core.runtime import BitDewEnvironment
from repro.net.flows import Network
from repro.net.host import Host
from repro.net.topology import cluster_topology
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent
from repro.workloads.cohort import (
    build_cohorts,
    cohort_heartbeat_process,
    cohort_sync_process,
)

__all__ = ["run_completion_curve", "run_scale_grid", "run_scale_grid_100k",
           "run_scale_grid_300k", "run_sync_storm"]


def _pop_perf_knobs(perf: Dict[str, object],
                    allocator_default: Optional[str] = None) -> Dict[str, object]:
    """Extract the optional perf knobs shared by the scale harnesses.

    Returns ``{"scheduler": ..., "allocator": ...}`` (the latter only when
    ``allocator_default`` is given).  Leftover keys are a parameter-name
    error, reported exactly like an unknown ``--set`` name.
    """
    knobs: Dict[str, object] = {"scheduler": perf.pop("scheduler", "heap")}
    if allocator_default is not None:
        knobs["allocator"] = perf.pop("allocator", allocator_default)
    if perf:
        raise ValueError(f"unknown parameters {sorted(perf)}; "
                         f"perf knobs are {sorted(knobs)}")
    return knobs


def _events_per_sec(processed_events: int, wall_s: float) -> float:
    return processed_events / wall_s if wall_s > 0 else 0.0


@contextlib.contextmanager
def _gc_paused() -> Iterator[None]:
    """Pause the cyclic collector around a timed kernel section.

    The kernel's hot loop churns acyclic garbage (events, flows, sync
    results) that CPython's reference counting reclaims immediately; the
    cyclic collector only re-traverses it.  At 100k-host scale the gen-0
    sweeps alone cost ~20% of the run wall-clock — and they fire *more*
    often on the batched placement path (each cohort's thousand results
    are alive at once), inverting A/B comparisons.  Pausing the collector
    affects wall-clock only, never simulated results; the deferred cycles
    (process ↔ generator frames, a few hundred per run) are collected
    right after the timed section.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def _run_sync_storm(
    n_workers: int = 500,
    rounds: int = 2,
    size_mb: float = 5.0,
    allocator: str = "incremental",
    coalesce: bool = True,
    server_link_mbps: float = 1000.0,
    node_link_mbps: float = 10.0,
    latency_s: float = 0.001,
    **perf,
) -> Dict[str, object]:
    """N simultaneous downloads from one server, ``rounds`` times over.

    Aggregate worker demand (``n_workers * node_link_mbps``) should exceed
    the server uplink so every flow shares one bottleneck — the regime of
    the paper's FTP distribution experiments.

    Extra parameter: ``scheduler`` (``heap`` | ``calendar`` | ``oracle``)
    selects the kernel's event scheduler.
    """
    if n_workers <= 0 or rounds <= 0:
        raise ValueError("n_workers and rounds must be positive")
    knobs = _pop_perf_knobs(perf)
    env = Environment(scheduler=knobs["scheduler"])
    network = Network(env, default_latency_s=latency_s,
                      allocator=allocator, coalesce=coalesce)
    server = network.add_host(Host(
        "server", uplink_mbps=server_link_mbps,
        downlink_mbps=server_link_mbps, stable=True))
    workers = [
        network.add_host(Host(f"w{i:04d}", uplink_mbps=node_link_mbps,
                              downlink_mbps=node_link_mbps))
        for i in range(n_workers)
    ]
    # Leave slack between rounds so each storm drains before the next hits.
    round_gap = (n_workers * size_mb) / server_link_mbps * 1.5 + 1.0
    flows: List = []

    def start_round(_evt, r: int) -> None:
        for worker in workers:
            flows.append(network.transfer(server, worker, size_mb,
                                          label=f"round-{r}"))

    for r in range(rounds):
        env.timeout(r * round_gap).add_callback(
            lambda evt, r=r: start_round(evt, r))

    wall_start = time.perf_counter()
    env.run()
    wall_s = time.perf_counter() - wall_start
    end_times = [flow.end_time for flow in flows]
    return {
        "scenario": "sync-storm",
        "n_workers": n_workers,
        "rounds": rounds,
        "size_mb": size_mb,
        "allocator": allocator,
        "coalesce": coalesce,
        "wall_s": wall_s,
        "sim_completion_s": max(end_times),
        "end_times": end_times,
        "completed_flows": network.completed_flows,
        "allocation_passes": network.allocation_passes,
        "recompute_requests": network.recompute_requests,
        "processed_events": env.processed_events,
        "events_per_sec": _events_per_sec(env.processed_events, wall_s),
    }


def _run_completion_curve(
    worker_counts: Sequence[int] = (250, 500, 1000),
    size_mb: float = 2.0,
    server_link_mbps: float = 1000.0,
    node_link_mbps: float = 10.0,
) -> List[Dict[str, object]]:
    """Completion time vs worker count with a server-uplink bottleneck."""
    rows: List[Dict[str, object]] = []
    for n_workers in worker_counts:
        metrics = _run_sync_storm(n_workers=n_workers, rounds=1,
                                 size_mb=size_mb,
                                 server_link_mbps=server_link_mbps,
                                 node_link_mbps=node_link_mbps)
        rows.append({
            "n_workers": n_workers,
            "sim_completion_s": metrics["sim_completion_s"],
            "wall_s": metrics["wall_s"],
            "allocation_passes": metrics["allocation_passes"],
        })
    return rows


def _run_scale_grid(
    n_hosts: int = 1000,
    n_data: int = 5000,
    replica: int = 1,
    size_mb: float = 0.2,
    max_data_schedule: int = 8,
    sync_rounds: int = 3,
    monitor_period_s: float = 5.0,
    seed: int = 7,
    **perf,
) -> Dict[str, object]:
    """Sync+transfer storm through the full runtime at production scale.

    ``n_data`` data items are created on the service host and scheduled with
    a replica target; ``n_hosts`` reservoir hosts then synchronise in
    simultaneous batches until everything is placed and downloaded.

    Extra parameters: ``scheduler`` (``heap`` | ``calendar`` | ``oracle``)
    and ``allocator`` (``incremental`` | ``dense`` | ``vector``).
    """
    if n_hosts <= 0 or n_data <= 0:
        raise ValueError("n_hosts and n_data must be positive")
    knobs = _pop_perf_knobs(perf, allocator_default="incremental")
    wall_start = time.perf_counter()
    env = Environment(scheduler=knobs["scheduler"])
    topo = cluster_topology(env, n_workers=n_hosts,
                            server_link_mbps=1000.0, node_link_mbps=125.0,
                            allocator=knobs["allocator"])
    runtime = BitDewEnvironment(
        topo,
        sync_period_s=3600.0,          # pull loops are driven by kick_sync
        monitor_period_s=monitor_period_s,
        heartbeat_period_s=3600.0,
        max_data_schedule=max_data_schedule,
        seed=seed,
    )
    scheduler = runtime.data_scheduler
    repository = runtime.container.data_repository
    catalog = runtime.container.data_catalog

    attribute = Attribute(name="grid", replica=replica, protocol="http")
    datas: List[Data] = []
    for i in range(n_data):
        content = FileContent.from_seed(f"grid-{i:05d}", size_mb)
        data = Data.from_content(content)
        locator = repository.store_now(data, content)
        catalog.add_locator_now(locator)
        scheduler.schedule(data, attribute)
        datas.append(data)
    setup_wall_s = time.perf_counter() - wall_start

    runtime.attach_all(auto_sync=False)
    examined_before = scheduler.entries_examined
    storm_walls: List[float] = []
    for _round in range(sync_rounds):
        storm_start = time.perf_counter()
        done = runtime.kick_sync()
        env.run(until=done)
        storm_walls.append(time.perf_counter() - storm_start)

    placed = sum(
        1 for data in datas
        if len(scheduler.owners_of(data.uid)) >= min(replica, n_hosts))
    downloaded = sum(
        1 for agent in runtime.agents.values()
        for uid in agent.cached_uids()
        if agent.has_content(uid))
    wall_s = time.perf_counter() - wall_start
    network = topo.network
    return {
        "scenario": "scale-grid",
        "n_hosts": n_hosts,
        "n_data": n_data,
        "replica": replica,
        "size_mb": size_mb,
        "sync_rounds": sync_rounds,
        "placed": placed,
        "downloaded": downloaded,
        "sim_time_s": env.now,
        "wall_s": wall_s,
        "setup_wall_s": setup_wall_s,
        "storm_walls_s": storm_walls,
        "sync_count": scheduler.sync_count,
        "assignments": scheduler.assignments,
        "entries_examined": scheduler.entries_examined - examined_before,
        "managed_count": scheduler.managed_count,
        "allocation_passes": network.allocation_passes,
        "recompute_requests": network.recompute_requests,
        "completed_flows": network.completed_flows,
        "processed_events": env.processed_events,
        "events_per_sec": _events_per_sec(env.processed_events, wall_s),
    }


def _run_scale_grid_100k(
    n_hosts: int = 100_000,
    n_data: int = 25_000,
    replica: int = 4,
    size_mb: float = 0.5,
    cohort_size: int = 1000,
    sync_rounds: int = 2,
    max_data_schedule: int = 1,
    stagger_s: float = 0.25,
    sync_gap_s: float = 1.0,
    heartbeat_period_s: float = 5.0,
    heartbeat_duration_s: float = 40.0,
    server_link_mbps: float = 8000.0,
    node_link_mbps: float = 125.0,
    scheduler: str = "calendar",
    allocator: str = "vector",
    **perf,
) -> Dict[str, object]:
    """Cohort-batched sync+download storm at the 100k-host tier.

    ``n_hosts`` identical reservoir hosts are partitioned into array-backed
    cohorts of ``cohort_size``; each cohort is driven by one sync generator
    (calling the Data Scheduler's pure ``compute_schedule`` per host and
    starting real flows on the shared network) plus one heartbeat timer.
    With the defaults every host downloads exactly one replica
    (``n_data * replica == n_hosts``, one assignment per sync), so the run
    is a full placement of ``n_data`` items over 100k hosts.

    ``scheduler`` and ``allocator`` are explicit axes: the defaults are the
    fast calendar-queue/vectorized pair; ``heap``/``incremental`` is the
    reference pair and must produce identical results (the CI kernel-smoke
    job byte-compares the two on a reduced grid).

    Extra parameter (out of the spec, like the older harnesses' knobs):
    ``placement`` (``host`` | ``batch``) — ``batch`` evaluates each
    cohort round with one ``compute_schedule_batch`` call instead of
    ``cohort_size`` sequential ``compute_schedule`` calls.  The results
    are identical either way (the batch engine is oracle-pinned); only
    the wall clock moves.
    """
    if n_hosts <= 0 or n_data <= 0:
        raise ValueError("n_hosts and n_data must be positive")
    placement = perf.pop("placement", "host")
    if perf:
        raise ValueError(f"unknown parameters {sorted(perf)}; "
                         f"perf knobs are ['placement']")
    if placement not in ("host", "batch"):
        raise ValueError(
            f"unknown placement {placement!r}; use 'host' or 'batch'")
    wall_start = time.perf_counter()
    env = Environment(scheduler=scheduler)
    network = Network(env, default_latency_s=0.0002, allocator=allocator)
    server = network.add_host(Host(
        "grid-service", uplink_mbps=server_link_mbps,
        downlink_mbps=server_link_mbps, stable=True))
    hosts = [
        network.add_host(Host(f"c{i:06d}", uplink_mbps=node_link_mbps,
                              downlink_mbps=node_link_mbps))
        for i in range(n_hosts)
    ]

    from repro.services.data_scheduler import DataSchedulerService
    ds = DataSchedulerService(env, max_data_schedule=max_data_schedule)
    attribute = Attribute(name="grid", replica=replica, protocol="http")
    size_mb_of: Dict[str, float] = {}
    datas: List[Data] = []
    for i in range(n_data):
        data = Data(name=f"grid-{i:05d}", size_mb=size_mb)
        ds.schedule(data, attribute)
        size_mb_of[data.uid] = size_mb
        datas.append(data)

    cohorts = build_cohorts(hosts, cohort_size)

    def sync(host_name: str, cached: set):
        ds.sync_count += 1
        return ds.compute_schedule(host_name, cached)

    def sync_batch(host_names: List[str], cached_per_host: List[set]):
        ds.sync_count += len(host_names)
        return ds.compute_schedule_batch(host_names, cached_per_host)

    def transfer(host: Host, uid: str):
        return network.transfer(server, host, size_mb_of[uid])

    for cohort in cohorts:
        env.process(cohort_sync_process(
            env, cohort, sync, transfer, size_mb_of,
            rounds=sync_rounds, stagger_s=stagger_s, sync_gap_s=sync_gap_s,
            sync_batch=sync_batch if placement == "batch" else None))
        env.process(cohort_heartbeat_process(
            env, cohort, period_s=heartbeat_period_s,
            duration_s=heartbeat_duration_s))
    setup_wall_s = time.perf_counter() - wall_start

    run_start = time.perf_counter()
    with _gc_paused():
        env.run()
        # Inside the pause: the timed section is the kernel loop, not the
        # post-run catch-up collection over the still-alive 100k-host grid.
        run_wall_s = time.perf_counter() - run_start

    placed = sum(
        1 for data in datas
        if len(ds.owners_of(data.uid)) >= min(replica, n_hosts))
    wall_s = time.perf_counter() - wall_start
    return {
        "scenario": "scale-grid-100k",
        "n_hosts": n_hosts,
        "n_data": n_data,
        "replica": replica,
        "size_mb": size_mb,
        "cohorts": len(cohorts),
        "cohort_size": cohort_size,
        "sync_rounds": sync_rounds,
        "scheduler": scheduler,
        "allocator": allocator,
        "placed": placed,
        "downloaded": sum(c.total_downloads for c in cohorts),
        "transferred_mb": sum(c.total_bytes_mb for c in cohorts),
        "last_completion_s": max(c.last_completion_s for c in cohorts),
        "syncs": sum(c.syncs for c in cohorts),
        "heartbeats": sum(c.heartbeats for c in cohorts),
        "sim_time_s": env.now,
        "assignments": ds.assignments,
        "entries_examined": ds.entries_examined,
        "managed_count": ds.managed_count,
        "allocation_passes": network.allocation_passes,
        "recompute_requests": network.recompute_requests,
        "completed_flows": network.completed_flows,
        "processed_events": env.processed_events,
        "wall_s": wall_s,
        "setup_wall_s": setup_wall_s,
        "run_wall_s": run_wall_s,
        "events_per_sec": _events_per_sec(env.processed_events, run_wall_s),
    }


def _run_scale_grid_300k(
    n_hosts: int = 300_000,
    n_data: int = 75_000,
    replica: int = 4,
    size_mb: float = 0.5,
    cohort_size: int = 1000,
    sync_rounds: int = 2,
    max_data_schedule: int = 1,
    stagger_s: float = 0.25,
    sync_gap_s: float = 1.0,
    heartbeat_period_s: float = 5.0,
    heartbeat_duration_s: float = 40.0,
    server_link_mbps: float = 24_000.0,
    node_link_mbps: float = 125.0,
    scheduler: str = "array",
    allocator: str = "vector",
    placement: str = "batch",
) -> Dict[str, object]:
    """The 300k-host tier: the 100k grid scaled 3×, fast path by default.

    Same workload shape as :func:`run_scale_grid_100k` — one replica per
    host (``n_data * replica == n_hosts``), cohort-batched sync storms,
    heartbeat background traffic — at triple the scale, with the fast
    defaults born with this scenario: the array-backed calendar scheduler,
    the vectorized allocator and batched cohort placement.  ``scheduler``,
    ``allocator`` and ``placement`` are ordinary parameters here (the
    scenario is new, nothing older pins its spec): set
    ``scheduler=heap allocator=incremental placement=host`` to certify
    against the reference path on a reduced grid.
    """
    results = _run_scale_grid_100k(
        n_hosts=n_hosts, n_data=n_data, replica=replica, size_mb=size_mb,
        cohort_size=cohort_size, sync_rounds=sync_rounds,
        max_data_schedule=max_data_schedule, stagger_s=stagger_s,
        sync_gap_s=sync_gap_s, heartbeat_period_s=heartbeat_period_s,
        heartbeat_duration_s=heartbeat_duration_s,
        server_link_mbps=server_link_mbps, node_link_mbps=node_link_mbps,
        scheduler=scheduler, allocator=allocator, placement=placement)
    results["scenario"] = "scale-grid-300k"
    results["placement"] = placement
    return results


# Public entry points: dispatch through the scenario registry.
run_sync_storm = registered_entry_point("sync-storm", _run_sync_storm)
run_completion_curve = registered_entry_point("completion-curve",
                                              _run_completion_curve)
run_scale_grid = registered_entry_point("scale-grid", _run_scale_grid)
run_scale_grid_100k = registered_entry_point("scale-grid-100k",
                                             _run_scale_grid_100k)
run_scale_grid_300k = registered_entry_point("scale-grid-300k",
                                             _run_scale_grid_300k)
