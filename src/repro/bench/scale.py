"""Scaling benchmarks beyond the paper's grids.

The paper stops at 275 workers (Fig. 5) and a few hundred data items; the
ROADMAP's north star is production scale.  This harness stresses exactly the
two hot paths the O(active)-work refactor targets:

* :func:`run_sync_storm` — N workers all starting a download from the same
  file server at the same instant (the worst case for per-event global
  bandwidth re-allocation), repeated for several rounds.  Runs with a
  selectable allocator (``dense`` = the reference full-recompute
  implementation, ``incremental`` = coalesced incremental allocation) so the
  two can be compared on identical scenarios: simulated completion times
  must match exactly, wall-clock must not.

* :func:`run_completion_curve` — the Fig. 3a FTP shape at scale: with the
  server uplink as the bottleneck, completion time must keep growing
  linearly with the worker count well past the paper's 250 nodes.

* :func:`run_scale_grid` — the full runtime at ≥1000 hosts × ≥5000 data
  items: data is scheduled with a replica target, every host synchronises
  in batched storms (:meth:`BitDewEnvironment.kick_sync`), downloads flow
  through the DC/DR/DT protocol stack, and the indexed Data Scheduler must
  place every datum without ever scanning all of Θ.

Each function returns a plain metrics dict; ``benchmarks/test_scale_grid.py``
asserts the curve shapes and records the numbers as a BENCH trajectory
point in ``BENCH.json``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import Attribute
from repro.experiments.entry import registered_entry_point
from repro.core.data import Data
from repro.core.runtime import BitDewEnvironment
from repro.net.flows import Network
from repro.net.host import Host
from repro.net.topology import cluster_topology
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent

__all__ = ["run_completion_curve", "run_scale_grid", "run_sync_storm"]


def _run_sync_storm(
    n_workers: int = 500,
    rounds: int = 2,
    size_mb: float = 5.0,
    allocator: str = "incremental",
    coalesce: bool = True,
    server_link_mbps: float = 1000.0,
    node_link_mbps: float = 10.0,
    latency_s: float = 0.001,
) -> Dict[str, object]:
    """N simultaneous downloads from one server, ``rounds`` times over.

    Aggregate worker demand (``n_workers * node_link_mbps``) should exceed
    the server uplink so every flow shares one bottleneck — the regime of
    the paper's FTP distribution experiments.
    """
    if n_workers <= 0 or rounds <= 0:
        raise ValueError("n_workers and rounds must be positive")
    env = Environment()
    network = Network(env, default_latency_s=latency_s,
                      allocator=allocator, coalesce=coalesce)
    server = network.add_host(Host(
        "server", uplink_mbps=server_link_mbps,
        downlink_mbps=server_link_mbps, stable=True))
    workers = [
        network.add_host(Host(f"w{i:04d}", uplink_mbps=node_link_mbps,
                              downlink_mbps=node_link_mbps))
        for i in range(n_workers)
    ]
    # Leave slack between rounds so each storm drains before the next hits.
    round_gap = (n_workers * size_mb) / server_link_mbps * 1.5 + 1.0
    flows: List = []

    def start_round(_evt, r: int) -> None:
        for worker in workers:
            flows.append(network.transfer(server, worker, size_mb,
                                          label=f"round-{r}"))

    for r in range(rounds):
        env.timeout(r * round_gap).add_callback(
            lambda evt, r=r: start_round(evt, r))

    wall_start = time.perf_counter()
    env.run()
    wall_s = time.perf_counter() - wall_start
    end_times = [flow.end_time for flow in flows]
    return {
        "scenario": "sync-storm",
        "n_workers": n_workers,
        "rounds": rounds,
        "size_mb": size_mb,
        "allocator": allocator,
        "coalesce": coalesce,
        "wall_s": wall_s,
        "sim_completion_s": max(end_times),
        "end_times": end_times,
        "completed_flows": network.completed_flows,
        "allocation_passes": network.allocation_passes,
        "recompute_requests": network.recompute_requests,
        "processed_events": env.processed_events,
    }


def _run_completion_curve(
    worker_counts: Sequence[int] = (250, 500, 1000),
    size_mb: float = 2.0,
    server_link_mbps: float = 1000.0,
    node_link_mbps: float = 10.0,
) -> List[Dict[str, object]]:
    """Completion time vs worker count with a server-uplink bottleneck."""
    rows: List[Dict[str, object]] = []
    for n_workers in worker_counts:
        metrics = _run_sync_storm(n_workers=n_workers, rounds=1,
                                 size_mb=size_mb,
                                 server_link_mbps=server_link_mbps,
                                 node_link_mbps=node_link_mbps)
        rows.append({
            "n_workers": n_workers,
            "sim_completion_s": metrics["sim_completion_s"],
            "wall_s": metrics["wall_s"],
            "allocation_passes": metrics["allocation_passes"],
        })
    return rows


def _run_scale_grid(
    n_hosts: int = 1000,
    n_data: int = 5000,
    replica: int = 1,
    size_mb: float = 0.2,
    max_data_schedule: int = 8,
    sync_rounds: int = 3,
    monitor_period_s: float = 5.0,
    seed: int = 7,
) -> Dict[str, object]:
    """Sync+transfer storm through the full runtime at production scale.

    ``n_data`` data items are created on the service host and scheduled with
    a replica target; ``n_hosts`` reservoir hosts then synchronise in
    simultaneous batches until everything is placed and downloaded.
    """
    if n_hosts <= 0 or n_data <= 0:
        raise ValueError("n_hosts and n_data must be positive")
    wall_start = time.perf_counter()
    env = Environment()
    topo = cluster_topology(env, n_workers=n_hosts,
                            server_link_mbps=1000.0, node_link_mbps=125.0)
    runtime = BitDewEnvironment(
        topo,
        sync_period_s=3600.0,          # pull loops are driven by kick_sync
        monitor_period_s=monitor_period_s,
        heartbeat_period_s=3600.0,
        max_data_schedule=max_data_schedule,
        seed=seed,
    )
    scheduler = runtime.data_scheduler
    repository = runtime.container.data_repository
    catalog = runtime.container.data_catalog

    attribute = Attribute(name="grid", replica=replica, protocol="http")
    datas: List[Data] = []
    for i in range(n_data):
        content = FileContent.from_seed(f"grid-{i:05d}", size_mb)
        data = Data.from_content(content)
        locator = repository.store_now(data, content)
        catalog.add_locator_now(locator)
        scheduler.schedule(data, attribute)
        datas.append(data)
    setup_wall_s = time.perf_counter() - wall_start

    runtime.attach_all(auto_sync=False)
    examined_before = scheduler.entries_examined
    storm_walls: List[float] = []
    for _round in range(sync_rounds):
        storm_start = time.perf_counter()
        done = runtime.kick_sync()
        env.run(until=done)
        storm_walls.append(time.perf_counter() - storm_start)

    placed = sum(
        1 for data in datas
        if len(scheduler.owners_of(data.uid)) >= min(replica, n_hosts))
    downloaded = sum(
        1 for agent in runtime.agents.values()
        for uid in agent.cached_uids()
        if agent.has_content(uid))
    wall_s = time.perf_counter() - wall_start
    network = topo.network
    return {
        "scenario": "scale-grid",
        "n_hosts": n_hosts,
        "n_data": n_data,
        "replica": replica,
        "size_mb": size_mb,
        "sync_rounds": sync_rounds,
        "placed": placed,
        "downloaded": downloaded,
        "sim_time_s": env.now,
        "wall_s": wall_s,
        "setup_wall_s": setup_wall_s,
        "storm_walls_s": storm_walls,
        "sync_count": scheduler.sync_count,
        "assignments": scheduler.assignments,
        "entries_examined": scheduler.entries_examined - examined_before,
        "managed_count": scheduler.managed_count,
        "allocation_passes": network.allocation_passes,
        "recompute_requests": network.recompute_requests,
        "completed_flows": network.completed_flows,
        "processed_events": env.processed_events,
    }


# Public entry points: dispatch through the scenario registry.
run_sync_storm = registered_entry_point("sync-storm", _run_sync_storm)
run_completion_curve = registered_entry_point("completion-curve",
                                              _run_completion_curve)
run_scale_grid = registered_entry_point("scale-grid", _run_scale_grid)
