"""Elastic-fabric benchmarks: live rebalancing and SLO-driven autoscaling.

Two scenarios close the loop the fabric PRs opened (sharding in PR 5, live
split/merge in this one):

* :func:`run_fabric_rebalance` — a running fabric absorbs one forced shard
  split and one forced merge while clients keep publishing, looking up and
  synchronising.  Every client request is ledgered; after the run the
  catalog shards are audited raw: **zero lost** (every completed publish is
  readable) and **zero duplicated** (each key lives on exactly one shard,
  each value appears once).  The migration stats judge the ring: keys
  moved must stay within ε of the ``K·1/S±1`` consistent-hashing minimum.

* :func:`run_fabric_autoscale` — the same compressed diurnal trace
  (:func:`repro.workloads.generator.diurnal_arrivals`: overnight trough,
  midday hump above a single shard's database capacity, a flash spike on
  top) replayed twice: once pinned at one shard, once with the
  :class:`~repro.services.autoscaler.SloAutoscaler` splitting and merging
  live against a p99 target.  The figure of merit is the SLO-violation
  integral (seconds above target) with vs without autoscaling.

Both scenarios are pure simulation — no wall-clock keys — so their JSON is
byte-identical across runs and ``--jobs`` values (CI asserts it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.runtime import BitDewEnvironment
from repro.experiments.entry import registered_entry_point
from repro.net.rpc import ChannelKind, RpcError
from repro.net.topology import cluster_topology
from repro.services.autoscaler import HotspotMonitor, SloAutoscaler, SloTracker
from repro.services.rebalance import RebalanceCoordinator
from repro.sim.kernel import Environment
from repro.storage.database import NetworkedSQLEngine
from repro.storage.filesystem import FileContent
from repro.workloads.generator import DiurnalProfile, diurnal_arrivals

__all__ = ["run_fabric_autoscale", "run_fabric_rebalance"]


def _audit_catalog_pairs(fabric, completed: Dict[str, str]) -> Dict[str, int]:
    """Raw scan of every catalog shard: are the ledgered pairs all there,
    each on exactly one shard, each value exactly once?"""
    lost = duplicated = misplaced = 0
    for key, value in completed.items():
        holders = []
        copies = 0
        for index, shard in enumerate(fabric.catalog_shards):
            values = shard.lookup_pair_now(key)
            if values:
                holders.append(index)
                copies += sum(1 for v in values if v == value)
        if not holders or copies == 0:
            lost += 1
        elif len(holders) > 1 or copies > 1:
            duplicated += 1
        elif holders[0] != fabric.dc_ring.shard_for(key):
            misplaced += 1
    return {"lost": lost, "duplicated": duplicated, "misplaced": misplaced}


def _run_fabric_rebalance(
    n_hosts: int = 8,
    n_data: int = 48,
    shards: int = 2,
    service_hosts: int = 3,
    replicas: int = 2,
    ring_vnodes: int = 64,
    op_period_s: float = 0.2,
    sync_every_ops: int = 8,
    split_at: float = 4.0,
    merge_at: float = 10.0,
    run_for_s: float = 16.0,
    seed: int = 7,
) -> Dict[str, object]:
    """One live split and one live merge under sustained client traffic.

    Volatile hosts publish a unique key/value pair every ``op_period_s``
    (immediately reading it back) and synchronise every ``sync_every_ops``
    operations, so both the keyed catalog path and the scatter/sync
    scheduler path cross the migration while it runs.  The coordinator
    forces a split at ``split_at`` and a merge at ``merge_at``; the ledger
    and the post-run raw audit prove no request was lost or duplicated.
    """
    env = Environment()
    topo = cluster_topology(env, n_workers=n_hosts,
                            n_service_hosts=service_hosts,
                            server_link_mbps=1000.0, node_link_mbps=1000.0)
    runtime = BitDewEnvironment(
        topo,
        shards=shards,
        service_hosts=service_hosts,
        service_replicas=replicas,
        ring_vnodes=ring_vnodes,
        sync_period_s=3600.0,          # synchronisation driven by the loops
        heartbeat_period_s=1.0,
        seed=seed,
    )
    fabric = runtime.fabric
    scheduler = runtime.data_scheduler
    catalog = runtime.data_catalog
    repository = runtime.container.data_repository

    attribute = Attribute(name="elastic", replica=1, protocol="http")
    datas = []
    for i in range(n_data):
        content = FileContent.from_seed(f"elastic-{i:05d}", 0.001)
        data = Data.from_content(content)
        catalog.register_data_now(data)
        locator = repository.store_now(data, content)
        catalog.add_locator_now(locator)
        scheduler.schedule(data, attribute)
        datas.append(data)
    agents = runtime.attach_all(auto_sync=False)
    done = runtime.kick_sync()
    env.run(until=done)

    #: the request ledger: key -> value for every publish that completed
    completed: Dict[str, str] = {}
    issued = {"publishes": 0, "syncs": 0, "readback_misses": 0,
              "client_errors": 0}
    t_start = env.now

    def client_loop(agent):
        count = 0
        while env.now - t_start < run_for_s:
            count += 1
            key = f"req-{agent.host.name}-{count:05d}"
            value = agent.host.name
            try:
                issued["publishes"] += 1
                yield from agent.invoke("dc", "publish_pair", key, value)
                completed[key] = value
                values = yield from agent.invoke("dc", "lookup_pair", key)
                if value not in values:
                    issued["readback_misses"] += 1
                if count % sync_every_ops == 0:
                    issued["syncs"] += 1
                    yield from agent.sync_once()
            except RpcError:
                issued["client_errors"] += 1
            yield env.timeout(op_period_s)

    coordinator = RebalanceCoordinator(fabric, runtime.router)
    transitions: List[Dict[str, object]] = []

    def transition_script():
        yield env.timeout(split_at)
        stats = yield from coordinator.split()
        transitions.append(_stats_row(stats))
        yield env.timeout(max(0.0, merge_at - (env.now - t_start)))
        stats = yield from coordinator.merge()
        transitions.append(_stats_row(stats))

    for agent in agents:
        env.process(client_loop(agent))
    env.process(transition_script())
    env.run(until=env.timeout(run_for_s + 4.0))

    audit = _audit_catalog_pairs(fabric, completed)
    # Scheduler-side conservation: every entry on exactly one shard.
    multi_homed = 0
    for data in datas:
        holders = sum(1 for shard in fabric.scheduler_shards
                      if shard.entry(data.uid) is not None)
        if holders != 1:
            multi_homed += 1
    lost_requests = sum(agent.channel.lost_requests for agent in agents)
    return {
        "scenario": "fabric-rebalance",
        "n_hosts": n_hosts,
        "n_data": n_data,
        "shards_before": shards,
        "shards_after": fabric.shards,
        "ring_vnodes": ring_vnodes,
        "split_at_s": split_at,
        "merge_at_s": merge_at,
        "run_for_s": run_for_s,
        "publishes": issued["publishes"],
        "completed_publishes": len(completed),
        "client_syncs": issued["syncs"],
        "client_errors": issued["client_errors"],
        "readback_misses": issued["readback_misses"],
        "lost_requests": lost_requests,
        "lost_pairs": audit["lost"],
        "duplicated_pairs": audit["duplicated"],
        "misplaced_pairs": audit["misplaced"],
        "scheduler_entries": scheduler.managed_count,
        "scheduler_multi_homed": multi_homed,
        "transitions": transitions,
    }


def _stats_row(stats) -> Dict[str, object]:
    return {
        "kind": stats.kind,
        "old_shards": stats.old_shards,
        "new_shards": stats.new_shards,
        "keys_moved": stats.keys_moved,
        "minimum_moves": stats.minimum_moves,
        "move_ratio": stats.move_ratio,
        "keys_recopied": dict(stats.keys_recopied),
        "dirty_rounds": stats.dirty_rounds,
        "sealed_s": stats.sealed_s,
        "duration_s": stats.finished_at - stats.started_at,
    }


def _diurnal_once(
    autoscale: bool,
    profile: DiurnalProfile,
    horizon_s: float,
    n_keys: int,
    service_hosts: int,
    max_shards: int,
    target_p99_s: float,
    ring_vnodes: int,
    operation_cost_s: float,
    seed: int,
) -> Dict[str, object]:
    """Replay the diurnal trace against one deployment; measure the SLO.

    Each arrival is one keyed client request — a catalog publish plus the
    read-back — standing for a bundle of user traffic (the per-statement
    cost is inflated accordingly), hashed over a rotating population of
    ``n_keys`` user buckets.  The fixed deployment keeps one catalog/
    scheduler shard; the autoscaled one starts identically and lets the
    :class:`SloAutoscaler` split toward ``max_shards`` when the windowed
    p99 breaches the target and merge back on the evening ebb.
    """
    env = Environment()
    topo = cluster_topology(env, n_workers=2,
                            n_service_hosts=service_hosts,
                            server_link_mbps=1000.0, node_link_mbps=1000.0)
    runtime = BitDewEnvironment(
        topo,
        engine=NetworkedSQLEngine(operation_cost_s=operation_cost_s),
        shards=1,
        service_hosts=service_hosts,
        service_replicas=1,
        ring_vnodes=ring_vnodes,
        sync_period_s=3600.0,
        heartbeat_period_s=3600.0,
        seed=seed,
    )
    fabric = runtime.fabric
    router = runtime.router
    channel = fabric.channel(ChannelKind.RMI_REMOTE)
    tracker = SloTracker(env, target_p99_s=target_p99_s,
                         window_s=6.0, poll_s=0.5)
    monitor = HotspotMonitor([channel])
    arrivals = diurnal_arrivals(profile, horizon_s)
    completed = {"count": 0, "errors": 0}

    def one_request(index: int):
        key = f"user-{index % n_keys:05d}"
        started = env.now
        try:
            yield from router.invoke(channel, "dc", "publish_pair",
                                     key, f"r{index}")
            yield from router.invoke(channel, "dc", "lookup_pair", key)
        except RpcError:
            completed["errors"] += 1
            return
        tracker.observe(env.now - started)
        completed["count"] += 1

    def arrival_driver():
        previous = 0.0
        for index, at in enumerate(arrivals):
            if at > previous:
                yield env.timeout(at - previous)
                previous = at
            env.process(one_request(index))

    env.process(arrival_driver())
    env.process(tracker.run(for_s=horizon_s + 20.0))
    scaler = None
    if autoscale:
        scaler = SloAutoscaler(
            fabric, router, tracker, monitor=monitor,
            interval_s=1.0, cooldown_s=8.0,
            min_shards=1, max_shards=max_shards)
        env.process(scaler.run(for_s=horizon_s + 10.0))
    env.run(until=env.timeout(horizon_s + 30.0))

    row: Dict[str, object] = {
        "autoscale": autoscale,
        "arrivals": len(arrivals),
        "completed": completed["count"],
        "errors": completed["errors"],
        "violation_seconds": tracker.violation_seconds,
        "worst_p99_ms": tracker.worst_p99_s * 1e3,
        "max_latency_ms": tracker.max_latency_s * 1e3,
        "final_shards": fabric.shards,
        "lost_requests": channel.lost_requests,
    }
    if scaler is not None:
        row["splits"] = scaler.splits
        row["merges"] = scaler.merges
        row["decisions"] = scaler.decision_trace()
        row["rebalances"] = [_stats_row(s)
                             for s in scaler.coordinator.history]
    return row


def _run_fabric_autoscale(
    base_rps: float = 15.0,
    peak_rps: float = 220.0,
    period_s: float = 120.0,
    horizon_s: float = 120.0,
    flash_at_s: float = 66.0,
    flash_rps: float = 120.0,
    flash_duration_s: float = 8.0,
    n_keys: int = 240,
    service_hosts: int = 4,
    max_shards: int = 4,
    target_p99_ms: float = 60.0,
    ring_vnodes: int = 64,
    operation_cost_s: float = 4e-3,
    seed: int = 9,
) -> Dict[str, object]:
    """SLO violation-seconds on one diurnal day: fixed vs autoscaled fabric.

    The compressed "day" swings between ``base_rps`` and ``peak_rps`` with
    a flash spike near the peak; the midday hump exceeds one shard's
    database capacity (≈ 1 / (2·``operation_cost_s``) requests/s), so the
    fixed single-shard deployment queues and blows through the p99 target
    for most of the afternoon.  The autoscaled run holds the same target
    by splitting live — paying the migration while serving — and merges
    back on the ebb.  ``violation_improvement_x`` is the fixed/autoscaled
    violation-seconds ratio (the ≥3× BENCH gate).
    """
    profile = DiurnalProfile(
        base_rps=base_rps, peak_rps=peak_rps, period_s=period_s,
        peak_at_frac=0.5, flash_at_s=flash_at_s, flash_rps=flash_rps,
        flash_duration_s=flash_duration_s)
    common = dict(
        profile=profile, horizon_s=horizon_s, n_keys=n_keys,
        service_hosts=service_hosts, max_shards=max_shards,
        target_p99_s=target_p99_ms / 1e3, ring_vnodes=ring_vnodes,
        operation_cost_s=operation_cost_s, seed=seed)
    fixed = _diurnal_once(autoscale=False, **common)
    autoscaled = _diurnal_once(autoscale=True, **common)
    fixed_v = fixed["violation_seconds"]
    auto_v = autoscaled["violation_seconds"]
    improvement = (fixed_v / auto_v if auto_v > 0
                   else (float("inf") if fixed_v > 0 else 1.0))
    return {
        "scenario": "fabric-autoscale",
        "base_rps": base_rps,
        "peak_rps": peak_rps,
        "period_s": period_s,
        "horizon_s": horizon_s,
        "flash_at_s": flash_at_s,
        "flash_rps": flash_rps,
        "target_p99_ms": target_p99_ms,
        "n_keys": n_keys,
        "max_shards": max_shards,
        "shard_capacity_rps": 1.0 / (2.0 * operation_cost_s),
        "fixed": fixed,
        "autoscaled": autoscaled,
        "violation_improvement_x": improvement,
    }


# Public entry points: dispatch through the scenario registry.
run_fabric_rebalance = registered_entry_point("fabric-rebalance",
                                              _run_fabric_rebalance)
run_fabric_autoscale = registered_entry_point("fabric-autoscale",
                                              _run_fabric_autoscale)
