"""Micro-benchmark harness: Table 1, Table 2 and Table 3.

* Table 1 — the testbed description (reproduced from the topology builder).
* Table 2 — data-slot creation rate (thousands of creations per second) for
  {MySQL-like, HsqlDB-like} x {with DBCP, without DBCP} x
  {local, RMI local, RMI remote}.
* Table 3 — publish rate into the Distributed Data Catalog (DHT) vs the
  centralized Data Catalog: 50 nodes each publishing 500
  (dataID, hostID) pairs; the paper reports the total time and notes the
  DDC is ~15x slower.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.data import Data
from repro.experiments.entry import registered_entry_point
from repro.dht.chord import ChordRing
from repro.dht.ddc import DistributedDataCatalog
from repro.net.rpc import ChannelKind, RpcChannel, RpcEndpoint
from repro.net.topology import GRID5000_CLUSTERS
from repro.services.data_catalog import DataCatalogService
from repro.sim.kernel import Environment
from repro.storage.database import (
    ConnectionPool,
    Database,
    EmbeddedSQLEngine,
    NetworkedSQLEngine,
)
from repro.storage.persistence import new_auid

__all__ = ["run_table2", "run_table2_cell", "run_table3", "table1_testbed"]


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def _table1_testbed() -> List[Dict[str, object]]:
    """The hardware configuration rows of Table 1 (from the topology model)."""
    rows = []
    for name, spec in GRID5000_CLUSTERS.items():
        rows.append({
            "cluster": name,
            "cluster_type": spec["cluster_type"],
            "location": spec["location"],
            "cpus": spec["cpus"],
            "cpu_type": spec["cpu_type"],
            "frequency_ghz": spec["frequency_ghz"],
            "memory_mb": spec["memory_mb"],
        })
    return rows


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

_ENGINES = {
    "mysql": NetworkedSQLEngine,
    "hsqldb": EmbeddedSQLEngine,
}

_CHANNELS = {
    "local": ChannelKind.LOCAL,
    "rmi local": ChannelKind.RMI_LOCAL,
    "rmi remote": ChannelKind.RMI_REMOTE,
}


def _run_table2_cell(engine: str = "hsqldb", pooled: bool = True,
                    channel: str = "rmi remote",
                    n_creations: int = 2000) -> float:
    """One cell of Table 2: thousands of data-slot creations per second.

    A client loop continuously creates data slots against the Data Catalog
    service; the result is the sustained creation rate.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected {sorted(_ENGINES)}")
    if channel not in _CHANNELS:
        raise ValueError(f"unknown channel {channel!r}; expected {sorted(_CHANNELS)}")
    if n_creations <= 0:
        raise ValueError("n_creations must be positive")

    env = Environment()
    engine_profile = _ENGINES[engine]()
    pool = ConnectionPool(env, engine_profile, size=8) if pooled else None
    database = Database(env, engine=engine_profile, pool=pool, copy_objects=False)
    catalog = DataCatalogService(database)
    endpoint = RpcEndpoint(catalog, name="DataCatalog")
    rpc = RpcChannel(env, _CHANNELS[channel])

    def client():
        for index in range(n_creations):
            data = Data(name=f"slot-{index:06d}", size_mb=0.001,
                        checksum=f"{index:032x}")
            yield from rpc.invoke(endpoint, "register_data", data)

    start = env.now
    process = env.process(client())
    env.run(until=process)
    elapsed = env.now - start
    if elapsed <= 0:
        return float("inf")
    return (n_creations / elapsed) / 1000.0


def _run_table2(n_creations: int = 2000) -> Dict[str, Dict[str, float]]:
    """All 12 cells of Table 2, keyed by channel then ``engine/pooling``."""
    table: Dict[str, Dict[str, float]] = {}
    for channel in _CHANNELS:
        row: Dict[str, float] = {}
        for engine in _ENGINES:
            for pooled in (False, True):
                label = f"{engine}/{'dbcp' if pooled else 'no-dbcp'}"
                row[label] = _run_table2_cell(engine=engine, pooled=pooled,
                                             channel=channel,
                                             n_creations=n_creations)
        table[channel] = row
    return table


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

def _run_table3(n_nodes: int = 50, pairs_per_node: int = 500,
               engine: str = "hsqldb") -> Dict[str, float]:
    """Publish (dataID, hostID) pairs into the DDC (DHT) and into the DC.

    Returns the total elapsed time for each catalog, the aggregate publish
    rates and the slowdown ratio of the DDC relative to the DC.
    """
    if n_nodes <= 0 or pairs_per_node <= 0:
        raise ValueError("n_nodes and pairs_per_node must be positive")
    total_pairs = n_nodes * pairs_per_node

    # ---------------- DDC (DHT) ----------------
    env = Environment()
    ddc = DistributedDataCatalog(env, ChordRing(replication=2))
    node_names = [f"ddc-node{i:03d}" for i in range(n_nodes)]
    for name in node_names:
        ddc.join(name)

    def publisher(name: str, index: int):
        for pair in range(pairs_per_node):
            data_id = new_auid(f"{name}-{pair}")
            yield from ddc.publish(data_id, name, origin=name)

    processes = [env.process(publisher(name, i))
                 for i, name in enumerate(node_names)]
    env.run(until=env.all_of(processes))
    ddc_total_s = env.now

    # ---------------- DC (centralized) ----------------
    env2 = Environment()
    engine_profile = _ENGINES[engine]()
    database = Database(env2, engine=engine_profile,
                        pool=ConnectionPool(env2, engine_profile, size=8),
                        copy_objects=False)
    catalog = DataCatalogService(database)
    endpoint = RpcEndpoint(catalog, name="DataCatalog")

    def dc_publisher(name: str):
        rpc = RpcChannel(env2, ChannelKind.RMI_REMOTE)
        for pair in range(pairs_per_node):
            data_id = new_auid(f"{name}-{pair}")
            yield from rpc.invoke(endpoint, "publish_pair", data_id, name)

    processes2 = [env2.process(dc_publisher(name)) for name in node_names]
    env2.run(until=env2.all_of(processes2))
    dc_total_s = env2.now

    return {
        "n_nodes": float(n_nodes),
        "pairs_per_node": float(pairs_per_node),
        "total_pairs": float(total_pairs),
        "ddc_total_s": ddc_total_s,
        "dc_total_s": dc_total_s,
        "ddc_pairs_per_s": total_pairs / ddc_total_s if ddc_total_s > 0 else float("inf"),
        "dc_pairs_per_s": total_pairs / dc_total_s if dc_total_s > 0 else float("inf"),
        "slowdown_ratio": ddc_total_s / dc_total_s if dc_total_s > 0 else float("inf"),
    }


# Public entry points: dispatch through the scenario registry.
table1_testbed = registered_entry_point("table1", _table1_testbed)
run_table2_cell = registered_entry_point("table2-cell", _run_table2_cell)
run_table2 = registered_entry_point("table2", _run_table2)
run_table3 = registered_entry_point("table3", _run_table3)
