"""Federation benchmarks: cross-domain flash crowd, partition healing,
sovereignty-constrained placement.

Three scenarios over :mod:`repro.federation` — multiple sovereign BitDew
domains peered across shared-capacity WAN links:

* :func:`run_federation_flash_crowd` — every domain's workers want one
  hot datum published in a single home domain, arriving as a
  golden-ratio-staggered flash crowd.  With federation on, scheduled
  replication lands **one** WAN copy per peer domain and the crowd is
  then served from each domain's local repository over the LAN; the
  baseline (federation off) forces every remote worker through the home
  gateway individually, serialising on the WAN pipes.  ``throughput_x``
  is the makespan ratio — the federated BENCH point.

* :func:`run_federation_partition_heal` — the WAN link is severed in the
  middle of a scheduled replication run and healed later.  The replicator
  keeps replanning; idempotent imports (offer → ``"have"``) make the
  catch-up exactly-once.  Reports the failure/catch-up timeline plus the
  zero-lost / zero-duplicated / zero-leaked verdicts.

* :func:`run_federation_sovereignty` — mixed ``public``/``unlisted``/
  ``private`` data under an ``allowlist`` trust policy.  Proves placement
  follows policy: public data replicates to admitted peers only,
  unlisted data is fetchable by reference but never listed or exported,
  private data never leaves home.

All three run in virtual time only — their ``run --out`` JSON is
byte-identical across invocations (the CI ``federation-smoke`` job
asserts it for the flash crowd).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.attributes import Attribute
from repro.experiments.entry import registered_entry_point
from repro.federation.deployment import DomainSpec, Federation
from repro.net.rpc import RpcError
from repro.storage.filesystem import FileContent
from repro.workloads.generator import flash_crowd_offsets

__all__ = [
    "run_federation_flash_crowd",
    "run_federation_partition_heal",
    "run_federation_sovereignty",
]


def _domain_names(n_domains: int) -> List[str]:
    return [f"dom{chr(ord('a') + i)}" for i in range(n_domains)]


def _build_federation(n_domains: int, workers_per_domain: int,
                      wan_latency_s: float, wan_bandwidth_mbps: float,
                      seed: int) -> Federation:
    specs = [
        DomainSpec(name, n_workers=workers_per_domain,
                   # The crowd is driven explicitly; park the periodic loops.
                   sync_period_s=3600.0, heartbeat_period_s=3600.0,
                   seed=seed + index)
        for index, name in enumerate(_domain_names(n_domains))
    ]
    federation = Federation(specs, wan_latency_s=wan_latency_s,
                            wan_bandwidth_mbps=wan_bandwidth_mbps)
    federation.peer_all()
    return federation


# ---------------------------------------------------------------------------
# federation-flash-crowd
# ---------------------------------------------------------------------------

def _crowd_once(federation: Federation, size_mb: float,
                arrival_spread_s: float, retry_s: float,
                federated: bool) -> Dict[str, object]:
    """Publish one hot datum in the first domain, unleash the crowd."""
    env = federation.env
    names = federation.domain_names()
    home_name = names[0]
    home = federation.domain(home_name)
    content = FileContent.from_seed("hot-datum", size_mb)
    attribute = Attribute(name="hot", replica=-1, protocol="http",
                          visibility="public")
    data = home.publish(content, attribute)

    agents = []
    for name in names:
        domain = federation.domain(name)
        for agent in domain.runtime.attach_all(auto_sync=False):
            agents.append((name, agent))
    offsets = flash_crowd_offsets(len(agents), arrival_spread_s)
    start = env.now
    done_at: Dict[str, float] = {}

    def local_worker(agent, offset: float):
        """Pull through the local domain's scheduler until the bytes land."""
        yield env.timeout(offset)
        while not agent.has_content(data.uid):
            yield from agent.sync_once()
            if agent.has_content(data.uid):
                break
            yield env.timeout(retry_s)
        done_at[agent.host.name] = env.now - start

    def wan_worker(domain, agent, offset: float):
        """No federation: fetch through the home gateway over the WAN."""
        yield env.timeout(offset)
        reply = None
        while reply is None:
            try:
                reply = yield from domain.gateway.fetch_remote(
                    home_name, data.uid, size_mb=size_mb)
            except RpcError:
                yield env.timeout(retry_s)
        done_at[agent.host.name] = env.now - start

    if federated:
        replicator = home.start_replicator(period_s=retry_s)
        env.process(replicator.run_until_drained())
    procs = []
    for (name, agent), offset in zip(agents, offsets):
        if federated or name == home_name:
            procs.append(env.process(local_worker(agent, offset)))
        else:
            procs.append(env.process(
                wan_worker(federation.domain(name), agent, offset)))
    env.run(env.all_of(procs))

    wan_kb = sum(link.kb_transferred for link in federation.links.values())
    makespan = max(done_at.values()) if done_at else 0.0
    out: Dict[str, object] = {
        "makespan_s": makespan,
        "completed_workers": len(done_at),
        "wan_kb": wan_kb,
        "leaks": len(federation.private_leaks()),
    }
    if federated:
        out["replication"] = home.replicator.stats()
    gateways = {}
    for name in names:
        gateways[name] = federation.domain(name).gateway.stats()
    out["gateways"] = gateways
    return out


def _run_federation_flash_crowd(
    n_domains: int = 3,
    workers_per_domain: int = 10,
    size_mb: float = 5.0,
    wan_latency_s: float = 0.08,
    wan_bandwidth_mbps: float = 8.0,
    arrival_spread_s: float = 0.5,
    retry_s: float = 0.25,
    seed: int = 11,
) -> Dict[str, object]:
    """Cross-domain flash crowd, federation on vs single-domain baseline."""
    if n_domains < 2:
        raise ValueError("the flash crowd needs at least two domains")
    federated = _crowd_once(
        _build_federation(n_domains, workers_per_domain, wan_latency_s,
                          wan_bandwidth_mbps, seed),
        size_mb, arrival_spread_s, retry_s, federated=True)
    baseline = _crowd_once(
        _build_federation(n_domains, workers_per_domain, wan_latency_s,
                          wan_bandwidth_mbps, seed),
        size_mb, arrival_spread_s, retry_s, federated=False)
    fed_makespan = federated["makespan_s"]
    throughput_x = (baseline["makespan_s"] / fed_makespan
                    if fed_makespan > 0 else None)
    return {
        "n_domains": n_domains,
        "workers_per_domain": workers_per_domain,
        "n_workers": n_domains * workers_per_domain,
        "size_mb": size_mb,
        "wan_latency_s": wan_latency_s,
        "wan_bandwidth_mbps": wan_bandwidth_mbps,
        "federated": federated,
        "baseline": baseline,
        "throughput_x": throughput_x,
        "wan_kb_saved": (baseline["wan_kb"] or 0.0) - (federated["wan_kb"]
                                                       or 0.0),
    }


# ---------------------------------------------------------------------------
# federation-partition-heal
# ---------------------------------------------------------------------------

def _run_federation_partition_heal(
    n_data: int = 12,
    n_private: int = 3,
    size_mb: float = 1.5,
    replica: int = 2,
    wan_latency_s: float = 0.08,
    wan_bandwidth_mbps: float = 6.0,
    partition_at_s: float = 4.0,
    heal_after_s: float = 4.0,
    period_s: float = 0.5,
    horizon_s: float = 120.0,
    seed: int = 7,
) -> Dict[str, object]:
    """Sever the WAN mid-replication, heal it, measure the exact-once catch-up."""
    federation = Federation(
        [DomainSpec("alpha", n_workers=0, seed=seed),
         DomainSpec("beta", n_workers=0, seed=seed + 1)],
        wan_latency_s=wan_latency_s, wan_bandwidth_mbps=wan_bandwidth_mbps)
    federation.peer("alpha", "beta")
    env = federation.env
    alpha = federation.domain("alpha")
    beta = federation.domain("beta")

    published = []
    for i in range(n_data):
        content = FileContent.from_seed(f"wan-{i:04d}", size_mb)
        published.append(alpha.publish(
            content, Attribute(name=f"wan-{i:04d}", replica=replica,
                               protocol="http", visibility="public")))
    for i in range(n_private):
        content = FileContent.from_seed(f"secret-{i:04d}", size_mb)
        alpha.publish(content, Attribute(name=f"secret-{i:04d}",
                                         replica=replica, protocol="http",
                                         visibility="private"))

    replicator = alpha.start_replicator(period_s=period_s)
    env.process(replicator.run())

    exported_before = {}
    heal_at_s = partition_at_s + heal_after_s

    def fault_script():
        yield env.timeout(partition_at_s)
        exported_before["committed"] = sum(
            len(peers) for peers in replicator.exported.values())
        # Copies can land on beta before the home side commits them; the
        # receiving gateway's counter is the ground truth at this instant.
        exported_before["imported"] = beta.gateway.imports_accepted
        federation.partition("alpha", "beta")
        yield env.timeout(heal_after_s)
        federation.heal("alpha", "beta")

    env.process(fault_script())

    completed_at: Optional[float] = None
    while env.now < horizon_s:
        env.run(until=env.now + period_s)
        holders = sum(len(peers) for peers in replicator.exported.values())
        if holders >= n_data and completed_at is None:
            completed_at = env.now
            break
    replicator.stop()

    link = federation.link("alpha", "beta")
    lost = [data.uid for data in published if not beta.knows(data.uid)]
    stats = replicator.stats()
    return {
        "n_data": n_data,
        "n_private": n_private,
        "replica": replica,
        "partition_at_s": partition_at_s,
        "heal_at_s": heal_at_s,
        "committed_before_partition": exported_before.get("committed", 0),
        "imported_before_partition": exported_before.get("imported", 0),
        "rounds": stats["rounds"],
        "copies_failed": stats["copies_failed"],
        "offers_have": stats["offers_have"],
        "exports_blocked": stats["exports_blocked"],
        "completed_at_s": completed_at,
        "catch_up_s": (None if completed_at is None
                       else completed_at - heal_at_s),
        "lost": len(lost),
        "duplicated": beta.gateway.imports_duplicate,
        "imports_accepted": beta.gateway.imports_accepted,
        "leaks": len(federation.private_leaks()),
        "link_partitions": link.partitions,
        "link_events": [list(event) for event in link.events],
    }


# ---------------------------------------------------------------------------
# federation-sovereignty
# ---------------------------------------------------------------------------

def _run_federation_sovereignty(
    n_public: int = 6,
    n_unlisted: int = 4,
    n_private: int = 4,
    replica: int = 2,
    size_mb: float = 1.0,
    wan_latency_s: float = 0.05,
    wan_bandwidth_mbps: float = 10.0,
    seed: int = 5,
) -> Dict[str, object]:
    """Sovereignty-constrained placement under an allowlist trust policy."""
    federation = Federation(
        [DomainSpec("alpha", n_workers=0, trust="allowlist",
                    trust_peers=("beta",), seed=seed),
         DomainSpec("beta", n_workers=0, seed=seed + 1),
         DomainSpec("gamma", n_workers=0, seed=seed + 2)],
        wan_latency_s=wan_latency_s, wan_bandwidth_mbps=wan_bandwidth_mbps)
    federation.peer_all()
    env = federation.env
    alpha = federation.domain("alpha")
    beta = federation.domain("beta")
    gamma = federation.domain("gamma")

    groups = (("public", n_public), ("unlisted", n_unlisted),
              ("private", n_private))
    by_visibility: Dict[str, list] = {}
    for visibility, count in groups:
        for i in range(count):
            content = FileContent.from_seed(f"{visibility}-{i:04d}", size_mb)
            data = alpha.publish(content, Attribute(
                name=f"{visibility}-{i:04d}", replica=replica,
                protocol="http", visibility=visibility))
            by_visibility.setdefault(visibility, []).append(data)

    replicator = alpha.start_replicator(period_s=0.5)
    env.run(env.process(replicator.run_until_drained()))

    searches: Dict[str, int] = {}
    fetches: Dict[str, bool] = {}

    def probe(caller, key: str):
        rows, _unreachable = yield from caller.gateway.federated_search()
        searches[key] = len(rows)
        if n_unlisted:
            uid = by_visibility["unlisted"][0].uid
            reply = yield from caller.gateway.fetch_remote("alpha", uid,
                                                           size_mb=size_mb)
            fetches[f"{key}_unlisted"] = reply is not None
        if n_private:
            uid = by_visibility["private"][0].uid
            reply = yield from caller.gateway.fetch_remote("alpha", uid,
                                                           size_mb=size_mb)
            fetches[f"{key}_private"] = reply is not None

    env.run(env.process(probe(beta, "beta")))
    env.run(env.process(probe(gamma, "gamma")))

    def holdings(domain) -> Dict[str, int]:
        return {visibility: sum(1 for data in datums
                                if domain.knows(data.uid))
                for visibility, datums in sorted(by_visibility.items())}

    stats = replicator.stats()
    return {
        "n_public": n_public,
        "n_unlisted": n_unlisted,
        "n_private": n_private,
        "beta_search_rows": searches.get("beta", 0),
        "gamma_search_rows": searches.get("gamma", 0),
        "beta_fetch_unlisted_ok": fetches.get("beta_unlisted"),
        "beta_fetch_private_ok": fetches.get("beta_private"),
        "gamma_fetch_unlisted_ok": fetches.get("gamma_unlisted"),
        "gamma_fetch_private_ok": fetches.get("gamma_private"),
        "beta_holdings": holdings(beta),
        "gamma_holdings": holdings(gamma),
        "exports_blocked": stats["exports_blocked"],
        "exported_copies": stats["exported_copies"],
        "alpha_gateway": alpha.gateway.stats(),
        "leaks": len(federation.private_leaks()),
    }


# Public entry points: dispatch through the scenario registry.
run_federation_flash_crowd = registered_entry_point(
    "federation-flash-crowd", _run_federation_flash_crowd)
run_federation_partition_heal = registered_entry_point(
    "federation-partition-heal", _run_federation_partition_heal)
run_federation_sovereignty = registered_entry_point(
    "federation-sovereignty", _run_federation_sovereignty)
