"""BLAST application model (paper §5).

The paper's master/worker application runs NCBI BLAST (``blastn``): every
task compares one DNA Sequence against a shared Genebase.  Three data sets
are involved (Listing 3):

* the **Application** binary — 4.45 MB, replicated to every node
  (``replication = -1``), distributed with BitTorrent because it is highly
  shared;
* the **Genebase** — a compressed 2.68 GB archive, distributed with
  BitTorrent, scheduled by *affinity* to the Sequences so that only nodes
  actually computing download it, lifetime relative to the Collector;
* the **Sequences** — small per-task text files, fault tolerant, distributed
  with HTTP, lifetime relative to the Collector;
* the **Results** — small output files whose affinity points at the
  Collector pinned on the master.

Real BLAST is unavailable offline; the compute side is a calibrated model:
decompressing the Genebase and searching one sequence take a fixed number of
*reference seconds* scaled by each host's CPU factor (Table 1 hardware).
The defaults are calibrated so the Figure 5/6 shapes (transfer-dominated
makespan, ~10x transfer-time gain for BitTorrent at 400 nodes) hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.master_worker import (
    MasterWorkerApplication,
    SharedInput,
    TaskSpec,
)
from repro.core.runtime import BitDewEnvironment
from repro.net.host import Host
from repro.sim.rng import RandomStreams

__all__ = ["BlastParameters", "build_blast_application"]


@dataclass(frozen=True)
class BlastParameters:
    """Sizes and calibrated costs of the BLAST workload (paper §5).

    Defaults mirror the paper's Listing 3 data sets (4.45 MB Application,
    2.68 GB compressed Genebase, small Sequences/Results) and calibrate the
    compute model so the Figure 5/6 shapes hold.
    """

    #: NCBI BLAST binary size (paper: 4.45 MB)
    application_mb: float = 4.45
    #: compressed Genebase archive size (paper: 2.68 GB)
    genebase_mb: float = 2744.0
    #: one DNA query sequence (small text file)
    sequence_mb: float = 0.01
    #: one result file
    result_mb: float = 0.5
    #: reference seconds to unzip the Genebase on a 2.0 GHz Opteron core
    unzip_reference_s: float = 150.0
    #: reference seconds for one blastn query against the full Genebase
    execution_reference_s: float = 450.0
    #: relative variability of per-task execution time
    execution_cv: float = 0.10


def build_blast_application(
    runtime: BitDewEnvironment,
    master_host: Host,
    n_tasks: int,
    transfer_protocol: str = "bittorrent",
    parameters: Optional[BlastParameters] = None,
    task_replica: int = 1,
    rng: Optional[RandomStreams] = None,
) -> MasterWorkerApplication:
    """Assemble the BLAST master/worker application on an existing runtime.

    ``transfer_protocol`` selects how the shared files (Application binary
    and Genebase) are distributed — the Figure 5 experiment compares ``ftp``
    against ``bittorrent``; Sequences and Results always travel over HTTP.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    params = parameters if parameters is not None else BlastParameters()
    rng = rng if rng is not None else RandomStreams(29)

    shared_inputs = [
        SharedInput(name="blast-application", size_mb=params.application_mb,
                    replica=-1, affinity_to_tasks=False),
        SharedInput(name="genebase", size_mb=params.genebase_mb,
                    affinity_to_tasks=True, compressed=True,
                    unzip_reference_s=params.unzip_reference_s),
    ]

    tasks: List[TaskSpec] = []
    for i in range(n_tasks):
        compute = rng.normal_clipped(
            f"blast-exec-{i}", params.execution_reference_s,
            params.execution_reference_s * params.execution_cv,
            minimum=params.execution_reference_s * 0.5)
        tasks.append(TaskSpec(
            task_id=i,
            input_name=f"sequence-{i:05d}.fasta",
            input_size_mb=params.sequence_mb,
            reference_compute_s=compute,
            result_size_mb=params.result_mb,
        ))

    return MasterWorkerApplication(
        runtime=runtime,
        master_host=master_host,
        shared_inputs=shared_inputs,
        tasks=tasks,
        shared_protocol=transfer_protocol,
        task_protocol="http",
        result_protocol="http",
        task_replica=task_replica,
        task_fault_tolerance=True,
        rng=rng,
        task_attribute_name="Sequence",
        result_attribute_name="Result",
        collector_name="Collector",
    )
