"""Applications built on the BitDew API.

* :mod:`repro.apps.master_worker` — the data-driven master/worker framework
  of the paper's Section 5: tasks are materialised as data, workers react to
  data-copy events, results flow back to the master through affinity to a
  pinned Collector datum.
* :mod:`repro.apps.blast` — the BLAST bioinformatics application model
  (Application binary, 2.68 GB Genebase, Sequences, Results) with the
  paper's file sizes and a calibrated compute/unzip model; this drives the
  Figure 5 and Figure 6 experiments.
* :mod:`repro.apps.updater` — the "Updater" network file-update toy example
  of Listings 1 and 2, exercising the event-driven programming style.
* :mod:`repro.apps.mapreduce` — distributed MapReduce on BitDew, the
  programming abstraction announced as future work in the paper's conclusion.
* :mod:`repro.apps.checkpointing` — replicated, signature-indexed checkpoints
  with DHT-based sabotage tolerance (the long-running-application scenario of
  §2.2).
"""

from repro.apps.master_worker import (
    MasterWorkerApplication,
    SharedInput,
    TaskRecord,
    TaskSpec,
)
from repro.apps.blast import BlastParameters, build_blast_application
from repro.apps.checkpointing import CheckpointManager, SignatureVerdict
from repro.apps.mapreduce import MapReduceJob, MapReduceResult
from repro.apps.updater import UpdaterApplication

__all__ = [
    "BlastParameters",
    "CheckpointManager",
    "MapReduceJob",
    "MapReduceResult",
    "MasterWorkerApplication",
    "SharedInput",
    "SignatureVerdict",
    "TaskRecord",
    "TaskSpec",
    "UpdaterApplication",
    "build_blast_application",
]
