"""Checkpoint management for long-running applications (paper §2.2).

The paper motivates BitDew with long-running applications on volatile nodes:
"to achieve application execution, it requires local or remote checkpoints to
avoid losing the intermediate computational state when a failure occurs", and
notes that "indexing data with their checksum as is commonly done by DHT and
P2P software permits basic sabotage tolerance even without retrieving the
data" (comparing checkpoint signatures across replicated executions, as
proposed by Kondo et al.).

:class:`CheckpointManager` packages that pattern on top of the BitDew API:

* ``store`` — put a checkpoint image in the data space, schedule it with a
  replica count and fault tolerance so it survives host crashes, and publish
  its MD5 signature in the DHT under ``(application, sequence number)``;
* ``latest`` / ``restore`` — locate and fetch the most recent checkpoint;
* ``verify`` — compare a locally computed image signature against the
  signatures published by the other replicas of the same execution; a
  diverging signature flags a corrupted or sabotaged execution without ever
  moving the checkpoint bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.exceptions import DataNotFoundError
from repro.core.runtime import HostAgent
from repro.storage.filesystem import FileContent

__all__ = ["CheckpointManager", "CheckpointRecord", "SignatureVerdict"]


@dataclass(frozen=True)
class CheckpointRecord:
    """One stored checkpoint."""

    application: str
    sequence: int
    data: Data
    signature: str
    stored_at: float


@dataclass(frozen=True)
class SignatureVerdict:
    """Result of a sabotage-tolerance check for one checkpoint signature."""

    application: str
    sequence: int
    signature: str
    matching: int
    diverging: int

    @property
    def accepted(self) -> bool:
        """Majority agreement among published signatures (ties accept)."""
        return self.matching >= self.diverging


class CheckpointManager:
    """Replicated, signature-indexed checkpoints for one application run.

    The §2.2 long-running-application pattern: checkpoint images ride the
    fault-tolerant replication of the Data Scheduler, while their checksums
    are published in the DHT for sabotage detection without moving bytes.
    """

    def __init__(self, agent: HostAgent, application: str,
                 replica: int = 2, protocol: str = "http",
                 lifetime_s: Optional[float] = None):
        if replica == 0 or replica < -1:
            raise ValueError("replica must be a positive count or -1")
        self.agent = agent
        self.env = agent.env
        self.application = application
        self.replica = replica
        self.protocol = protocol
        self.lifetime_s = lifetime_s
        self.records: List[CheckpointRecord] = []

    # ------------------------------------------------------------------ naming
    def checkpoint_name(self, sequence: int) -> str:
        return f"ckpt-{self.application}-{sequence:06d}"

    def _signature_key(self, sequence: int) -> str:
        return f"ckpt-sig:{self.application}:{sequence}"

    def _attribute(self, sequence: int) -> Attribute:
        return Attribute(
            name=f"ckpt-{self.application}", replica=self.replica,
            fault_tolerance=True, protocol=self.protocol,
            absolute_lifetime=self.lifetime_s,
        )

    # ------------------------------------------------------------------ store / restore
    def store(self, sequence: int, image: FileContent):
        """Generator: store one checkpoint image and publish its signature."""
        if sequence < 0:
            raise ValueError("sequence must be non-negative")
        name = self.checkpoint_name(sequence)
        data = yield from self.agent.bitdew.create_data(name, content=image)
        yield from self.agent.bitdew.put(data, image, protocol=self.protocol)
        yield from self.agent.active_data.schedule(data, self._attribute(sequence))
        # Publish the signature in the DHT: (application, sequence) ->
        # (reporting host, MD5).  The host name keeps one vote per replica
        # even when several replicas computed identical (correct) images.
        yield from self.agent.bitdew.publish(
            self._signature_key(sequence),
            (self.agent.host.name, image.checksum))
        record = CheckpointRecord(application=self.application, sequence=sequence,
                                  data=data, signature=image.checksum,
                                  stored_at=self.env.now)
        self.records.append(record)
        return record

    def latest(self):
        """Generator: the most recent checkpoint registered in the catalog."""
        best: Optional[Data] = None
        best_sequence = -1
        sequence = 0
        # Walk the catalog through the public search API (names are indexed).
        while True:
            name = self.checkpoint_name(sequence)
            try:
                data = yield from self.agent.bitdew.search_data(name)
            except DataNotFoundError:
                break
            best, best_sequence = data, sequence
            sequence += 1
        if best is None:
            raise DataNotFoundError(
                f"no checkpoint stored for application {self.application!r}")
        return best_sequence, best

    def restore(self, sequence: Optional[int] = None):
        """Generator: fetch a checkpoint image (the latest one by default)."""
        if sequence is None:
            sequence, data = yield from self.latest()
        else:
            data = yield from self.agent.bitdew.search_data(
                self.checkpoint_name(sequence))
        content = yield from self.agent.bitdew.get(data, protocol=self.protocol)
        return sequence, content

    # ------------------------------------------------------------------ sabotage tolerance
    def publish_signature(self, sequence: int, signature: str):
        """Generator: publish a replica execution's checkpoint signature."""
        result = yield from self.agent.bitdew.publish(
            self._signature_key(sequence),
            (self.agent.host.name, signature))
        return result

    def verify(self, sequence: int, image: FileContent):
        """Generator: compare *image*'s signature against the published ones.

        Each published entry is one replica's vote ``(host, signature)``; the
        verdict counts how many agree with the locally computed signature.
        """
        published = yield from self.agent.bitdew.search(
            self._signature_key(sequence))
        signatures = [entry[1] if isinstance(entry, tuple) else entry
                      for entry in published]
        matching = sum(1 for sig in signatures if sig == image.checksum)
        diverging = len(signatures) - matching
        return SignatureVerdict(application=self.application, sequence=sequence,
                                signature=image.checksum, matching=matching,
                                diverging=diverging)
