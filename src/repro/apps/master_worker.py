"""Data-driven master/worker framework (paper §5).

"In a classical MW application, tasks are created by the master and scheduled
to the workers.  [...] In contrast, the data-driven approach followed by
BitDew implies that data are first scheduled to hosts.  The programmer does
not have to code explicitly the data movement from host to host, neither to
manage fault tolerance.  Programming the master or the worker consists in
operating on data and attributes and reacting on data copy."

The framework materialises the paper's pattern:

* **shared inputs** (the Application binary, the Genebase archive) are put
  into the data space and scheduled either to every node (``replica = -1``)
  or by affinity to the task inputs;
* each **task** is a small input datum (a Sequence) scheduled with the task
  attribute (fault-tolerant, small replica count, light protocol);
* every **worker** installs a data-copy handler; when a task input lands in
  its cache and the shared inputs are present, it runs the computation and
  publishes a **result** datum whose affinity points at the master's pinned
  **Collector**, so results flow back automatically;
* deleting the Collector at the end obsoletes every datum whose lifetime
  references it (the clean-up idiom of §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.events import ActiveDataEventHandler
from repro.core.exceptions import BitDewError
from repro.core.runtime import BitDewEnvironment, HostAgent
from repro.net.host import Host
from repro.sim.rng import RandomStreams
from repro.storage.filesystem import FileContent

__all__ = ["MasterWorkerApplication", "SharedInput", "TaskRecord", "TaskSpec"]


@dataclass(frozen=True)
class SharedInput:
    """A large input shared by all (or many) tasks."""

    name: str
    size_mb: float
    #: replicate to every node (-1) or rely on affinity to the task inputs
    replica: int = -1
    #: schedule by affinity to the task attribute instead of plain replication
    affinity_to_tasks: bool = False
    compressed: bool = False
    #: reference seconds to decompress on the reference CPU (cpu_factor 1.0)
    unzip_reference_s: float = 0.0


@dataclass(frozen=True)
class TaskSpec:
    """One independent task: a small input datum plus a compute cost."""

    task_id: int
    input_name: str
    input_size_mb: float
    reference_compute_s: float
    result_size_mb: float


@dataclass
class TaskRecord:
    """Timing breakdown of one executed task (feeds Figures 5 and 6)."""

    task_id: int
    host_name: str
    cluster: str
    started_at: float
    shared_wait_s: float = 0.0
    transfer_s: float = 0.0
    unzip_s: float = 0.0
    execution_s: float = 0.0
    upload_s: float = 0.0
    completed_at: Optional[float] = None
    result_uid: Optional[str] = None


class _WorkerHandler(ActiveDataEventHandler):
    """Reacts to task-input copies on a worker and launches the execution."""

    def __init__(self, app: "MasterWorkerApplication", agent: HostAgent):
        self.app = app
        self.agent = agent

    def on_data_copy_event(self, data: Data, attribute: Attribute) -> None:
        if attribute.name != self.app.task_attribute_name:
            return
        task = self.app._tasks_by_input_uid.get(data.uid)
        key = (data.uid, self.agent.host.name)
        if task is None or key in self.app._started_inputs:
            return
        self.app._started_inputs.add(key)
        self.agent.env.process(self.app._execute(self.agent, task, data))


class _CollectorHandler(ActiveDataEventHandler):
    """Counts the results landing on the master (affinity to the Collector)."""

    def __init__(self, app: "MasterWorkerApplication"):
        self.app = app

    def on_data_copy_event(self, data: Data, attribute: Attribute) -> None:
        if attribute.name == self.app.result_attribute_name:
            self.app._collected_results[data.uid] = self.app.runtime.env.now


class MasterWorkerApplication:
    """A master/worker application expressed purely through data attributes.

    The paper's §5 pattern verbatim: tasks are data scheduled to hosts,
    workers react to data-copy events, results flow back through affinity
    to the master's pinned Collector, and deleting the Collector obsoletes
    every dependent datum (the clean-up idiom closing §5).
    """

    def __init__(
        self,
        runtime: BitDewEnvironment,
        master_host: Host,
        shared_inputs: Sequence[SharedInput],
        tasks: Sequence[TaskSpec],
        shared_protocol: str = "bittorrent",
        task_protocol: str = "http",
        result_protocol: str = "http",
        task_replica: int = 1,
        task_fault_tolerance: bool = True,
        rng: Optional[RandomStreams] = None,
        task_attribute_name: str = "Sequence",
        result_attribute_name: str = "Result",
        collector_name: str = "Collector",
        master_is_reservoir: bool = False,
    ):
        self.runtime = runtime
        # The master is a *client* host: it never receives task inputs through
        # replica placement, only results through affinity to its Collector.
        # It asks the scheduler for large batches so that collecting many small
        # results is not throttled by MaxDataSchedule.
        self.master = runtime.attach(master_host, reservoir=master_is_reservoir,
                                     max_data_schedule=64)
        self.shared_inputs = list(shared_inputs)
        self.tasks = list(tasks)
        self.shared_protocol = shared_protocol
        self.task_protocol = task_protocol
        self.result_protocol = result_protocol
        self.task_replica = int(task_replica)
        self.task_fault_tolerance = bool(task_fault_tolerance)
        self.rng = rng if rng is not None else RandomStreams(23)
        self.task_attribute_name = task_attribute_name
        self.result_attribute_name = result_attribute_name
        self.collector_name = collector_name

        self.collector_data: Optional[Data] = None
        self.shared_data: Dict[str, Data] = {}
        self._tasks_by_input_uid: Dict[str, TaskSpec] = {}
        #: (task input uid, host name) pairs whose execution already started
        self._started_inputs: Set[tuple] = set()
        self.records: List[TaskRecord] = []
        self._collected_results: Dict[str, float] = {}
        self._unzipped_hosts: Set[str] = set()
        self.deploy_started_at: Optional[float] = None
        self.master.active_data.add_callback(_CollectorHandler(self))

    # ------------------------------------------------------------------ attributes
    def _collector_attribute(self) -> Attribute:
        return Attribute(name=self.collector_name, replica=1, protocol="http")

    def _shared_attribute(self, spec: SharedInput) -> Attribute:
        affinity = self.task_attribute_name if spec.affinity_to_tasks else None
        replica = 1 if spec.affinity_to_tasks else spec.replica
        return Attribute(
            name=spec.name, replica=replica, protocol=self.shared_protocol,
            affinity=affinity, relative_lifetime=self.collector_name,
        )

    def _task_attribute(self) -> Attribute:
        return Attribute(
            name=self.task_attribute_name, replica=self.task_replica,
            fault_tolerance=self.task_fault_tolerance,
            protocol=self.task_protocol,
            relative_lifetime=self.collector_name,
        )

    def _result_attribute(self) -> Attribute:
        return Attribute(
            name=self.result_attribute_name, replica=1,
            protocol=self.result_protocol, affinity=self.collector_name,
            relative_lifetime=self.collector_name,
        )

    # ------------------------------------------------------------------ master side
    def deploy(self):
        """Generator: publish the Collector and the shared inputs (master)."""
        self.deploy_started_at = self.runtime.env.now
        bitdew = self.master.bitdew
        active = self.master.active_data

        # The empty Collector datum, pinned on the master.
        collector = yield from bitdew.create_data(self.collector_name)
        self.collector_data = collector
        yield from active.pin(collector, attribute=self._collector_attribute())

        # Shared inputs: upload once, then let the scheduler distribute them.
        for spec in self.shared_inputs:
            content = FileContent.from_seed(spec.name, spec.size_mb)
            data = yield from bitdew.create_data(spec.name, content=content)
            yield from bitdew.put(data, content, protocol=self.shared_protocol)
            yield from active.schedule(data, self._shared_attribute(spec))
            self.shared_data[spec.name] = data
        return self.shared_data

    def submit_tasks(self):
        """Generator: publish one input datum per task (master)."""
        bitdew = self.master.bitdew
        active = self.master.active_data
        attribute = self._task_attribute()
        for task in self.tasks:
            content = FileContent.from_seed(task.input_name, task.input_size_mb)
            data = yield from bitdew.create_data(task.input_name, content=content)
            yield from bitdew.put(data, content, protocol=self.task_protocol)
            yield from active.schedule(data, attribute)
            self._tasks_by_input_uid[data.uid] = task
        return list(self._tasks_by_input_uid)

    def cleanup(self):
        """Generator: delete the Collector, obsoleting every dependent datum."""
        if self.collector_data is None:
            return 0
        yield from self.master.bitdew.delete_data(self.collector_data)
        return 1

    # ------------------------------------------------------------------ worker side
    def register_worker(self, agent: HostAgent) -> HostAgent:
        """Install the task-execution handler on a worker agent."""
        agent.active_data.add_callback(_WorkerHandler(self, agent))
        return agent

    def register_workers(self, hosts: Optional[Sequence[Host]] = None) -> List[HostAgent]:
        targets = hosts if hosts is not None else self.runtime.topology.worker_hosts
        agents = []
        for host in targets:
            if host is self.master.host:
                continue
            agent = self.runtime.attach(host)
            agents.append(self.register_worker(agent))
        return agents

    def _shared_ready(self, agent: HostAgent) -> bool:
        return all(agent.has_content(data.uid)
                   for data in self.shared_data.values())

    def _execute(self, agent: HostAgent, task: TaskSpec, input_data: Data):
        """Generator: one worker executing one task."""
        env = self.runtime.env
        record = TaskRecord(task_id=task.task_id, host_name=agent.host.name,
                            cluster=agent.host.cluster, started_at=env.now)
        # Wait for the shared inputs (they arrive through affinity/replication).
        wait_start = env.now
        while not self._shared_ready(agent):
            if not agent.host.online:
                return None
            yield env.timeout(1.0)
        record.shared_wait_s = env.now - wait_start

        # Transfer accounting: how long this host spent downloading shared data.
        record.transfer_s = sum(
            (agent.stats[d.uid].download_time_s or 0.0)
            for d in self.shared_data.values() if d.uid in agent.stats
        ) + (agent.stats[input_data.uid].download_time_s or 0.0
             if input_data.uid in agent.stats else 0.0)

        # Unzip compressed shared inputs (once per host).
        if agent.host.name not in self._unzipped_hosts:
            self._unzipped_hosts.add(agent.host.name)
            unzip_ref = sum(s.unzip_reference_s for s in self.shared_inputs
                            if s.compressed)
            if unzip_ref > 0:
                unzip_time = agent.host.compute_time(unzip_ref)
                record.unzip_s = unzip_time
                yield env.timeout(unzip_time)

        # The computation itself.
        execution_time = agent.host.compute_time(task.reference_compute_s)
        record.execution_s = execution_time
        yield env.timeout(execution_time)
        if not agent.host.online:
            return None

        # Publish the result with affinity to the Collector.
        upload_start = env.now
        result_content = FileContent.from_seed(
            f"result-{task.task_id:05d}-{agent.host.name}", task.result_size_mb)
        result = yield from agent.bitdew.create_data(
            f"result-{task.task_id:05d}", content=result_content)
        yield from agent.bitdew.put(result, result_content,
                                    protocol=self.result_protocol)
        yield from agent.active_data.schedule(result, self._result_attribute())
        record.upload_s = env.now - upload_start
        record.completed_at = env.now
        record.result_uid = result.uid
        self.records.append(record)
        return record

    # ------------------------------------------------------------------ progress / report
    @property
    def results_collected(self) -> int:
        return len(self._collected_results)

    @property
    def tasks_executed(self) -> int:
        return len([r for r in self.records if r.completed_at is not None])

    def all_results_collected(self) -> bool:
        return self.results_collected >= len(self.tasks)

    def run(self, deadline_s: float, poll_s: float = 5.0) -> "MasterWorkerReport":
        """Drive the simulation until every result reached the master (or the
        deadline passes) and return the aggregated report."""
        env = self.runtime.env
        deploy_proc = env.process(self._master_program())
        env.run(until=deploy_proc)
        start = self.deploy_started_at if self.deploy_started_at is not None else 0.0
        while env.now < deadline_s and not self.all_results_collected():
            env.run(until=min(deadline_s, env.now + poll_s))
        makespan = (max(self._collected_results.values()) - start
                    if self._collected_results else env.now - start)
        return MasterWorkerReport(
            makespan_s=makespan,
            tasks_submitted=len(self.tasks),
            tasks_executed=self.tasks_executed,
            results_collected=self.results_collected,
            records=list(self.records),
        )

    def _master_program(self):
        yield from self.deploy()
        yield from self.submit_tasks()


@dataclass
class MasterWorkerReport:
    """Aggregated outcome of one master/worker run."""

    makespan_s: float
    tasks_submitted: int
    tasks_executed: int
    results_collected: int
    records: List[TaskRecord] = field(default_factory=list)

    def breakdown_by_cluster(self) -> Dict[str, Dict[str, float]]:
        """Mean transfer / unzip / execution time per cluster (Figure 6)."""
        clusters: Dict[str, List[TaskRecord]] = {}
        for record in self.records:
            clusters.setdefault(record.cluster, []).append(record)
        out: Dict[str, Dict[str, float]] = {}
        for cluster, records in sorted(clusters.items()):
            n = len(records)
            out[cluster] = {
                "transfer_s": sum(r.transfer_s for r in records) / n,
                "unzip_s": sum(r.unzip_s for r in records) / n,
                "execution_s": sum(r.execution_s for r in records) / n,
                "tasks": float(n),
            }
        return out

    def mean_breakdown(self) -> Dict[str, float]:
        if not self.records:
            return {"transfer_s": 0.0, "unzip_s": 0.0, "execution_s": 0.0, "tasks": 0.0}
        n = len(self.records)
        return {
            "transfer_s": sum(r.transfer_s for r in self.records) / n,
            "unzip_s": sum(r.unzip_s for r in self.records) / n,
            "execution_s": sum(r.execution_s for r in self.records) / n,
            "tasks": float(n),
        }


__all__.append("MasterWorkerReport")
