"""Distributed MapReduce on top of BitDew (the paper's future-work item).

The conclusion of the paper announces "support for distributed MapReduce
operations" as the next programming abstraction to be built on BitDew (the
authors later published exactly that system).  This module implements the
abstraction with nothing but the collective operations of
:mod:`repro.core.collectives` and the attribute machinery:

1. the **input** is sliced and *scattered* to the mappers (affinity to
   per-host markers);
2. every mapper runs the user's ``map`` function on its slice's payload and
   produces one intermediate datum per reducer partition (hash partitioning
   on the key), *scattered* to the reducers the same way — this is the
   shuffle, expressed purely as data placement;
3. every reducer merges its partitions with the user's ``reduce`` function
   and *gathers* its output to the master's collector;
4. the master merges the reducer outputs into the final result.

Because the simulation's logical files can carry real (small) payloads, the
map and reduce functions actually execute — the default job is a word count —
while the transfer and compute costs are charged through the simulated
platform like any other BitDew application.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.attributes import Attribute
from repro.core.collectives import DataCollectives
from repro.core.data import Data
from repro.core.exceptions import BitDewError
from repro.core.events import ActiveDataEventHandler
from repro.core.runtime import BitDewEnvironment, HostAgent
from repro.net.host import Host
from repro.storage.filesystem import FileContent

__all__ = ["MapReduceJob", "MapReduceResult", "word_count_map", "word_count_reduce"]

MapFunction = Callable[[bytes], Iterable[Tuple[str, int]]]
ReduceFunction = Callable[[str, List[int]], int]


def word_count_map(payload: bytes) -> Iterable[Tuple[str, int]]:
    """The canonical example: emit (word, 1) for every word in the slice."""
    for word in payload.decode("utf-8", errors="ignore").split():
        yield word.lower(), 1


def word_count_reduce(key: str, values: List[int]) -> int:
    return sum(values)


@dataclass
class MapReduceResult:
    """Outcome of a job: the merged dictionary plus execution statistics."""

    output: Dict[str, int]
    map_tasks: int
    reduce_tasks: int
    makespan_s: float
    intermediate_data: int
    map_failures: int = 0


class _MapperHandler(ActiveDataEventHandler):
    def __init__(self, job: "MapReduceJob", agent: HostAgent):
        self.job = job
        self.agent = agent

    def on_data_copy_event(self, data: Data, attribute: Attribute) -> None:
        if data.uid in self.job._map_slices:
            self.agent.env.process(self.job._run_map(self.agent, data))


class _ReducerHandler(ActiveDataEventHandler):
    def __init__(self, job: "MapReduceJob", agent: HostAgent, partition: int):
        self.job = job
        self.agent = agent
        self.partition = partition

    def on_data_copy_event(self, data: Data, attribute: Attribute) -> None:
        if attribute.name.startswith("scatter-part-"):
            self.job._note_partition_arrival(self.partition, self.agent, data)


class MapReduceJob:
    """One MapReduce job over a BitDew runtime.

    The programming abstraction the paper's conclusion announces as future
    work, expressed with the §5 idioms only: scatter for slice placement,
    attribute affinity for the shuffle, gather through a pinned Collector.
    """

    def __init__(
        self,
        runtime: BitDewEnvironment,
        master_host: Host,
        input_payload: bytes,
        n_map_slices: int = 4,
        n_reducers: int = 2,
        map_function: MapFunction = word_count_map,
        reduce_function: ReduceFunction = word_count_reduce,
        map_cost_s_per_mb: float = 2.0,
        reduce_cost_s_per_partition: float = 0.5,
        protocol: str = "http",
        straggler_grace_s: Optional[float] = None,
    ):
        if n_map_slices <= 0 or n_reducers <= 0:
            raise ValueError("n_map_slices and n_reducers must be positive")
        if straggler_grace_s is not None and straggler_grace_s <= 0:
            raise ValueError("straggler_grace_s must be positive (or None)")
        self.runtime = runtime
        self.master = runtime.attach(master_host, reservoir=False,
                                     max_data_schedule=64)
        self.collectives = DataCollectives(self.master, protocol=protocol)
        self.input_payload = input_payload
        self.n_map_slices = n_map_slices
        self.n_reducers = n_reducers
        self.map_function = map_function
        self.reduce_function = reduce_function
        self.map_cost_s_per_mb = map_cost_s_per_mb
        self.reduce_cost_s_per_partition = reduce_cost_s_per_partition
        self.protocol = protocol
        #: with a grace period set, reducers give up waiting for map tasks
        #: that make no progress (e.g. their host crashed) and reduce what
        #: arrived; ``None`` keeps the strict wait-for-every-map behaviour.
        self.straggler_grace_s = straggler_grace_s
        self._progress_at: Optional[float] = None

        self.mappers: List[HostAgent] = []
        self.reducers: List[HostAgent] = []
        self._map_slices: Dict[str, FileContent] = {}
        self._pending_partitions: Dict[int, List[Tuple[HostAgent, Data]]] = {}
        self._reduce_started: set = set()
        self._reduce_outputs: Dict[int, Dict[str, int]] = {}
        self.maps_done = 0
        self.maps_failed = 0
        self.intermediate_count = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # ------------------------------------------------------------------ deployment
    def assign_workers(self, hosts: Optional[Sequence[Host]] = None) -> None:
        """Split the worker hosts into mappers and reducers and install handlers."""
        targets = list(hosts) if hosts is not None else [
            h for h in self.runtime.topology.worker_hosts
            if h is not self.master.host]
        if len(targets) < 2:
            raise ValueError("MapReduce needs at least two worker hosts")
        n_reduce_hosts = min(self.n_reducers, max(1, len(targets) // 2))
        reducer_hosts = targets[:n_reduce_hosts]
        mapper_hosts = targets[n_reduce_hosts:] or reducer_hosts
        self.reducers = [self.runtime.attach(h) for h in reducer_hosts]
        self.mappers = [self.runtime.attach(h) for h in mapper_hosts]
        for agent in self.mappers:
            agent.active_data.add_callback(_MapperHandler(self, agent))
        for index, agent in enumerate(self.reducers):
            agent.active_data.add_callback(_ReducerHandler(self, agent, index))

    # ------------------------------------------------------------------ master program
    def start(self):
        """Generator: slice the input, scatter to mappers, open the collector."""
        if not self.mappers:
            self.assign_workers()
        self.started_at = self.runtime.env.now
        slices = self._split_input(self.input_payload, self.n_map_slices)
        datas = []
        for piece in slices:
            data = yield from self.master.bitdew.create_data(piece.name, content=piece)
            yield from self.master.bitdew.put(data, piece, protocol=self.protocol)
            self._map_slices[data.uid] = piece
            datas.append(data)
        yield from self.collectives.open_collector("mapreduce-collector")
        plan = yield from self.collectives.scatter(datas, self.mappers,
                                                   protocol=self.protocol)
        # Reducers need routing markers too: the mappers' intermediate
        # partitions are directed to them through the same affinity idiom.
        marked_hosts = set(plan.markers)
        for reducer in self.reducers:
            if reducer.host.name in marked_hosts:
                continue
            marked_hosts.add(reducer.host.name)
            marker_name = f"scatter-marker-{reducer.host.name}"
            marker = yield from reducer.bitdew.create_data(marker_name)
            yield from reducer.active_data.pin(
                marker, attribute=Attribute(name=marker_name))
        return datas

    @staticmethod
    def _split_input(payload: bytes, n_slices: int) -> List[FileContent]:
        """Split the input near equal sizes but only at whitespace boundaries,
        so that no record (word/line) is cut across two map slices."""
        if n_slices <= 1 or len(payload) == 0:
            return [FileContent.from_bytes("mapreduce-input.slice0000", payload)]
        target = max(1, len(payload) // n_slices)
        slices: List[FileContent] = []
        start = 0
        for index in range(n_slices - 1):
            cut = min(len(payload), start + target)
            # Advance the cut to the next whitespace (or the end).
            while cut < len(payload) and not payload[cut:cut + 1].isspace():
                cut += 1
            slices.append(FileContent.from_bytes(
                f"mapreduce-input.slice{index:04d}", payload[start:cut]))
            start = cut
        slices.append(FileContent.from_bytes(
            f"mapreduce-input.slice{n_slices - 1:04d}", payload[start:]))
        return [s for s in slices]

    # ------------------------------------------------------------------ map side
    def _partition_of(self, key: str) -> int:
        # crc32, not hash(): partitioning must not depend on PYTHONHASHSEED,
        # or two runs of the same seeded scenario shuffle differently.
        return zlib.crc32(key.encode("utf-8")) % self.n_reducers

    def _run_map(self, agent: HostAgent, data: Data):
        """Generator: run the user's map function on one slice."""
        piece = agent.local_content(data.uid)
        if piece is None or piece.payload is None:
            return None
        # Simulated CPU cost proportional to the slice size.
        yield agent.env.timeout(agent.host.compute_time(
            self.map_cost_s_per_mb * max(piece.size_mb, 0.001)))
        partitions: Dict[int, Dict[str, List[int]]] = {}
        for key, value in self.map_function(piece.payload):
            partitions.setdefault(self._partition_of(key), {}).setdefault(
                key, []).append(value)
        # Publish one intermediate datum per non-empty partition, scattered to
        # the responsible reducer.  A mapper whose host crashes mid-publish
        # loses the rest of its partitions (its map task is partially lost),
        # but must not take the whole simulation down — the failure is
        # counted so the reducers' wait loop still terminates.
        try:
            yield from self._publish_partitions(agent, data, partitions)
        except BitDewError:
            self.maps_failed += 1
            self._progress_at = agent.env.now
            return None
        self.maps_done += 1
        self._progress_at = agent.env.now
        return len(partitions)

    def _publish_partitions(self, agent: HostAgent, data: Data,
                            partitions: Dict[int, Dict[str, List[int]]]):
        """Generator: upload + schedule one datum per non-empty partition."""
        for partition, pairs in partitions.items():
            reducer = self.reducers[partition % len(self.reducers)]
            payload = json.dumps(pairs, sort_keys=True).encode("utf-8")
            inter_content = FileContent.from_bytes(
                f"part-{partition:03d}-{data.name}-{agent.host.name}", payload)
            inter = yield from agent.bitdew.create_data(inter_content.name,
                                                        content=inter_content)
            yield from agent.bitdew.put(inter, inter_content, protocol=self.protocol)
            attribute = Attribute(
                name=f"scatter-part-{partition:03d}", replica=1,
                fault_tolerance=True, protocol=self.protocol,
                affinity=f"scatter-marker-{reducer.host.name}",
            )
            yield from agent.active_data.schedule(inter, attribute)
            self.intermediate_count += 1

    # ------------------------------------------------------------------ reduce side
    def _note_partition_arrival(self, partition: int, agent: HostAgent,
                                data: Data) -> None:
        self._pending_partitions.setdefault(partition, []).append((agent, data))
        if partition not in self._reduce_started:
            self._reduce_started.add(partition)
            agent.env.process(self._run_reduce(partition, agent))

    def _run_reduce(self, partition: int, agent: HostAgent):
        """Generator: merge every partition file for *partition* and reduce."""
        # Wait until every map task finished, then one extra sync period so
        # that straggling partition files have time to land in the cache.
        # Under churn a mapper may never finish (its host crashed before the
        # slice arrived); with a straggler grace period the reducer stops
        # waiting once map progress has stalled for that long.  Maps whose
        # publish failed count as resolved, so a mid-publish crash cannot
        # stall the strict (no-grace) wait until the deadline.
        while self.maps_done + self.maps_failed < len(self._map_slices):
            if (self.straggler_grace_s is not None
                    and agent.env.now - (self._progress_at
                                         or self.started_at or 0.0)
                    > self.straggler_grace_s):
                break
            yield agent.env.timeout(agent.sync_period_s)
        yield agent.env.timeout(2.0 * agent.sync_period_s)
        merged: Dict[str, List[int]] = {}
        for owner, data in self._pending_partitions.get(partition, []):
            content = owner.local_content(data.uid)
            if content is None or content.payload is None:
                continue
            for key, values in json.loads(content.payload.decode("utf-8")).items():
                merged.setdefault(key, []).extend(values)
        yield agent.env.timeout(agent.host.compute_time(
            self.reduce_cost_s_per_partition * max(1, len(merged)) / 100.0))
        reduced = {key: self.reduce_function(key, values)
                   for key, values in merged.items()}
        self._reduce_outputs[partition] = reduced
        payload = json.dumps(reduced, sort_keys=True).encode("utf-8")
        out_content = FileContent.from_bytes(f"reduce-out-{partition:03d}", payload)
        out = yield from agent.bitdew.create_data(out_content.name,
                                                  content=out_content)
        yield from self.collectives.contribute(agent, out, out_content,
                                               protocol=self.protocol)
        return reduced

    # ------------------------------------------------------------------ completion
    @property
    def reduces_done(self) -> int:
        return len(self._reduce_outputs)

    def run(self, deadline_s: float = 10_000.0, poll_s: float = 5.0) -> MapReduceResult:
        """Drive the simulation until the job finishes and merge the output."""
        env = self.runtime.env
        start_proc = env.process(self.start())
        env.run(until=start_proc)
        while env.now < deadline_s and self.reduces_done < min(
                self.n_reducers, len(self.reducers)):
            env.run(until=env.now + poll_s)
        # Let the reducer outputs travel to the master's collector.
        target = min(self.n_reducers, len(self.reducers))
        while env.now < deadline_s and len(self.collectives.gathered()) < target:
            env.run(until=env.now + poll_s)
        self.finished_at = env.now
        output: Dict[str, int] = {}
        for partition_output in self._reduce_outputs.values():
            for key, value in partition_output.items():
                output[key] = output.get(key, 0) + value
        return MapReduceResult(
            output=output,
            map_tasks=self.maps_done,
            reduce_tasks=self.reduces_done,
            makespan_s=(self.finished_at - (self.started_at or 0.0)),
            intermediate_data=self.intermediate_count,
            map_failures=self.maps_failed,
        )
