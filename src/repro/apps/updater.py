"""The "Updater" example (paper §3.3, Listings 1 and 2).

A master node copies a file to every node of the network and maintains the
list of nodes that received the update:

* the master creates the update datum, puts the file in the data space and
  schedules it with ``{replica = -1, oob = bittorrent, abstime = ...}``;
* every updatee installs a data-copy handler: when the update arrives it is
  written to the local path, then the node publishes a tiny "host" datum
  whose affinity points at the master's pinned *collector*, carrying its
  host name back;
* the master's handler records every "host" datum that arrives, building the
  list of updated nodes.

This is the library form of the listing, used both as an example and in the
integration tests (it exercises replication-to-all, affinity, events and
relative lifetimes together).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.events import ActiveDataEventHandler
from repro.core.runtime import BitDewEnvironment, HostAgent
from repro.net.host import Host
from repro.storage.filesystem import FileContent

__all__ = ["UpdaterApplication"]


class _UpdaterHandler(ActiveDataEventHandler):
    """Master-side handler: records each node reporting a completed update."""

    def __init__(self, app: "UpdaterApplication"):
        self.app = app

    def on_data_copy_event(self, data: Data, attribute: Attribute) -> None:
        if attribute.name == "host":
            self.app.updatees.append(data.name)


class _UpdateeHandler(ActiveDataEventHandler):
    """Updatee-side handler: reacts to the update arriving, reports back."""

    def __init__(self, app: "UpdaterApplication", agent: HostAgent):
        self.app = app
        self.agent = agent

    def on_data_copy_event(self, data: Data, attribute: Attribute) -> None:
        if attribute.name != self.app.update_attribute_name:
            return
        # The runtime has already materialised the file in the local cache
        # (the paper's listing calls bitdew.get + waitFor here); report back.
        self.agent.env.process(self.app._report_updated(self.agent))

    def on_data_delete_event(self, data: Data, attribute: Attribute) -> None:
        if attribute.name == self.app.update_attribute_name:
            self.app.deletions.append(self.agent.host.name)


class UpdaterApplication:
    """Network file update driven entirely by data attributes.

    The library form of Listings 1 and 2 (§3.3): ``{replica = -1,
    oob = bittorrent, abstime}`` pushes the update everywhere, affinity to
    the master's pinned collector carries the acknowledgements back.
    """

    def __init__(self, runtime: BitDewEnvironment, master_host: Host,
                 update_size_mb: float = 64.0,
                 protocol: str = "bittorrent",
                 lifetime_s: Optional[float] = None,
                 update_attribute_name: str = "update"):
        self.runtime = runtime
        # The updater (master) is a client host: it pushes the update out and
        # only receives the "host" reports through affinity to its collector.
        self.master = runtime.attach(master_host, reservoir=False)
        self.update_size_mb = float(update_size_mb)
        self.protocol = protocol
        self.lifetime_s = lifetime_s
        self.update_attribute_name = update_attribute_name
        self.updatees: List[str] = []
        self.deletions: List[str] = []
        self.update_data: Optional[Data] = None
        self.collector_data: Optional[Data] = None
        self._reported: set = set()
        self.master.active_data.add_callback(_UpdaterHandler(self))

    # ------------------------------------------------------------------ master
    def start(self):
        """Generator: publish the update (master side of Listing 1)."""
        bitdew = self.master.bitdew
        active = self.master.active_data

        collector = yield from bitdew.create_data("collector")
        self.collector_data = collector
        yield from active.pin(collector, attribute=Attribute(name="collector"))

        content = FileContent.from_seed("big_data_to_update", self.update_size_mb)
        data = yield from bitdew.create_data("big_data_to_update", content=content)
        yield from bitdew.put(data, content, protocol=self.protocol)
        attr_parts = [f"replicat = -1", f"oob = {self.protocol}"]
        if self.lifetime_s is not None:
            attr_parts.append(f"abstime = {self.lifetime_s}")
        attribute = bitdew.create_attribute(
            f"attr {self.update_attribute_name} = {{{', '.join(attr_parts)}}}")
        yield from active.schedule(data, attribute)
        self.update_data = data
        return data

    # ------------------------------------------------------------------ updatees
    def register_updatee(self, agent: HostAgent) -> HostAgent:
        agent.active_data.add_callback(_UpdateeHandler(self, agent))
        return agent

    def register_updatees(self, hosts: Optional[List[Host]] = None) -> List[HostAgent]:
        targets = hosts if hosts is not None else self.runtime.topology.worker_hosts
        agents = []
        for host in targets:
            if host is self.master.host:
                continue
            agents.append(self.register_updatee(self.runtime.attach(host)))
        return agents

    def _report_updated(self, agent: HostAgent):
        """Generator: send the host's name back to the master (Listing 2)."""
        if agent.host.name in self._reported:
            return None
        self._reported.add(agent.host.name)
        content = FileContent.from_bytes(agent.host.name,
                                         agent.host.name.encode("utf-8"))
        data = yield from agent.bitdew.create_data(agent.host.name, content=content)
        yield from agent.bitdew.put(data, content, protocol="http")
        host_attr = Attribute(name="host", replica=1, protocol="http",
                              affinity="collector")
        yield from agent.active_data.schedule(data, host_attr)
        return data

    # ------------------------------------------------------------------ progress
    @property
    def updated_count(self) -> int:
        return len(self.updatees)

    def all_updated(self, expected: Optional[int] = None) -> bool:
        target = expected if expected is not None else len(
            [h for h in self.runtime.topology.worker_hosts
             if h is not self.master.host])
        return self.updated_count >= target
