"""Collective data operations: sliced data, scatter, broadcast, gather.

The paper's conclusion lists the programming abstractions planned on top of
BitDew for Data Desktop Grids: "sliced data, collective communication such
as gather/scatter, and other programming abstractions, such as support for
distributed MapReduce operations".  This module implements the first two
entirely in terms of the existing attribute machinery:

* **sliced data** — :func:`slice_content` cuts a logical file into *n* slices
  and :meth:`DataCollectives.create_slices` turns them into catalogued data;
* **broadcast** — one datum scheduled with ``replica = -1``;
* **scatter** — slice *i* is directed to worker *i* through an *affinity* to
  a small per-host marker datum pinned on that worker (BitDew has no
  host-addressing primitive, and does not need one: affinity to a pinned
  datum is exactly how the paper routes results to the master);
* **gather** — the inverse: every worker schedules its datum with affinity to
  the caller's pinned collector, and :meth:`DataCollectives.gather_wait`
  blocks until all pieces arrived.

MapReduce (the remaining item on the paper's list) builds on these in
:mod:`repro.apps.mapreduce`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.storage.filesystem import FileContent
from repro.sim.kernel import Event

if TYPE_CHECKING:  # typing-only: the runtime import goes runtime -> here
    from repro.core.runtime import HostAgent

__all__ = ["DataCollectives", "ScatterPlan", "slice_content"]


def slice_content(content: FileContent, n_slices: int) -> List[FileContent]:
    """Cut a logical file into *n* contiguous slices.

    When the content carries a real payload the bytes are split; otherwise
    the slices are logical (size divided, per-slice checksums derived from
    the parent's checksum).
    """
    if n_slices <= 0:
        raise ValueError("n_slices must be positive")
    if content.payload is not None:
        payload = content.payload
        chunk = max(1, (len(payload) + n_slices - 1) // n_slices)
        slices = []
        for i in range(n_slices):
            part = payload[i * chunk:(i + 1) * chunk]
            slices.append(FileContent.from_bytes(f"{content.name}.slice{i:04d}", part))
        return slices
    size = content.size_mb / n_slices
    return [
        FileContent.from_seed(f"{content.name}.slice{i:04d}", size,
                              seed=f"{content.checksum}:{i}")
        for i in range(n_slices)
    ]


@dataclass
class ScatterPlan:
    """Book-keeping of one scatter: which slice goes to which host."""

    parent_name: str
    slices: List[Data]
    assignments: Dict[str, str] = field(default_factory=dict)  # data uid -> host name
    markers: Dict[str, Data] = field(default_factory=dict)      # host name -> marker

    def host_of(self, data_uid: str) -> Optional[str]:
        return self.assignments.get(data_uid)


class DataCollectives:
    """Collective operations bound to one host agent (usually the master)."""

    def __init__(self, agent: "HostAgent", protocol: str = "http") -> None:
        self.agent = agent
        self.env = agent.env
        self.protocol = protocol
        self._collector: Optional[Data] = None
        self._collector_attr: Optional[Attribute] = None
        self._gathered: Dict[str, Data] = {}

    # ------------------------------------------------------------------ slices
    def create_slices(self, name: str, content: FileContent, n_slices: int
                      ) -> Generator[Event, Any, List[Data]]:
        """Generator: slice *content* and create/put one datum per slice."""
        pieces = slice_content(content, n_slices)
        datas: List[Data] = []
        for piece in pieces:
            data = yield from self.agent.bitdew.create_data(piece.name, content=piece)
            yield from self.agent.bitdew.put(data, piece, protocol=self.protocol)
            datas.append(data)
        return datas

    # ------------------------------------------------------------------ broadcast
    def broadcast(self, data: Data, protocol: Optional[str] = None,
                  lifetime_reference: Optional[str] = None
                  ) -> Generator[Event, Any, Attribute]:
        """Generator: send one datum to every reservoir host (``replica = -1``)."""
        attribute = Attribute(name=f"bcast-{data.name}", replica=-1,
                              protocol=protocol or self.protocol,
                              relative_lifetime=lifetime_reference)
        yield from self.agent.active_data.schedule(data, attribute)
        return attribute

    # ------------------------------------------------------------------ scatter
    def scatter(self, slices: Sequence[Data],
                target_agents: "Sequence[HostAgent]",
                protocol: Optional[str] = None,
                fault_tolerance: bool = True
                ) -> Generator[Event, Any, ScatterPlan]:
        """Generator: direct slice *i* to target agent *i* (round-robin if
        there are more slices than targets).

        Each target pins a tiny marker datum; the slice's affinity points at
        that marker, so the Data Scheduler routes it to exactly that host.
        Returns a :class:`ScatterPlan`.
        """
        if not target_agents:
            raise ValueError("scatter needs at least one target agent")
        plan = ScatterPlan(parent_name=slices[0].name if slices else "scatter",
                           slices=list(slices))
        # One pinned marker per distinct target host.
        for target in target_agents:
            if target.host.name in plan.markers:
                continue
            marker = yield from target.bitdew.create_data(
                f"scatter-marker-{target.host.name}")
            yield from target.active_data.pin(
                marker, attribute=Attribute(name=f"marker-{target.host.name}"))
            plan.markers[target.host.name] = marker
        for index, data in enumerate(slices):
            target = target_agents[index % len(target_agents)]
            marker = plan.markers[target.host.name]
            attribute = Attribute(
                name=f"scatter-{data.name}", replica=1,
                fault_tolerance=fault_tolerance,
                protocol=protocol or self.protocol,
                affinity=marker.uid,
            )
            yield from self.agent.active_data.schedule(data, attribute)
            plan.assignments[data.uid] = target.host.name
        return plan

    # ------------------------------------------------------------------ gather
    def open_collector(self, name: str = "gather-collector"
                       ) -> Generator[Event, Any, Data]:
        """Generator: pin an empty collector datum on this agent's host."""
        collector = yield from self.agent.bitdew.create_data(name)
        attribute = Attribute(name=name, replica=1, protocol=self.protocol)
        yield from self.agent.active_data.pin(collector, attribute=attribute)
        self._collector = collector
        self._collector_attr = attribute
        return collector

    @property
    def collector(self) -> Optional[Data]:
        return self._collector

    def contribute(self, agent: "HostAgent", data: Data, content: FileContent,
                   protocol: Optional[str] = None
                   ) -> Generator[Event, Any, Attribute]:
        """Generator (worker side): send one datum towards the collector."""
        if self._collector is None:
            raise RuntimeError("open_collector() must be called first")
        yield from agent.bitdew.put(data, content, protocol=protocol or self.protocol)
        attribute = Attribute(
            name=f"gather-{data.name}", replica=1,
            protocol=protocol or self.protocol,
            affinity=self._collector.uid,
            relative_lifetime=self._collector.uid,
        )
        yield from agent.active_data.schedule(data, attribute)
        return attribute

    def gathered(self) -> List[Data]:
        """Data that has physically arrived on the collecting host so far."""
        if self._collector is None:
            return []
        arrived: List[Data] = []
        for data in self.agent.local_data():
            if data.uid == self._collector.uid:
                continue
            attr = self.agent.attribute_of(data)
            if attr.affinity == self._collector.uid and self.agent.has_content(data.uid):
                arrived.append(data)
        return arrived

    def gather_wait(self, expected: int, poll_s: float = 1.0,
                    timeout_s: float = 3600.0
                    ) -> Generator[Event, Any, List[Data]]:
        """Generator: block until *expected* contributions arrived (or timeout)."""
        deadline = self.env.now + timeout_s
        while len(self.gathered()) < expected and self.env.now < deadline:
            yield self.env.timeout(poll_s)
        return self.gathered()
