"""The Data object, its status and locators (paper §3.3).

"Data creation consists of the creation of a slot in the storage space.
A data object contains data meta-information: *name* is the character
string label, *checksum* is an MD5 signature of the file, *size* is the
file length, *flags* is a OR-combination of flags indicating whether the
file is compressed, executable, architecture dependent, etc."

A :class:`Locator` gives "the correct information to remotely access the
data: file identification on the remote file system (this could be a path,
file name, or hash key) and information to set up the file transfer
service" (§3.4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.storage.filesystem import FileContent
from repro.storage.persistence import new_auid

__all__ = ["Data", "DataFlag", "DataStatus", "Locator"]


class DataFlag(enum.IntFlag):
    """OR-combination of flags carried by a data object."""

    NONE = 0
    COMPRESSED = 1
    EXECUTABLE = 2
    ARCHITECTURE_DEPENDENT = 4


class DataStatus(enum.Enum):
    """Life-cycle status of a data slot."""

    CREATED = "created"        # slot exists, no content uploaded yet
    AVAILABLE = "available"    # content uploaded / at least one copy exists
    OBSOLETE = "obsolete"      # lifetime expired, may be deleted by hosts
    DELETED = "deleted"        # removed from the catalog


@dataclass
class Data:
    """A slot in the unified data space."""

    name: str
    size_mb: float = 0.0
    checksum: str = ""
    flags: DataFlag = DataFlag.NONE
    uid: str = field(default_factory=lambda: new_auid("data"))
    status: DataStatus = DataStatus.CREATED
    #: uid of the attribute currently governing this datum (None = default)
    attribute_uid: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a data object needs a non-empty name")
        if self.size_mb < 0:
            raise ValueError("size_mb must be non-negative")

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_content(cls, content: FileContent, flags: DataFlag = DataFlag.NONE,
                     name: Optional[str] = None) -> "Data":
        """Create a datum from a logical file, computing the meta-information."""
        return cls(name=name or content.name, size_mb=content.size_mb,
                   checksum=content.checksum, flags=flags)

    # -- convenience --------------------------------------------------------
    @property
    def is_compressed(self) -> bool:
        return bool(self.flags & DataFlag.COMPRESSED)

    @property
    def is_executable(self) -> bool:
        return bool(self.flags & DataFlag.EXECUTABLE)

    @property
    def has_content(self) -> bool:
        return self.checksum != "" and self.size_mb > 0

    def getname(self) -> str:
        """Paper-style accessor (see the Updater listing)."""
        return self.name

    def getuid(self) -> str:
        """Paper-style accessor (see the Updater listing)."""
        return self.uid

    def matches_content(self, content: FileContent) -> bool:
        """True when *content* is the file this datum was created from."""
        return (self.checksum == content.checksum
                and abs(self.size_mb - content.size_mb) < 1e-12)

    def with_status(self, status: DataStatus) -> "Data":
        return replace(self, status=status)

    def __hash__(self) -> int:
        return hash(self.uid)  # detlint: ignore[DET005] — process-local dict/set membership only; DET003 forbids iterating sets of Data, so the salted order never escapes


@dataclass(frozen=True)
class Locator:
    """How to reach one remote copy of a datum."""

    data_uid: str
    host_name: str
    reference: str                 # path, file name or hash key on that host
    protocol: str = "http"
    uid: str = field(default_factory=lambda: new_auid("locator"))
    #: locators on stable repository hosts are "permanent copies" (§3.4.1)
    permanent: bool = False

    def describe(self) -> str:
        return f"{self.protocol}://{self.host_name}/{self.reference}"
