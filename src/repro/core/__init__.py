"""BitDew core: the paper's primary contribution.

This subpackage contains the programming model of the paper's Section 3:

* :mod:`repro.core.data` — the :class:`Data` object (a slot in the unified
  data space, with name / MD5 checksum / size / flags), :class:`Locator`
  (how to reach a remote copy) and data status.
* :mod:`repro.core.attributes` — the five data attributes (``replica``,
  ``fault_tolerance``, ``lifetime``, ``affinity``, ``protocol``) plus the
  textual attribute grammar used throughout the paper's listings
  (``attr update = {replica = -1, oob = bittorrent, abstime = 43200}``).
* :mod:`repro.core.events` — data life-cycle events (create / copy / delete)
  and the ``ActiveDataEventHandler`` callback base class.
* :mod:`repro.core.bitdew` — the ``BitDew`` API: create data slots, put/get
  content, search, publish.
* :mod:`repro.core.active_data` — the ``ActiveData`` API: schedule/pin data
  with attributes, install life-cycle handlers.
* :mod:`repro.core.transfer_manager` — the ``TransferManager`` API:
  non-blocking transfers, probing, waiting, barriers, concurrency control.
* :mod:`repro.core.runtime` — the runtime environment that wires a simulated
  platform (topology + protocols + D* services + per-host agents) together
  and exposes the three APIs on every attached host.
"""

from repro.core.attributes import Attribute, AttributeError_, parse_attribute
from repro.core.data import Data, DataFlag, DataStatus, Locator
from repro.core.events import ActiveDataEventHandler, DataEvent, DataEventType
from repro.core.exceptions import (
    BitDewError,
    DataNotFoundError,
    SchedulingError,
    TransferAbortedError,
)
from repro.core.bitdew import BitDew
from repro.core.active_data import ActiveData
from repro.core.transfer_manager import TransferManager
from repro.core.runtime import BitDewEnvironment, HostAgent
from repro.core.collectives import DataCollectives, slice_content

__all__ = [
    "ActiveData",
    "DataCollectives",
    "slice_content",
    "ActiveDataEventHandler",
    "Attribute",
    "AttributeError_",
    "BitDew",
    "BitDewEnvironment",
    "BitDewError",
    "Data",
    "DataEvent",
    "DataEventType",
    "DataFlag",
    "DataNotFoundError",
    "DataStatus",
    "HostAgent",
    "Locator",
    "SchedulingError",
    "TransferAbortedError",
    "TransferManager",
    "parse_attribute",
]
