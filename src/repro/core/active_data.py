"""The ActiveData API (paper §3.3): attributes, scheduling and callbacks.

"This is precisely the role of the ActiveData API to manage data attributes
and interface with the DS, which is achieved by the following methods:
*schedule* associates a datum to an attribute and orders the DS to schedule
this data according to the scheduling heuristic; *pin* which, in addition,
indicates the DS that a datum is owned by a specific node.  Besides,
ActiveData allows programmers to install handlers, those are codes executed
when some events occur during data life cycle: creation, copy and deletion."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Union

from repro.core.attributes import Attribute, parse_attribute
from repro.core.data import Data
from repro.core.events import ActiveDataEventHandler
from repro.sim.kernel import Event

if TYPE_CHECKING:  # typing-only: the runtime import goes runtime -> active_data
    from repro.core.runtime import HostAgent

__all__ = ["ActiveData"]


class ActiveData:
    """Attribute management, scheduling orders and life-cycle callbacks."""

    def __init__(self, agent: "HostAgent") -> None:
        self.agent = agent
        self.env = agent.env

    # ------------------------------------------------------------------ attributes
    def create_attribute(
            self, definition: Union[str, Dict[str, Any], Attribute]) -> Attribute:
        if isinstance(definition, Attribute):
            return definition
        if isinstance(definition, dict):
            return Attribute(**definition)
        return parse_attribute(definition)

    def createAttribute(  # noqa: N802 - paper-style alias
            self, definition: Union[str, Dict[str, Any], Attribute]) -> Attribute:
        return self.create_attribute(definition)

    # ------------------------------------------------------------------ scheduling
    def schedule(self, data: Data, attribute: Optional[Attribute] = None
                 ) -> Generator[Event, Any, Any]:
        """Generator: hand the datum to the Data Scheduler with its attribute."""
        entry = yield from self.agent.invoke("ds", "schedule", data, attribute)
        self.agent.set_attribute(data, attribute)
        if self.agent.reservoir and self.agent.has_local(data.uid):
            # On a reservoir host the local copy is now governed by the
            # scheduler (lifetime expiry, obsolete-data removal).  Client
            # hosts keep their own copies out of the scheduler's view.
            self.agent.mark_managed(data.uid)
        return entry

    def pin(self, data: Data, host_name: Optional[str] = None,
            attribute: Optional[Attribute] = None
            ) -> Generator[Event, Any, Any]:
        """Generator: schedule the datum and declare it owned by *host_name*
        (this agent's host when omitted)."""
        owner = host_name if host_name is not None else self.agent.host.name
        entry = yield from self.agent.invoke("ds", "pin", data, owner, attribute)
        self.agent.set_attribute(data, attribute)
        if owner == self.agent.host.name:
            self.agent.register_local(data, content_present=self.agent.has_content(data.uid))
            self.agent.mark_managed(data.uid)
        return entry

    def unschedule(self, data: Data) -> Generator[Event, Any, Any]:
        """Generator: withdraw the datum from scheduling (hosts drop it later)."""
        removed = yield from self.agent.invoke("ds", "unschedule", data.uid)
        return removed

    def owners_of(self, data: Data) -> Generator[Event, Any, List[str]]:
        """Generator: the datum's current active owners, as known by the DS."""
        owners = yield from self.agent.invoke("ds", "owners_of", data.uid)
        return owners

    # ------------------------------------------------------------------ callbacks
    def add_callback(self, handler: ActiveDataEventHandler) -> None:
        """Install a data life-cycle event handler on this host."""
        self.agent.event_bus.add_handler(handler)

    def addCallback(self, handler: ActiveDataEventHandler) -> None:  # noqa: N802
        self.add_callback(handler)

    def remove_callback(self, handler: ActiveDataEventHandler) -> None:
        self.agent.event_bus.remove_handler(handler)
