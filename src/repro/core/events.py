"""Data life-cycle events and callbacks (paper §3.3).

"ActiveData allows programmers to install handlers, those are codes executed
when some events occur during data life cycle: creation, copy and deletion."

Handlers subclass :class:`ActiveDataEventHandler` and override any of
``on_data_create_event`` / ``on_data_copy_event`` / ``on_data_delete_event``.
CamelCase aliases matching the paper's Java listings
(``onDataCopyEvent`` ...) are provided so the Updater example can be ported
almost verbatim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.core.attributes import Attribute
from repro.core.data import Data

__all__ = ["ActiveDataEventHandler", "DataEvent", "DataEventType", "EventBus"]


class DataEventType(enum.Enum):
    """The three life-cycle events of the paper."""

    CREATE = "create"
    COPY = "copy"
    DELETE = "delete"


@dataclass(frozen=True)
class DataEvent:
    """One life-cycle occurrence delivered to handlers on a host."""

    type: DataEventType
    data: Data
    attribute: Attribute
    host_name: str
    time: float


class ActiveDataEventHandler:
    """Base class for data life-cycle callbacks.

    Override the snake_case methods; the camelCase aliases mirror the
    paper's Java API and simply forward.
    """

    def on_data_create_event(self, data: Data, attribute: Attribute) -> None:
        """Called when a data slot is created on this host's view."""

    def on_data_copy_event(self, data: Data, attribute: Attribute) -> None:
        """Called when a datum's content lands in this host's local cache."""

    def on_data_delete_event(self, data: Data, attribute: Attribute) -> None:
        """Called when a datum becomes obsolete and is removed from the cache."""

    # -- paper-style aliases -------------------------------------------------
    def onDataCreateEvent(self, data: Data, attribute: Attribute) -> None:  # noqa: N802
        self.on_data_create_event(data, attribute)

    def onDataCopyEvent(self, data: Data, attribute: Attribute) -> None:  # noqa: N802
        self.on_data_copy_event(data, attribute)

    def onDataDeleteEvent(self, data: Data, attribute: Attribute) -> None:  # noqa: N802
        self.on_data_delete_event(data, attribute)


class EventBus:
    """Per-host dispatcher of data life-cycle events to installed handlers."""

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        self._handlers: List[ActiveDataEventHandler] = []
        self.history: List[DataEvent] = []

    def add_handler(self, handler: ActiveDataEventHandler) -> None:
        if not isinstance(handler, ActiveDataEventHandler):
            raise TypeError("handler must be an ActiveDataEventHandler")
        self._handlers.append(handler)

    def remove_handler(self, handler: ActiveDataEventHandler) -> None:
        if handler in self._handlers:
            self._handlers.remove(handler)

    @property
    def handler_count(self) -> int:
        return len(self._handlers)

    def dispatch(self, event_type: DataEventType, data: Data,
                 attribute: Attribute, time: float) -> DataEvent:
        event = DataEvent(type=event_type, data=data, attribute=attribute,
                          host_name=self.host_name, time=time)
        self.history.append(event)
        for handler in list(self._handlers):
            if event_type is DataEventType.CREATE:
                handler.onDataCreateEvent(data, attribute)
            elif event_type is DataEventType.COPY:
                handler.onDataCopyEvent(data, attribute)
            else:
                handler.onDataDeleteEvent(data, attribute)
        return event

    def events_of(self, event_type: DataEventType) -> List[DataEvent]:
        return [e for e in self.history if e.type is event_type]
