"""The BitDew API (paper §3.3): create, put, get, search, publish.

"The BitDew APIs provide functions to create a slot in this space and to put
and get files between the local storage and the data space."

The API object is bound to one *host agent* (one attached node); every
method that talks to a remote service is a generator meant to be yielded
from a simulation process — this is the Python counterpart of the blocking
Java calls in the paper's listings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Union

from repro.core.attributes import Attribute, parse_attribute
from repro.core.data import Data, DataFlag, DataStatus
from repro.core.events import DataEventType
from repro.core.exceptions import DataNotFoundError
from repro.storage.filesystem import FileContent
from repro.sim.kernel import Event

if TYPE_CHECKING:  # typing-only: the runtime import goes runtime -> bitdew
    from repro.core.runtime import HostAgent

__all__ = ["BitDew"]


class BitDew:
    """Data-space manipulation bound to one host agent."""

    def __init__(self, agent: "HostAgent") -> None:
        self.agent = agent
        self.env = agent.env

    # ------------------------------------------------------------------ creation
    def create_data(self, name: str, size_mb: float = 0.0,
                    content: Optional[FileContent] = None,
                    flags: DataFlag = DataFlag.NONE
                    ) -> Generator[Event, Any, Data]:
        """Generator: create a data slot and register it in the Data Catalog.

        When *content* is given the meta-information (size, MD5) is computed
        from it, exactly like creating a datum from a file in the paper.
        """
        if content is not None:
            data = Data.from_content(content, flags=flags, name=name)
            self.agent.filesystem.write(self.agent.cache_path(data), content)
        else:
            data = Data(name=name, size_mb=size_mb, flags=flags)
        registered = yield from self.agent.invoke("dc", "register_data", data)
        self.agent.register_local(data, content_present=content is not None)
        self.agent.event_bus.dispatch(DataEventType.CREATE, data,
                                      self.agent.attribute_of(data), self.env.now)
        return registered if registered is not None else data

    def createData(self, *args: Any,  # noqa: N802 - paper-style alias
                   **kwargs: Any) -> Generator[Event, Any, Data]:
        return self.create_data(*args, **kwargs)

    def create_attribute(
            self, definition: Union[str, Dict[str, Any], Attribute]) -> Attribute:
        """Parse/build an attribute (``attr name = {replica=..., oob=...}``)."""
        if isinstance(definition, Attribute):
            return definition
        if isinstance(definition, dict):
            return Attribute(**definition)
        return parse_attribute(definition)

    def createAttribute(  # noqa: N802 - paper-style alias
            self, definition: Union[str, Dict[str, Any], Attribute]) -> Attribute:
        return self.create_attribute(definition)

    # ------------------------------------------------------------------ content movement
    def put(self, data: Data, content: FileContent,
            protocol: Optional[str] = None) -> Generator[Event, Any, Any]:
        """Generator: copy *content* into the data space (the repository).

        The local cache gets a copy as well; the repository copy becomes the
        datum's permanent locator registered in the Data Catalog.
        """
        if not data.matches_content(content):
            # The slot may have been created empty; fill in the meta-information.
            data.size_mb = content.size_mb
            data.checksum = content.checksum
        self.agent.filesystem.write(self.agent.cache_path(data), content)
        self.agent.register_local(data, content_present=True)
        locator = yield from self.agent.upload(data, content, protocol=protocol)
        data.status = DataStatus.AVAILABLE
        return locator

    def get(self, data: Data, protocol: Optional[str] = None,
            blocking: bool = True
            ) -> Generator[Event, Any, Optional[FileContent]]:
        """Generator: copy the datum's content from the data space to the cache.

        With ``blocking=False`` the download is started in the background and
        tracked by the TransferManager (use ``wait_for``/``barrier``).
        """
        if self.agent.has_local(data.uid) and self.agent.local_content(data.uid) is not None:
            return self.agent.local_content(data.uid)
        if blocking:
            content = yield from self.agent.fetch(data, protocol=protocol)
            return content
        process = self.env.process(self.agent.fetch(data, protocol=protocol))
        self.agent.transfer_manager.track(data, process)
        yield self.env.timeout(0.0)
        return None

    # ------------------------------------------------------------------ search / delete
    def search_data(self, name: str) -> Generator[Event, Any, Data]:
        """Generator: find a datum by its label through the Data Catalog."""
        matches = yield from self.agent.invoke("dc", "find_by_name", name)
        if not matches:
            raise DataNotFoundError(f"no data named {name!r} in the catalog")
        return matches[0]

    def searchData(  # noqa: N802 - paper-style alias
            self, name: str) -> Generator[Event, Any, Data]:
        return self.search_data(name)

    def delete_data(self, data: Data) -> Generator[Event, Any, Data]:
        """Generator: delete the datum everywhere (catalog, scheduler, cache)."""
        yield from self.agent.invoke("dc", "delete_data", data.uid)
        yield from self.agent.invoke("ds", "unschedule", data.uid)
        self.agent.remove_local(data.uid, fire_event=True)
        data.status = DataStatus.DELETED
        return data

    # ------------------------------------------------------------------ generic publish/search
    def publish(self, key: str, value: Any) -> Generator[Event, Any, Any]:
        """Generator: publish an arbitrary key/value pair in the DHT (§3.3)."""
        result = yield from self.agent.ddc.publish_pair(
            f"kv:{key}", value, origin=self.agent.host.name)
        return result

    def search(self, key: str) -> Generator[Event, Any, List[Any]]:
        """Generator: look up the values published under *key* in the DHT."""
        values = yield from self.agent.ddc.search_pair(
            f"kv:{key}", origin=self.agent.host.name)
        return values
