"""Exception hierarchy of the BitDew core."""

from __future__ import annotations

__all__ = [
    "BitDewError",
    "DataNotFoundError",
    "SchedulingError",
    "TransferAbortedError",
]


class BitDewError(RuntimeError):
    """Base class of all BitDew-level errors."""


class DataNotFoundError(BitDewError):
    """A data slot (or its content) could not be located."""


class SchedulingError(BitDewError):
    """The Data Scheduler rejected or could not satisfy a request."""


class TransferAbortedError(BitDewError):
    """A supervised transfer failed definitively (after retries)."""
