"""The TransferManager API (paper §3.3).

"The TransferManager API offers a non-blocking interface to concurrent file
transfers, allowing users to probe for transfer, to wait for transfer
completion, to create barriers and to tune the level of transfers
concurrency."

The manager tracks the transfers started by the other APIs on the same host
agent (explicit ``put``/``get`` as well as the implicit transfers resolved
by the Data Scheduler), indexed by data uid.  Its waiting primitives are
generators to be yielded from inside simulation processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List

from repro.core.data import Data
from repro.core.exceptions import TransferAbortedError
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Request, Resource
from repro.transfer.oob import TransferState

if TYPE_CHECKING:  # typing-only: the runtime import goes runtime -> here
    from repro.core.runtime import HostAgent

__all__ = ["TransferManager"]


class TransferManager:
    """Non-blocking transfer control: probe, wait, barrier, concurrency."""

    def __init__(self, agent: "HostAgent", max_concurrent: int = 8) -> None:
        self.agent = agent
        self.env: Environment = agent.env
        self._slots = Resource(self.env, capacity=max_concurrent)
        self._max_concurrent = max_concurrent
        #: data uid -> list of completion events of in-flight transfers
        self._pending: Dict[str, List[Event]] = {}
        #: data uid -> last observed state
        self._states: Dict[str, TransferState] = {}
        self.started = 0
        self.completed = 0
        self.failed = 0

    # -- concurrency control -----------------------------------------------------
    @property
    def max_concurrent(self) -> int:
        return self._max_concurrent

    def set_max_concurrent(self, value: int) -> None:
        """Tune the number of simultaneous transfers this host will run."""
        if value <= 0:
            raise ValueError("max_concurrent must be positive")
        # Resources cannot shrink in place; swap in a new one (in-flight
        # transfers keep their already-granted slots).
        self._slots = Resource(self.env, capacity=value)
        self._max_concurrent = value

    def acquire_slot(self) -> Generator[Event, Any, Request]:
        """Generator: take one concurrency slot (released with release_slot)."""
        request = self._slots.request()
        yield request
        return request

    def release_slot(self, request: Request) -> None:
        self._slots.release(request)

    # -- tracking -------------------------------------------------------------------
    def track(self, data: Data, completion: Event) -> Event:
        """Register an in-flight transfer of *data*; returns the same event."""
        self._pending.setdefault(data.uid, []).append(completion)
        self._states[data.uid] = TransferState.TRANSFERRING
        self.started += 1

        def _done(event: Event, uid: str = data.uid) -> None:
            events = self._pending.get(uid, [])
            if event in events:
                events.remove(event)
            if not events:
                self._pending.pop(uid, None)
            if event.ok:
                self._states[uid] = TransferState.COMPLETE
                self.completed += 1
            else:
                # The manager observed (and recorded) the failure; it must not
                # crash the simulation if nobody else is waiting on the event.
                event.defused = True
                self._states[uid] = TransferState.FAILED
                self.failed += 1

        completion.add_callback(_done)
        return completion

    # -- probing ---------------------------------------------------------------------
    def probe(self, data: Data) -> TransferState:
        """The last known state of *data*'s transfer on this host."""
        if data.uid in self._pending:
            return TransferState.TRANSFERRING
        return self._states.get(data.uid, TransferState.PENDING)

    @property
    def pending_count(self) -> int:
        return sum(len(events) for events in self._pending.values())

    def pending_data_uids(self) -> List[str]:
        return sorted(self._pending)

    # -- waiting ---------------------------------------------------------------------
    def wait_for(self, data: Data) -> Generator[Event, Any, TransferState]:
        """Generator: block until every in-flight transfer of *data* settles.

        Raises :class:`TransferAbortedError` if the transfer failed.
        Returns immediately when nothing is in flight for the datum.
        """
        events = list(self._pending.get(data.uid, []))
        for event in events:
            try:
                yield event
            except Exception as exc:  # transfer failure propagates to the waiter
                raise TransferAbortedError(
                    f"transfer of {data.name!r} failed on {self.agent.host.name}: {exc}"
                ) from exc
        if self._states.get(data.uid) is TransferState.FAILED and not events:
            raise TransferAbortedError(
                f"transfer of {data.name!r} previously failed on "
                f"{self.agent.host.name}")
        return self._states.get(data.uid, TransferState.COMPLETE)

    def waitFor(  # noqa: N802 - paper-style alias
            self, data: Data) -> Generator[Event, Any, TransferState]:
        return self.wait_for(data)

    def barrier(self) -> Generator[Event, Any, int]:
        """Generator: block until *all* transfers known to this manager settle."""
        while self._pending:
            events = [e for lst in self._pending.values() for e in lst]
            for event in events:
                try:
                    yield event
                except Exception:
                    # The barrier itself swallows individual failures; callers
                    # that care about a specific datum use wait_for().
                    pass
        return self.completed

    def wait_all(self) -> Generator[Event, Any, int]:
        """Alias of :meth:`barrier` (kept for API symmetry)."""
        return self.barrier()
