"""The BitDew runtime environment: wiring services, hosts and APIs together.

The paper's deployment model (§3.1): stable *service hosts* run the D*
services; volatile hosts — *clients* asking for storage and *reservoirs*
offering theirs — attach to them, run the API layer and periodically pull
the Data Scheduler (heartbeat + synchronisation).  This module provides:

* :class:`BitDewEnvironment` — builds the service container on a topology's
  stable host, the Distributed Data Catalog ring, the protocol registry, and
  manages host attachment;
* :class:`HostAgent` — one attached host: its local cache, its event bus,
  its RPC channel to the services, the three APIs (``BitDew``,
  ``ActiveData``, ``TransferManager``), the periodic synchronisation loop of
  the pull model, and the per-datum statistics the experiments read out
  (assignment time, download time, measured bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple, Union

from repro.core.active_data import ActiveData
from repro.core.attributes import Attribute, DEFAULT_ATTRIBUTE
from repro.core.bitdew import BitDew
from repro.core.data import Data, DataStatus, Locator
from repro.core.events import DataEventType, EventBus
from repro.core.exceptions import (
    BitDewError,
    DataNotFoundError,
    TransferAbortedError,
)
from repro.core.transfer_manager import TransferManager
from repro.dht.chord import ChordRing
from repro.dht.ddc import DistributedDataCatalog
from repro.net.flows import Network
from repro.net.host import Host
from repro.net.rpc import ChannelKind, FailoverPolicy, RpcChannel, RpcError
from repro.net.topology import Topology
from repro.services.container import ServiceContainer
from repro.services.fabric import ServiceFabric
from repro.services.router import FabricRouter, StaticRouter
from repro.sim.kernel import Environment, Event, Process
from repro.sim.rng import RandomStreams
from repro.storage.database import DatabaseEngine
from repro.storage.filesystem import FileContent, LocalFileSystem
from repro.transfer.oob import TransferEndpoint
from repro.transfer.registry import ProtocolRegistry

__all__ = ["BitDewEnvironment", "HostAgent", "DataTransferStats"]


@dataclass
class DataTransferStats:
    """Per-datum timeline recorded on the receiving host (used by Figure 4)."""

    data_uid: str
    data_name: str
    assigned_at: Optional[float] = None
    download_started_at: Optional[float] = None
    download_completed_at: Optional[float] = None
    size_mb: float = 0.0

    @property
    def wait_time_s(self) -> Optional[float]:
        """Time between assignment knowledge and the start of the download."""
        if self.assigned_at is None or self.download_started_at is None:
            return None
        return self.download_started_at - self.assigned_at

    @property
    def download_time_s(self) -> Optional[float]:
        if self.download_started_at is None or self.download_completed_at is None:
            return None
        return self.download_completed_at - self.download_started_at

    @property
    def bandwidth_mbps(self) -> Optional[float]:
        duration = self.download_time_s
        if duration is None or duration <= 0:
            return None
        return self.size_mb / duration


class HostAgent:
    """One attached host: cache, APIs, pull loop, statistics."""

    def __init__(
        self,
        runtime: "BitDewEnvironment",
        host: Host,
        channel_kind: Optional[ChannelKind] = None,
        sync_period_s: Optional[float] = None,
        cache_capacity_mb: Optional[float] = None,
        max_concurrent_transfers: int = 8,
        reservoir: bool = True,
        max_data_schedule: Optional[int] = None,
    ) -> None:
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.host = host
        #: reservoir hosts offer storage (targets of replica placement);
        #: client hosts only receive data through affinity (paper §3.1).
        self.reservoir = bool(reservoir)
        #: per-host override of the scheduler's MaxDataSchedule (None = use
        #: the Data Scheduler's default).
        self.max_data_schedule = max_data_schedule
        kind = channel_kind
        if kind is None:
            kind = (ChannelKind.LOCAL if host is runtime.container.host
                    else ChannelKind.RMI_REMOTE)
        self.channel = RpcChannel(self.env, kind)
        self.sync_period_s = (
            float(sync_period_s) if sync_period_s is not None
            else runtime.sync_period_s
        )
        capacity = cache_capacity_mb if cache_capacity_mb is not None else host.disk_mb
        self.filesystem = LocalFileSystem(capacity_mb=capacity, owner=host.name)
        self.event_bus = EventBus(host.name)
        self.transfer_manager = TransferManager(self, max_concurrent=max_concurrent_transfers)
        self.bitdew = BitDew(self)
        self.active_data = ActiveData(self)

        #: local cache view: uid -> Data, uid -> Attribute, uids whose bytes are present
        self._local_data: Dict[str, Data] = {}
        self._local_attrs: Dict[str, Attribute] = {}
        self._content_present: Set[str] = set()
        #: uids under the Data Scheduler's control on this host.  Data created
        #: locally but never scheduled is not purged by the pull loop (only
        #: the user can delete it); anything the scheduler assigned — or that
        #: this host explicitly scheduled/pinned — follows Algorithm 1's
        #: obsolete-data removal.
        self._scheduler_managed: Set[str] = set()
        #: per-datum transfer timeline (Figure 4 reads this)
        self.stats: Dict[str, DataTransferStats] = {}
        self.attached_at = self.env.now
        self.sync_rounds = 0
        self._running = False

    # ------------------------------------------------------------------ shared services
    @property
    def ddc(self) -> DistributedDataCatalog:
        """The Distributed Data Catalog this agent publishes into."""
        return self.runtime.ddc

    # ------------------------------------------------------------------ cache helpers
    def cache_path(self, data: Data) -> str:
        return f"cache/{data.uid}/{data.name}"

    def cache_endpoint(self, data: Data) -> TransferEndpoint:
        return TransferEndpoint(host=self.host, filesystem=self.filesystem,
                                path=self.cache_path(data))

    def register_local(self, data: Data, content_present: bool = False) -> None:
        self._local_data[data.uid] = data
        if content_present:
            self._content_present.add(data.uid)

    def set_attribute(self, data: Data, attribute: Optional[Attribute]) -> None:
        if attribute is not None:
            self._local_attrs[data.uid] = attribute

    def mark_managed(self, uid: str) -> None:
        """Record that the Data Scheduler governs this datum on this host."""
        self._scheduler_managed.add(uid)

    def is_managed(self, uid: str) -> bool:
        return uid in self._scheduler_managed

    def attribute_of(self, data: Data) -> Attribute:
        return self._local_attrs.get(data.uid, DEFAULT_ATTRIBUTE)

    def has_local(self, uid: str) -> bool:
        return uid in self._local_data

    def has_content(self, uid: str) -> bool:
        return uid in self._content_present

    def local_content(self, uid: str) -> Optional[FileContent]:
        data = self._local_data.get(uid)
        if data is None or uid not in self._content_present:
            return None
        path = self.cache_path(data)
        if not self.filesystem.exists(path):
            return None
        return self.filesystem.read(path)

    def local_data(self) -> List[Data]:
        return list(self._local_data.values())

    def cached_uids(self) -> Set[str]:
        return set(self._local_data.keys())

    def remove_local(self, uid: str, fire_event: bool = False) -> bool:
        data = self._local_data.pop(uid, None)
        attr = self._local_attrs.pop(uid, DEFAULT_ATTRIBUTE)
        self._content_present.discard(uid)
        self._scheduler_managed.discard(uid)
        if data is None:
            return False
        self.filesystem.delete(self.cache_path(data))
        if fire_event:
            self.event_bus.dispatch(DataEventType.DELETE, data, attr, self.env.now)
        return True

    # ------------------------------------------------------------------ RPC
    def invoke(self, service: str, method: str, *args: Any,
               **kwargs: Any) -> Generator[Event, Any, Any]:
        """Generator: call a D* service method over this agent's channel.

        The runtime's :class:`~repro.services.router.ServiceRouter` resolves
        which service instance serves the call: the classic deployment's
        single endpoint (a plain passthrough), or — under a fabric
        deployment — the live replica of the responsible shard, with
        failover retries.
        """
        return self.runtime.router.invoke(self.channel, service, method,
                                          *args, **kwargs)

    # ------------------------------------------------------------------ data movement
    def upload(self, data: Data, content: FileContent,
               protocol: Optional[str] = None
               ) -> Generator[Event, Any, Locator]:
        """Generator: push content into the repository and register its locator."""
        container = self.runtime.container
        protocol_name = protocol or self.attribute_of(data).protocol or "http"
        if self.host is container.host:
            locator = container.data_repository.store_now(data, content)
        else:
            source = self.cache_endpoint(data)
            destination = TransferEndpoint(
                host=container.host,
                filesystem=container.data_repository.filesystem,
                path=container.data_repository.path_for(data),
            )
            record = yield from self.invoke(
                "dt", "register_transfer", data, protocol_name, source, destination)
            yield from container.data_transfer.start(record)
            locator = container.data_repository.register_upload(data)
        yield from self.invoke("dc", "add_locator", locator)
        return locator

    def _select_source(
            self, data: Data, locators: List[Locator]
    ) -> Tuple[Optional[str], Optional[TransferEndpoint]]:
        """Pick a source endpoint: permanent repository copy first, then peers."""
        container = self.runtime.container
        for locator in locators:
            if locator.permanent and container.data_repository.has(data.uid) \
                    and container.host.online:
                return "repository", container.data_repository.endpoint_for(data.uid)
        for locator in locators:
            peer = self.runtime.agents.get(locator.host_name)
            if peer is not None and peer.host.online and peer.has_content(data.uid):
                return "peer", peer.cache_endpoint(data)
        return None, None

    def fetch(self, data: Data, protocol: Optional[str] = None,
              attribute: Optional[Attribute] = None
              ) -> Generator[Event, Any, Optional[FileContent]]:
        """Generator: download a datum's content into the local cache.

        Follows the paper's protocol: ask the DC for locators, the DR for the
        protocol description, register the transfer with the DT, then wait
        for the supervised transfer to finish.
        """
        attr = attribute if attribute is not None else self.attribute_of(data)
        protocol_name = protocol or attr.protocol or "http"
        record_stats = self.stats.setdefault(
            data.uid, DataTransferStats(data_uid=data.uid, data_name=data.name,
                                        size_mb=data.size_mb))
        slot = yield from self.transfer_manager.acquire_slot()
        try:
            locators = yield from self.invoke("dc", "locators_for", data.uid)
            kind, source = self._select_source(data, locators)
            if source is None:
                # Last resort: ask the Distributed Data Catalog for volatile owners.
                owners = yield from self.runtime.ddc.search(
                    data.uid, origin=self.host.name)
                for owner in owners:
                    peer = self.runtime.agents.get(owner)
                    if peer is not None and peer.host.online and peer.has_content(data.uid):
                        kind, source = "peer", peer.cache_endpoint(data)
                        break
            if source is None:
                raise DataNotFoundError(
                    f"no live copy of {data.name!r} ({data.uid}) is reachable")
            if kind == "repository":
                description = yield from self.invoke(
                    "dr", "describe_protocol", data.uid, protocol_name)
                protocol_name = description.protocol
            destination = self.cache_endpoint(data)
            container = self.runtime.container
            record = yield from self.invoke(
                "dt", "register_transfer", data, protocol_name, source, destination)
            record_stats.download_started_at = self.env.now
            yield from container.data_transfer.start(record)
            record_stats.download_completed_at = self.env.now
            record_stats.size_mb = data.size_mb
        finally:
            self.transfer_manager.release_slot(slot)
        self.register_local(data, content_present=True)
        return self.filesystem.read(self.cache_path(data))

    # ------------------------------------------------------------------ pull model
    def sync_view(self) -> Set[str]:
        """The cache view presented to the Data Scheduler (Δk).

        Reservoir hosts present their whole cache; client hosts only present
        the data the scheduler governs on them (pinned data and previous
        assignments), so that data they merely created and uploaded is not
        mistaken for a reservoir replica.
        """
        if self.reservoir:
            return self.cached_uids()
        return {uid for uid in self._scheduler_managed if uid in self._local_data}

    def sync_once(self) -> Generator[Event, Any, Any]:
        """Generator: one synchronisation with the Data Scheduler (Algorithm 1).

        Newly assigned data is downloaded concurrently (bounded by the
        TransferManager's concurrency level); each completed download is
        published in the Distributed Data Catalog, confirmed to the Data
        Scheduler and announced to the local life-cycle handlers.
        """
        self.sync_rounds += 1
        result = yield from self.invoke(
            "ds", "synchronize", self.host.name, self.sync_view(),
            reservoir=self.reservoir, max_new=self.max_data_schedule)
        attr_map = {d.uid: (d, a) for d, a in result.assigned}
        for uid in attr_map:
            self.mark_managed(uid)

        for uid in result.to_delete:
            if self.is_managed(uid):
                self.remove_local(uid, fire_event=True)
                self._scheduler_managed.discard(uid)

        downloads: List[Process] = []
        for uid in result.to_download:
            pair = attr_map.get(uid)
            if pair is None:
                continue
            data, attr = pair
            stats = self.stats.setdefault(
                uid, DataTransferStats(data_uid=uid, data_name=data.name,
                                       size_mb=data.size_mb))
            if stats.assigned_at is None:
                stats.assigned_at = self.env.now
            self.set_attribute(data, attr)
            if self.has_content(uid):
                self.register_local(data, content_present=True)
                continue
            downloads.append(self.env.process(self._download_assigned(data, attr)))
        if downloads:
            yield self.env.all_of(downloads)
        return result

    def _download_assigned(self, data: Data, attr: Attribute
                           ) -> Generator[Event, Any, bool]:
        """Generator: fetch one scheduler-assigned datum and acknowledge it."""
        try:
            yield from self.fetch(data, protocol=attr.protocol, attribute=attr)
        except (TransferAbortedError, DataNotFoundError, RpcError):
            # Transient failure: the next synchronisation retries.
            return False
        yield from self.runtime.ddc.publish(data.uid, self.host.name,
                                            origin=self.host.name)
        yield from self.invoke("ds", "confirm_ownership", self.host.name, data.uid)
        self.event_bus.dispatch(DataEventType.COPY, data, attr, self.env.now)
        return True

    def sync_now(self) -> Process:
        """Kick one immediate synchronisation; returns its Process.

        Used by the scaling scenarios to model a *sync storm*: many hosts
        synchronising at the same instant.  The resulting burst of transfer
        starts lands on the same timestamp, so the network settles its
        bandwidth allocation once for the whole batch instead of once per
        flow.
        """
        return self.env.process(self.sync_once())

    def _sync_loop(self) -> Generator[Event, Any, None]:
        while self._running:
            if not self.host.online:
                # A crashed host stops synchronising until it is restarted.
                self._running = False
                break
            try:
                yield from self.sync_once()
            except RpcError:
                # The service host is down (transient fault); retry later.
                pass
            yield self.env.timeout(self.sync_period_s)

    def _heartbeat_loop(self) -> Generator[Event, Any, None]:
        """Periodic liveness heartbeats, independent of the sync/download cycle.

        A host spending minutes downloading a large file must still be seen
        as alive by the failure detector; only a real crash (host offline)
        stops the heartbeats.
        """
        period = self.runtime.container.failure_detector.heartbeat_period_s
        while self._running and self.host.online:
            try:
                yield from self.invoke("ds", "heartbeat", self.host.name,
                                       payload_kb=0.2)
            except RpcError:
                pass
            yield self.env.timeout(period)

    def start(self) -> None:
        """Start the periodic pull loop and heartbeats (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._sync_loop())
        self.env.process(self._heartbeat_loop())

    def stop(self) -> None:
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HostAgent({self.host.name}, data={len(self._local_data)})"


class BitDewEnvironment:
    """The assembled platform: services + DDC + attached hosts."""

    def __init__(
        self,
        topology: Topology,
        engine: Optional[DatabaseEngine] = None,
        use_connection_pool: bool = True,
        registry: Optional[ProtocolRegistry] = None,
        sync_period_s: float = 1.0,
        monitor_period_s: float = 0.5,
        heartbeat_period_s: float = 1.0,
        timeout_multiplier: float = 3.0,
        max_data_schedule: int = 16,
        account_monitor_bandwidth: bool = True,
        ddc: Optional[DistributedDataCatalog] = None,
        seed: int = 0,
        service_hosts: Optional[int] = None,
        shards: int = 1,
        service_replicas: int = 1,
        failover_policy: Optional[FailoverPolicy] = None,
        host_heartbeat_period_s: float = 1.0,
        host_timeout_multiplier: float = 3.0,
        host_sweep_period_s: float = 0.25,
        ring_vnodes: int = 16,
        ring_seed: int = 0,
        domain: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.env: Environment = topology.env
        self.network: Network = topology.network
        self.sync_period_s = float(sync_period_s)
        self.rng = RandomStreams(seed)
        #: administrative-domain id under a federated deployment (see
        #: :mod:`repro.federation`); qualifies endpoint labels so channels
        #: from different domains never alias.  None = classic single
        #: domain, byte-identical labels.
        self.domain = domain
        # -- deployment spec ------------------------------------------------
        # ``service_hosts=N, shards=S, service_replicas=k`` deploys the D*
        # services as a fabric over the topology's first N stable service
        # hosts.  The default (one host, one shard, one replica) keeps the
        # classic single-container deployment, byte-identical to the
        # pre-fabric runtime.
        n_service = (int(service_hosts) if service_hosts is not None
                     else len(topology.service_hosts))
        if n_service > len(topology.service_hosts):
            raise ValueError(
                f"deployment asks for {n_service} service hosts but the "
                f"topology provides {len(topology.service_hosts)}")
        fabric_mode = shards > 1 or service_replicas > 1 or n_service > 1
        self.fabric: Optional[ServiceFabric]
        #: the duck-typed service surface: a single ServiceContainer or a
        #: sharded/replicated ServiceFabric presenting the same interface
        self.container: Any
        if fabric_mode:
            self.fabric = ServiceFabric(
                self.env, topology.service_hosts[:n_service], self.network,
                shards=shards, replicas=service_replicas,
                engine=engine, use_connection_pool=use_connection_pool,
                registry=registry,
                heartbeat_period_s=heartbeat_period_s,
                timeout_multiplier=timeout_multiplier,
                monitor_period_s=monitor_period_s,
                max_data_schedule=max_data_schedule,
                account_monitor_bandwidth=account_monitor_bandwidth,
                host_heartbeat_period_s=host_heartbeat_period_s,
                host_timeout_multiplier=host_timeout_multiplier,
                host_sweep_period_s=host_sweep_period_s,
                failover_policy=failover_policy,
                ring_vnodes=ring_vnodes,
                ring_seed=ring_seed,
                domain=domain,
            )
            self.container = self.fabric
            self.router = FabricRouter(self.fabric)
        else:
            self.fabric = None
            self.container = ServiceContainer(
                self.env, topology.service_host, self.network,
                engine=engine, use_connection_pool=use_connection_pool,
                registry=registry,
                heartbeat_period_s=heartbeat_period_s,
                timeout_multiplier=timeout_multiplier,
                monitor_period_s=monitor_period_s,
                max_data_schedule=max_data_schedule,
                account_monitor_bandwidth=account_monitor_bandwidth,
                domain=domain,
            )
            self.router = StaticRouter(self.container.endpoints())
        self.container.start()
        self.ddc = ddc if ddc is not None else DistributedDataCatalog(
            self.env, ChordRing())
        # The service host(s) participate in the DHT so the ring is never empty.
        if self.fabric is not None:
            for host in self.fabric.hosts:
                self.ddc.join(host.name)
        else:
            self.ddc.join(topology.service_host.name)
        self.agents: Dict[str, HostAgent] = {}

    # ------------------------------------------------------------------ attachment
    def attach(self, host: Host, auto_sync: bool = True,
               channel_kind: Optional[ChannelKind] = None,
               sync_period_s: Optional[float] = None,
               stagger_start: bool = True,
               reservoir: bool = True,
               max_data_schedule: Optional[int] = None) -> HostAgent:
        """Attach a host to the runtime and (optionally) start its pull loop."""
        if host.name in self.agents and self.agents[host.name].host.online:
            return self.agents[host.name]
        agent = HostAgent(self, host, channel_kind=channel_kind,
                          sync_period_s=sync_period_s, reservoir=reservoir,
                          max_data_schedule=max_data_schedule)
        self.agents[host.name] = agent
        try:
            self.ddc.join(host.name)
        except ValueError:
            pass  # re-attachment after a crash: the DHT node may still be known
        if auto_sync:
            if stagger_start:
                # Desynchronise the pull loops like real deployments do.
                delay = self.rng.uniform(f"stagger-{host.name}", 0.0,
                                         agent.sync_period_s)
                def _delayed_start(agent: HostAgent = agent,
                                   delay: float = delay
                                   ) -> Generator[Event, Any, None]:
                    yield self.env.timeout(delay)
                    agent.start()
                self.env.process(_delayed_start())
            else:
                agent.start()
        return agent

    def attach_all(self, hosts: Optional[List[Host]] = None,
                   **kwargs: Any) -> List[HostAgent]:
        """Attach every worker host of the topology (or the given list)."""
        targets = hosts if hosts is not None else self.topology.worker_hosts
        return [self.attach(host, **kwargs) for host in targets]

    def detach(self, host: Host) -> None:
        agent = self.agents.pop(host.name, None)
        if agent is not None:
            agent.stop()
            self.ddc.leave(host.name)
            self.container.failure_detector.forget(host.name)

    def kick_sync(self, hosts: Optional[List[Host]] = None) -> Event:
        """Trigger a simultaneous synchronisation of many attached hosts.

        Returns an event that triggers once every kicked synchronisation
        (and the downloads it started) has finished.  This is the batched
        counterpart of the periodic per-host pull loop: all requests hit the
        Data Scheduler at the same simulated instant and the flow network
        coalesces the resulting transfer storm into single allocation passes.
        """
        if hosts is None:
            agents = list(self.agents.values())
        else:
            agents = [self.agent(h) for h in hosts]
        # Offline hosts cannot sync; including one would fail the whole batch.
        agents = [a for a in agents if a.host.online]
        return self.env.all_of([agent.sync_now() for agent in agents])

    def agent(self, host_or_name: Union[Host, str]) -> HostAgent:
        name = host_or_name.name if isinstance(host_or_name, Host) else host_or_name
        try:
            return self.agents[name]
        except KeyError:
            raise BitDewError(f"host {name!r} is not attached") from None

    # ------------------------------------------------------------------ convenience
    def run(self, until: Any = None) -> Any:
        """Advance the simulation (delegates to the kernel)."""
        return self.env.run(until)

    @property
    def data_catalog(self) -> Any:
        return self.container.data_catalog

    @property
    def data_repository(self) -> Any:
        return self.container.data_repository

    @property
    def data_transfer(self) -> Any:
        return self.container.data_transfer

    @property
    def data_scheduler(self) -> Any:
        return self.container.data_scheduler

    def crash_host(self, host: Host) -> None:
        """Simulate a machine crash: the host goes offline, flows abort, the
        agent's pull loop stops, and the failure detector will notice after
        the heartbeat timeout."""
        agent = self.agents.get(host.name)
        if agent is not None:
            agent.stop()
        host.fail()

    def restart_host(self, host: Host, auto_sync: bool = True) -> HostAgent:
        """Bring a crashed host back (fresh cache, like a re-installed worker)."""
        host.recover()
        self.agents.pop(host.name, None)
        return self.attach(host, auto_sync=auto_sync)

    def crash_service_host(self, host: Host) -> None:
        """Crash a fabric service host: its endpoints raise RpcError until
        the fabric's host detector declares it dead and the router reroutes
        the affected shards to live replicas (heartbeat-driven failover)."""
        host.fail()

    def recover_service_host(self, host: Host) -> None:
        """Bring a service host back; its heartbeats resume, the detector
        marks it alive and the router prefers its shards' primaries again."""
        host.recover()
