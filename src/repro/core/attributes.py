"""Data attributes and the attribute grammar (paper §3.2 and Listings 1/3).

Five attributes drive the runtime:

``replica``
    Number of instances that should exist at the same time; ``-1`` means
    "send to every node in the network".
``fault_tolerance``
    If set, a replica lost to a host crash is rescheduled to another node so
    that the number of available replicas stays at the requested level.
``lifetime``
    Either *absolute* (a duration after which the datum is obsolete) or
    *relative* (the datum becomes obsolete when a reference datum
    disappears).
``affinity``
    Placement dependency: the datum must be scheduled wherever the reference
    datum has been sent.  "The affinity attribute is stronger than replica."
``protocol``
    Preferred out-of-band transfer protocol (``ftp``, ``http``,
    ``bittorrent``).
``visibility``
    Cross-domain exposure under a federated deployment
    (:mod:`repro.federation`): ``public`` data may be listed, fetched and
    replicated across admitting domains; ``unlisted`` data is fetchable by
    explicit reference but never listed in federated searches nor exported
    by scheduled replication; ``private`` data never leaves its home
    domain.  Single-domain deployments ignore the field (everything is
    effectively local).

The textual grammar accepted by :func:`parse_attribute` follows the paper's
listings::

    attr update = { replicat = -1, oob = bittorrent, abstime = 43200 }
    attribute Genebase = { protocol = "BitTorrent", lifetime = Collector,
                           affinity = Sequence }

Key aliases (all used across the paper's listings) are normalised:
``replica``/``replicat``/``replication``; ``oob``/``protocol``;
``ft``/``faulttolerance``/``fault_tolerance``; ``abstime``/``absolute_lifetime``;
``lifetime``/``reltime`` (relative lifetime, referencing another datum or
attribute name); ``visibility``/``vis`` (federation exposure).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Union

from repro.storage.persistence import new_auid

__all__ = ["Attribute", "AttributeError_", "parse_attribute", "DEFAULT_ATTRIBUTE",
           "VISIBILITIES"]

#: ``replica = -1`` means "replicate to every node in the network".
REPLICATE_TO_ALL = -1

#: Federation visibility levels, least to most restrictive.
VISIBILITIES = ("public", "unlisted", "private")


class AttributeError_(ValueError):
    """Raised when an attribute definition cannot be parsed or is invalid.

    (The trailing underscore avoids shadowing the built-in ``AttributeError``.)
    """


@dataclass
class Attribute:
    """The directive metadata attached to data."""

    name: str = "default"
    replica: int = 1
    fault_tolerance: bool = False
    #: absolute lifetime in seconds from scheduling time; None = unbounded
    absolute_lifetime: Optional[float] = None
    #: name or uid of the datum whose existence this datum's life depends on
    relative_lifetime: Optional[str] = None
    #: name or uid of the datum this datum must be co-located with
    affinity: Optional[str] = None
    protocol: str = "http"
    #: cross-domain exposure under federation: public | unlisted | private
    visibility: str = "public"
    uid: str = field(default_factory=lambda: new_auid("attribute"))

    def __post_init__(self) -> None:
        if self.replica == 0 or self.replica < REPLICATE_TO_ALL:
            raise AttributeError_(
                f"replica must be a positive count or -1 (got {self.replica})"
            )
        if self.absolute_lifetime is not None and self.absolute_lifetime <= 0:
            raise AttributeError_("absolute_lifetime must be positive")
        if not self.protocol:
            raise AttributeError_("protocol must be a non-empty string")
        if self.visibility not in VISIBILITIES:
            raise AttributeError_(
                f"visibility must be one of {VISIBILITIES} "
                f"(got {self.visibility!r})")

    # -- semantics helpers ---------------------------------------------------
    @property
    def replicate_to_all(self) -> bool:
        return self.replica == REPLICATE_TO_ALL

    @property
    def has_relative_lifetime(self) -> bool:
        return self.relative_lifetime is not None

    @property
    def has_affinity(self) -> bool:
        return self.affinity is not None

    def getname(self) -> str:
        """Paper-style accessor (see the Updater listing)."""
        return self.name

    def getuid(self) -> str:
        return self.uid

    def with_name(self, name: str) -> "Attribute":
        return replace(self, name=name, uid=new_auid("attribute"))

    def describe(self) -> str:
        parts = [f"replica={self.replica}"]
        if self.fault_tolerance:
            parts.append("fault_tolerance=true")
        if self.absolute_lifetime is not None:
            parts.append(f"abstime={self.absolute_lifetime!r}")
        if self.relative_lifetime is not None:
            parts.append(f"lifetime={self.relative_lifetime}")
        if self.affinity is not None:
            parts.append(f"affinity={self.affinity}")
        if self.visibility != "public":
            parts.append(f"visibility={self.visibility}")
        parts.append(f"oob={self.protocol}")
        return f"attr {self.name} = {{{', '.join(parts)}}}"


#: the attribute used when data is scheduled without an explicit one
DEFAULT_ATTRIBUTE = Attribute(name="default")


# ---------------------------------------------------------------------------
# Attribute grammar
# ---------------------------------------------------------------------------

_HEADER_RE = re.compile(
    r"^\s*(?:attr|attribute)\s+(?P<name>[A-Za-z_][\w.-]*)\s*=\s*\{(?P<body>.*)\}\s*$",
    re.DOTALL,
)
_TRUE_VALUES = {"true", "yes", "on", "1"}
_FALSE_VALUES = {"false", "no", "off", "0"}

_KEY_ALIASES = {
    "replica": "replica",
    "replicat": "replica",
    "replication": "replica",
    "ft": "fault_tolerance",
    "faulttolerance": "fault_tolerance",
    "fault_tolerance": "fault_tolerance",
    "fault-tolerance": "fault_tolerance",
    "abstime": "absolute_lifetime",
    "absolute_lifetime": "absolute_lifetime",
    "abslifetime": "absolute_lifetime",
    "lifetime": "relative_lifetime",
    "reltime": "relative_lifetime",
    "relative_lifetime": "relative_lifetime",
    "affinity": "affinity",
    "oob": "protocol",
    "protocol": "protocol",
    "visibility": "visibility",
    "vis": "visibility",
}


def _strip_quotes(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == value[-1] and value[0] in "\"'":
        return value[1:-1]
    return value


def _split_body(body: str) -> Dict[str, str]:
    """Split ``key = value, key = value`` pairs, tolerating trailing commas."""
    pairs: Dict[str, str] = {}
    for chunk in body.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise AttributeError_(f"malformed attribute entry {chunk!r}")
        key, _, value = chunk.partition("=")
        key = key.strip().lower()
        if not key:
            raise AttributeError_(f"empty key in attribute entry {chunk!r}")
        pairs[key] = value.strip()
    return pairs


def parse_attribute(definition: str) -> Attribute:
    """Parse one attribute definition written in the paper's grammar."""
    if not isinstance(definition, str) or not definition.strip():
        raise AttributeError_("empty attribute definition")
    match = _HEADER_RE.match(definition.strip())
    if match is None:
        raise AttributeError_(
            f"cannot parse attribute definition {definition!r}; expected "
            "'attr <name> = { key = value, ... }'"
        )
    name = match.group("name")
    body = match.group("body")
    pairs = _split_body(body)

    fields: Dict[str, Union[int, float, bool, str, None]] = {}
    for raw_key, raw_value in pairs.items():
        key = _KEY_ALIASES.get(raw_key)
        if key is None:
            raise AttributeError_(f"unknown attribute key {raw_key!r}")
        value = _strip_quotes(raw_value)
        if key == "replica":
            try:
                fields[key] = int(value)
            except ValueError:
                raise AttributeError_(f"replica must be an integer (got {value!r})")
        elif key == "fault_tolerance":
            lowered = value.lower()
            if lowered in _TRUE_VALUES:
                fields[key] = True
            elif lowered in _FALSE_VALUES:
                fields[key] = False
            else:
                raise AttributeError_(
                    f"fault_tolerance must be a boolean (got {value!r})")
        elif key == "absolute_lifetime":
            try:
                fields[key] = float(value)
            except ValueError:
                raise AttributeError_(
                    f"absolute lifetime must be a number of seconds (got {value!r})")
        elif key == "protocol":
            fields[key] = value.lower()
        elif key == "visibility":
            fields[key] = value.lower()
        else:  # affinity, relative_lifetime: keep the reference as written
            fields[key] = value
    return Attribute(name=name, **fields)  # type: ignore[arg-type]
