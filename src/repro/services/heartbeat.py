"""Timeout-based failure detector for volatile hosts (paper §3.1, §4.4).

"Failures of volatile nodes is detected by the mean of timeout on periodical
heartbeats" — in the Figure 4 experiment the timeout is three heartbeat
periods (heartbeat 1 s, so a crash is noticed after ~3 s).

The detector is passive: services record heartbeats (every reservoir
synchronisation counts as one), and a periodic sweep declares hosts whose
last heartbeat is older than ``timeout_multiplier x period`` dead, invoking
the registered callbacks (the Data Scheduler uses this to trigger replica
repair for fault-tolerant data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.kernel import Environment

__all__ = ["FailureDetector", "HostLiveness"]


@dataclass
class HostLiveness:
    """What the detector knows about one host."""

    host_name: str
    last_heartbeat: float
    alive: bool = True
    declared_dead_at: Optional[float] = None


class FailureDetector:
    """Heartbeat bookkeeping + periodic timeout sweep."""

    def __init__(self, env: Environment, heartbeat_period_s: float = 1.0,
                 timeout_multiplier: float = 3.0, sweep_period_s: Optional[float] = None):
        if heartbeat_period_s <= 0:
            raise ValueError("heartbeat_period_s must be positive")
        if timeout_multiplier <= 0:
            raise ValueError("timeout_multiplier must be positive")
        self.env = env
        self.heartbeat_period_s = float(heartbeat_period_s)
        self.timeout_multiplier = float(timeout_multiplier)
        self.sweep_period_s = (
            float(sweep_period_s) if sweep_period_s is not None
            else self.heartbeat_period_s / 2.0
        )
        self._hosts: Dict[str, HostLiveness] = {}
        self._on_failure: List[Callable[[str], None]] = []
        self._on_recovery: List[Callable[[str], None]] = []
        self._running = False

    # -- configuration ---------------------------------------------------------
    @property
    def timeout_s(self) -> float:
        return self.heartbeat_period_s * self.timeout_multiplier

    def on_failure(self, callback: Callable[[str], None]) -> None:
        self._on_failure.append(callback)

    def on_recovery(self, callback: Callable[[str], None]) -> None:
        self._on_recovery.append(callback)

    # -- heartbeats ---------------------------------------------------------------
    def heartbeat(self, host_name: str) -> None:
        """Record a heartbeat (any message from the host counts)."""
        entry = self._hosts.get(host_name)
        now = self.env.now
        if entry is None:
            self._hosts[host_name] = HostLiveness(host_name, now)
            return
        entry.last_heartbeat = now
        if not entry.alive:
            entry.alive = True
            entry.declared_dead_at = None
            for callback in list(self._on_recovery):
                callback(host_name)

    def forget(self, host_name: str) -> None:
        """Stop tracking a host (graceful departure)."""
        self._hosts.pop(host_name, None)

    # -- queries ----------------------------------------------------------------------
    def is_alive(self, host_name: str) -> bool:
        entry = self._hosts.get(host_name)
        return bool(entry and entry.alive)

    def known_hosts(self) -> List[str]:
        return sorted(self._hosts)

    def alive_hosts(self) -> List[str]:
        return sorted(name for name, e in self._hosts.items() if e.alive)

    def liveness(self, host_name: str) -> Optional[HostLiveness]:
        return self._hosts.get(host_name)

    # -- the sweep -----------------------------------------------------------------------
    def sweep(self) -> List[str]:
        """Declare dead every host whose heartbeat timed out; return their names."""
        now = self.env.now
        newly_dead = []
        for entry in self._hosts.values():
            if entry.alive and now - entry.last_heartbeat > self.timeout_s:
                entry.alive = False
                entry.declared_dead_at = now
                newly_dead.append(entry.host_name)
        for name in newly_dead:
            for callback in list(self._on_failure):
                callback(name)
        return newly_dead

    def start(self) -> None:
        """Start the periodic sweep process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._sweep_loop())

    def stop(self) -> None:
        self._running = False

    def _sweep_loop(self):
        while self._running:
            yield self.env.timeout(self.sweep_period_s)
            self.sweep()
