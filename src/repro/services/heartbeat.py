"""Timeout-based failure detector for volatile hosts (paper §3.1, §4.4).

"Failures of volatile nodes is detected by the mean of timeout on periodical
heartbeats" — in the Figure 4 experiment the timeout is three heartbeat
periods (heartbeat 1 s, so a crash is noticed after ~3 s).

The detector is passive: services record heartbeats (every reservoir
synchronisation counts as one), and a periodic sweep declares hosts whose
last heartbeat is older than ``timeout_multiplier x period`` dead, invoking
the registered callbacks (the Data Scheduler uses this to trigger replica
repair for fault-tolerant data; the service fabric uses a second detector
over the *service* hosts to drive shard failover).

**Sweep cost.**  The sweep pops an expiry heap instead of scanning every
tracked host: each alive host keeps exactly one heap row carrying the
expiry deadline recorded when the row was pushed.  A popped row whose host
heartbeated since is re-armed with the refreshed deadline, so one sweep
does O(newly-dead + refreshed · log n) work — at production host counts the
periodic sweep no longer touches every host several times per heartbeat
period.  Newly dead hosts are declared in tracking order (the order the
old linear scan produced), so callback sequences are unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Environment

__all__ = ["FailureDetector", "HostLiveness"]


@dataclass
class HostLiveness:
    """What the detector knows about one host."""

    host_name: str
    last_heartbeat: float
    alive: bool = True
    declared_dead_at: Optional[float] = None
    #: tracking sequence number; identifies this incarnation of the host
    #: (``forget`` + re-heartbeat restarts it) and orders death callbacks.
    seq: int = 0


class FailureDetector:
    """Heartbeat bookkeeping + periodic timeout sweep."""

    def __init__(self, env: Environment, heartbeat_period_s: float = 1.0,
                 timeout_multiplier: float = 3.0, sweep_period_s: Optional[float] = None):
        if heartbeat_period_s <= 0:
            raise ValueError("heartbeat_period_s must be positive")
        if timeout_multiplier <= 0:
            raise ValueError("timeout_multiplier must be positive")
        self.env = env
        self.heartbeat_period_s = float(heartbeat_period_s)
        self.timeout_multiplier = float(timeout_multiplier)
        self.sweep_period_s = (
            float(sweep_period_s) if sweep_period_s is not None
            else self.heartbeat_period_s / 2.0
        )
        self._hosts: Dict[str, HostLiveness] = {}
        self._seq = itertools.count()
        #: (deadline, seq, host_name, heartbeat_at) rows, one live row per
        #: alive host; rows are validated against the entry's seq on pop
        #: (lazy deletion).  ``heartbeat_at`` carries the exact heartbeat
        #: time the row was armed with, so the sweep's timeout predicate is
        #: applied to the same float the linear scan would have used.
        self._expiry_heap: List[Tuple[float, int, str, float]] = []
        self._on_failure: List[Callable[[str], None]] = []
        self._on_recovery: List[Callable[[str], None]] = []
        self._running = False
        #: bumped by every start(); a sweep loop exits when it observes a
        #: newer epoch, so stop()+start() never leaves two loops sweeping.
        self._epoch = 0
        #: statistics (the scale benchmarks pin the sweep's examined count)
        self.sweeps = 0
        self.sweep_examined = 0

    # -- configuration ---------------------------------------------------------
    @property
    def timeout_s(self) -> float:
        return self.heartbeat_period_s * self.timeout_multiplier

    def on_failure(self, callback: Callable[[str], None]) -> None:
        self._on_failure.append(callback)

    def on_recovery(self, callback: Callable[[str], None]) -> None:
        self._on_recovery.append(callback)

    # -- heartbeats ---------------------------------------------------------------
    def _arm(self, entry: HostLiveness) -> None:
        heapq.heappush(self._expiry_heap,
                       (entry.last_heartbeat + self.timeout_s,
                        entry.seq, entry.host_name, entry.last_heartbeat))

    def heartbeat(self, host_name: str) -> None:
        """Record a heartbeat (any message from the host counts)."""
        entry = self._hosts.get(host_name)
        now = self.env.now
        if entry is None:
            entry = HostLiveness(host_name, now, seq=next(self._seq))
            self._hosts[host_name] = entry
            self._arm(entry)
            return
        entry.last_heartbeat = now
        if not entry.alive:
            entry.alive = True
            entry.declared_dead_at = None
            # A dead entry holds no live heap row; revival re-arms it.
            self._arm(entry)
            for callback in list(self._on_recovery):
                callback(host_name)

    def forget(self, host_name: str) -> None:
        """Stop tracking a host (graceful departure)."""
        self._hosts.pop(host_name, None)

    # -- queries ----------------------------------------------------------------------
    def is_alive(self, host_name: str) -> bool:
        entry = self._hosts.get(host_name)
        return bool(entry and entry.alive)

    def known_hosts(self) -> List[str]:
        return sorted(self._hosts)

    def alive_hosts(self) -> List[str]:
        return sorted(name for name, e in self._hosts.items() if e.alive)

    def liveness(self, host_name: str) -> Optional[HostLiveness]:
        return self._hosts.get(host_name)

    # -- the sweep -----------------------------------------------------------------------
    def _timed_out(self, last_heartbeat: float, now: float) -> bool:
        """The death predicate — one definition for heap rows and entries."""
        return now - last_heartbeat > self.timeout_s

    def sweep(self) -> List[str]:
        """Declare dead every host whose heartbeat timed out; return their names."""
        now = self.env.now
        self.sweeps += 1
        heap = self._expiry_heap
        dead_entries: List[HostLiveness] = []
        # Rows are ordered by the deadline recorded at push time; pop while
        # that recorded deadline has passed.  A popped row whose host
        # heartbeated since the push is re-armed with the fresh deadline
        # instead of dying, so each alive host is examined at most once per
        # timeout interval — not once per sweep.
        while heap and self._timed_out(heap[0][3], now):
            _deadline, seq, name, _beat = heapq.heappop(heap)
            self.sweep_examined += 1
            entry = self._hosts.get(name)
            if entry is None or entry.seq != seq or not entry.alive:
                continue  # forgotten, re-tracked, or stale row of a dead host
            if self._timed_out(entry.last_heartbeat, now):
                entry.alive = False
                entry.declared_dead_at = now
                dead_entries.append(entry)
            else:
                self._arm(entry)
        # Fire callbacks in tracking order, as the linear scan did.
        dead_entries.sort(key=lambda e: e.seq)
        newly_dead = [entry.host_name for entry in dead_entries]
        for name in newly_dead:
            for callback in list(self._on_failure):
                callback(name)
        return newly_dead

    def start(self) -> None:
        """Start the periodic sweep process (idempotent).

        ``stop()`` followed by ``start()`` hands sweeping over to a fresh
        loop: the epoch bump makes the old loop — possibly still pending on
        its sweep-period timeout — exit on wake-up instead of resuming,
        which previously left two concurrent sweep loops running.
        """
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self.env.process(self._sweep_loop(self._epoch))

    def stop(self) -> None:
        self._running = False

    def _sweep_loop(self, epoch: int):
        while self._running and self._epoch == epoch:
            yield self.env.timeout(self.sweep_period_s)
            if self._epoch != epoch:
                break  # a newer start() owns sweeping now
            self.sweep()
