"""Service container: instantiates and wires the D* services on a stable host.

The paper's runtime is "a flexible distributed service architecture"; in the
common deployment (and in all of the paper's experiments except where noted)
the four services run together on one stable node — the *service host*.
:class:`ServiceContainer` builds them with a shared database back-end, the
repository file system, the protocol registry and the failure detector, and
exposes RPC endpoints for the client-side APIs.

For the multi-host deployment — the Data Catalog and Data Scheduler sharded
by consistent hashing and replicated over several service hosts with
heartbeat-driven failover — see :mod:`repro.services.fabric` and
:mod:`repro.services.router`.  The container remains the default: a
single-host runtime behaves byte-identically to the pre-fabric code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.flows import Network
from repro.net.host import Host
from repro.net.rpc import ChannelKind, RpcChannel, RpcEndpoint
from repro.sim.kernel import Environment
from repro.services.data_catalog import DataCatalogService
from repro.services.data_repository import DataRepositoryService
from repro.services.data_scheduler import DataSchedulerService
from repro.services.data_transfer import DataTransferService
from repro.services.heartbeat import FailureDetector
from repro.storage.database import ConnectionPool, Database, DatabaseEngine, EmbeddedSQLEngine
from repro.storage.filesystem import LocalFileSystem
from repro.storage.persistence import PersistenceManager
from repro.transfer.registry import ProtocolRegistry, default_registry

__all__ = ["ServiceContainer"]


class ServiceContainer:
    """All D* services co-hosted on one stable node."""

    def __init__(
        self,
        env: Environment,
        host: Host,
        network: Network,
        engine: Optional[DatabaseEngine] = None,
        use_connection_pool: bool = True,
        pool_size: int = 8,
        registry: Optional[ProtocolRegistry] = None,
        heartbeat_period_s: float = 1.0,
        timeout_multiplier: float = 3.0,
        monitor_period_s: float = 0.5,
        max_data_schedule: int = 16,
        account_monitor_bandwidth: bool = True,
        domain: Optional[str] = None,
    ):
        if not host.stable:
            raise ValueError("the service container must run on a stable host")
        self.env = env
        self.host = host
        self.network = network
        #: administrative-domain id qualifying endpoint labels under a
        #: federated deployment (None = classic single-domain labels)
        self.domain = domain

        engine = engine if engine is not None else EmbeddedSQLEngine()
        pool = ConnectionPool(env, engine, size=pool_size) if use_connection_pool else None
        self.database = Database(env, engine=engine, pool=pool)
        self.persistence = PersistenceManager(self.database)

        self.registry = registry if registry is not None else default_registry(env, network)
        self.failure_detector = FailureDetector(
            env, heartbeat_period_s=heartbeat_period_s,
            timeout_multiplier=timeout_multiplier)

        self.data_catalog = DataCatalogService(self.database)
        self.data_repository = DataRepositoryService(
            env, host, filesystem=LocalFileSystem(owner=f"{host.name}:repository"))
        self.data_transfer = DataTransferService(
            env, host, network, self.registry,
            monitor_period_s=monitor_period_s,
            account_monitor_bandwidth=account_monitor_bandwidth)
        self.data_scheduler = DataSchedulerService(
            env, database=self.database, failure_detector=self.failure_detector,
            max_data_schedule=max_data_schedule)

        self._started = False

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        """Start background service processes (failure-detector sweep)."""
        if self._started:
            return
        self._started = True
        self.failure_detector.start()

    def stop(self) -> None:
        self.failure_detector.stop()
        self._started = False

    # -- endpoints ----------------------------------------------------------------
    def endpoints(self) -> dict:
        """The four service endpoints, keyed by the paper's short names."""
        return {
            "dc": RpcEndpoint(self.data_catalog, host=self.host,
                              name="DataCatalog", domain=self.domain),
            "dr": RpcEndpoint(self.data_repository, host=self.host,
                              name="DataRepository", domain=self.domain),
            "dt": RpcEndpoint(self.data_transfer, host=self.host,
                              name="DataTransfer", domain=self.domain),
            "ds": RpcEndpoint(self.data_scheduler, host=self.host,
                              name="DataScheduler", domain=self.domain),
        }

    def channel(self, kind: ChannelKind = ChannelKind.RMI_REMOTE) -> RpcChannel:
        """A fresh communication channel towards this container's services."""
        return RpcChannel(self.env, kind)
