"""Data Scheduler service (DS) — Algorithm 1 of the paper.

The DS owns the *data-driven* scheduling of BitDew: reservoir hosts
periodically synchronise with it, presenting the set of data held in their
local cache (Δk); the DS scans the data under its management (Θ) and
returns the new cache content (Ψk).  The host then deletes obsolete data
(Δk \\ Ψk), keeps validated data (Δk ∩ Ψk) and downloads newly assigned
data (Ψk \\ Δk).

Scheduling decisions follow the paper's attributes:

* **lifetime** — data whose absolute lifetime expired, or whose relative
  lifetime references a datum no longer managed, is dropped;
* **affinity** — a datum with an affinity towards data present in the host's
  cache is always assigned (affinity is stronger than replica);
* **replica** — a datum is assigned while its number of active owners is
  below the requested replica count (``-1`` = every host);
* **fault tolerance** — owners are tracked per datum; when the failure
  detector declares a host dead, the host is removed from the owner lists of
  fault-tolerant data only, which makes the runtime re-schedule them
  elsewhere (non-fault-tolerant replicas simply stay unavailable while the
  host is down, §3.2);
* at most ``max_data_schedule`` new data are assigned per synchronisation.

Note: line 21 of the paper's pseudo-code reads ``replica < |Ω|``; given the
prose ("schedule new data transfers to hosts if the number of owners is less
than the number of replica") this is a typo for ``|Ω| < replica``, which is
what this implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.attributes import Attribute, DEFAULT_ATTRIBUTE
from repro.core.data import Data
from repro.core.exceptions import SchedulingError
from repro.sim.kernel import Environment
from repro.services.heartbeat import FailureDetector
from repro.storage.database import Database

__all__ = ["DataSchedulerService", "ScheduledEntry", "SyncResult"]


@dataclass
class ScheduledEntry:
    """One datum under the scheduler's management (an element of Θ)."""

    data: Data
    attribute: Attribute
    scheduled_at: float
    #: active owners Ω(D): hosts believed to hold a live replica
    owners: Set[str] = field(default_factory=set)
    #: hosts that pinned the datum (it must stay with them; never reclaimed)
    pinned_on: Set[str] = field(default_factory=set)

    @property
    def uid(self) -> str:
        return self.data.uid


@dataclass
class SyncResult:
    """What a reservoir host receives from one synchronisation."""

    host_name: str
    #: full new cache content Ψk: (data, attribute) pairs
    assigned: List[Tuple[Data, Attribute]]
    #: uids the host should delete (Δk \\ Ψk)
    to_delete: List[str]
    #: uids the host should download (Ψk \\ Δk)
    to_download: List[str]
    time: float = 0.0


class DataSchedulerService:
    """Interprets data attributes and generates transfer orders (Algorithm 1)."""

    def __init__(
        self,
        env: Environment,
        database: Optional[Database] = None,
        failure_detector: Optional[FailureDetector] = None,
        max_data_schedule: int = 16,
        sync_cost_statements: int = 1,
    ):
        self.env = env
        self.database = database
        self.failure_detector = failure_detector
        if self.failure_detector is not None:
            self.failure_detector.on_failure(self._on_host_failure)
        self.max_data_schedule = int(max_data_schedule)
        self.sync_cost_statements = int(sync_cost_statements)
        #: Θ: uid -> entry
        self._entries: Dict[str, ScheduledEntry] = {}
        #: per-host cache view from the last synchronisation
        self._host_caches: Dict[str, Set[str]] = {}
        #: statistics
        self.sync_count = 0
        self.assignments = 0
        self.repairs_triggered = 0

    # ------------------------------------------------------------------ Θ management
    def schedule(self, data: Data, attribute: Optional[Attribute] = None) -> ScheduledEntry:
        """Associate *data* with *attribute* and put it under management."""
        attr = attribute if attribute is not None else DEFAULT_ATTRIBUTE
        entry = self._entries.get(data.uid)
        if entry is None:
            entry = ScheduledEntry(data=data, attribute=attr,
                                   scheduled_at=self.env.now)
            self._entries[data.uid] = entry
        else:
            entry.attribute = attr
        if self.database is not None:
            self.database.raw_upsert("ds.entries", data.uid, {
                "data": data, "attribute": attr, "at": self.env.now})
        return entry

    def pin(self, data: Data, host_name: str,
            attribute: Optional[Attribute] = None) -> ScheduledEntry:
        """Schedule *data* and record that *host_name* owns it (paper §3.3)."""
        entry = self.schedule(data, attribute)
        entry.pinned_on.add(host_name)
        entry.owners.add(host_name)
        return entry

    def unschedule(self, data_uid: str) -> bool:
        """Remove a datum from management; hosts drop it at their next sync."""
        removed = self._entries.pop(data_uid, None)
        if self.database is not None:
            self.database.raw_delete("ds.entries", data_uid)
        return removed is not None

    def entry(self, data_uid: str) -> Optional[ScheduledEntry]:
        return self._entries.get(data_uid)

    def entries(self) -> List[ScheduledEntry]:
        return list(self._entries.values())

    def owners_of(self, data_uid: str) -> Set[str]:
        entry = self._entries.get(data_uid)
        return set(entry.owners) if entry else set()

    @property
    def managed_count(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ lifetime
    def _lifetime_valid(self, entry: ScheduledEntry) -> bool:
        attr = entry.attribute
        if attr.absolute_lifetime is not None:
            if self.env.now > entry.scheduled_at + attr.absolute_lifetime:
                return False
        if attr.relative_lifetime is not None:
            if self._resolve_reference(attr.relative_lifetime) is None:
                return False
        return True

    def _resolve_reference(self, reference: str) -> Optional[ScheduledEntry]:
        """Resolve an affinity / relative-lifetime reference (uid or name)."""
        matches = self._resolve_all(reference)
        return matches[0] if matches else None

    def _resolve_all(self, reference: str) -> List[ScheduledEntry]:
        """All managed entries a reference designates.

        A reference may be a data uid, a data name, or an *attribute* name
        (the paper's Listing 3 uses attribute names: ``affinity = Sequence``
        designates every datum scheduled under the Sequence attribute).
        """
        entry = self._entries.get(reference)
        if entry is not None:
            return [entry]
        return [
            candidate for candidate in self._entries.values()
            if candidate.data.name == reference
            or candidate.attribute.name == reference
        ]

    def expire_lifetimes(self) -> List[str]:
        """Drop entries whose lifetime expired; returns the dropped uids.

        Relative lifetimes are resolved transitively: deleting the Collector
        obsoletes every datum whose lifetime references it (§5).
        """
        dropped: List[str] = []
        changed = True
        while changed:
            changed = False
            for uid, entry in list(self._entries.items()):
                if not self._lifetime_valid(entry):
                    del self._entries[uid]
                    dropped.append(uid)
                    changed = True
        return dropped

    # ------------------------------------------------------------------ Algorithm 1
    def compute_schedule(self, host_name: str, cached_uids: Set[str],
                         reservoir: bool = True,
                         max_new: Optional[int] = None) -> SyncResult:
        """Pure scheduling decision (no simulated cost): Algorithm 1.

        ``reservoir`` distinguishes the paper's two volatile roles (§3.1):
        reservoir hosts offer their storage and are targets for replica
        placement; client hosts only receive data through affinity to data
        they already hold (e.g. results flowing to the master's Collector).

        ``max_new`` overrides ``MaxDataSchedule`` for this synchronisation
        (hosts with plenty of bandwidth — typically the master collecting
        results — may ask for a larger batch).
        """
        limit = self.max_data_schedule if max_new is None else int(max_new)
        theta = self._entries
        psi: Dict[str, ScheduledEntry] = {}

        # -- Step 1: keep cached data that is still managed and still alive.
        for uid in cached_uids:
            entry = theta.get(uid)
            if entry is None:
                continue
            if not self._lifetime_valid(entry):
                continue
            psi[uid] = entry
            entry.owners.add(host_name)

        # -- Step 2: assign new data.
        new_uids: List[str] = []
        for uid, entry in theta.items():
            if uid in psi or uid in cached_uids:
                continue
            if not self._lifetime_valid(entry):
                continue
            assigned = False

            # Affinity resolution: schedule wherever the referenced data lives.
            if entry.attribute.has_affinity:
                references = self._resolve_all(entry.attribute.affinity)
                if any(ref.uid in psi or ref.uid in cached_uids
                       for ref in references):
                    assigned = True

            # Replica placement (reservoir hosts only).
            if not assigned and reservoir:
                attr = entry.attribute
                if attr.replicate_to_all or len(entry.owners) < attr.replica:
                    # Affinity-constrained data is *only* placed by affinity.
                    if not attr.has_affinity:
                        assigned = True

            if assigned:
                psi[uid] = entry
                entry.owners.add(host_name)
                new_uids.append(uid)
                self.assignments += 1
            if len(new_uids) >= limit:
                break

        to_delete = sorted(uid for uid in cached_uids if uid not in psi)
        assigned_pairs = [(e.data, e.attribute) for e in psi.values()]
        self._host_caches[host_name] = set(psi.keys())
        return SyncResult(host_name=host_name, assigned=assigned_pairs,
                          to_delete=to_delete, to_download=sorted(new_uids),
                          time=self.env.now)

    def synchronize(self, host_name: str, cached_uids: Set[str],
                    reservoir: bool = True, max_new: Optional[int] = None):
        """Generator: the remote synchronisation call (heartbeat + Algorithm 1).

        This is what volatile hosts invoke periodically; it counts as a
        heartbeat for the failure detector and pays one database statement.
        """
        self.sync_count += 1
        if self.failure_detector is not None:
            self.failure_detector.heartbeat(host_name)
        if self.database is not None:
            result = yield from self.database.execute(
                lambda: self.compute_schedule(host_name, set(cached_uids),
                                              reservoir=reservoir,
                                              max_new=max_new),
                statements=self.sync_cost_statements,
            )
        else:
            yield self.env.timeout(0.0)
            result = self.compute_schedule(host_name, set(cached_uids),
                                           reservoir=reservoir, max_new=max_new)
        return result

    def heartbeat(self, host_name: str) -> bool:
        """Record a liveness heartbeat from a volatile host.

        Reservoir hosts send these periodically, independently of the (possibly
        long-running) synchronisation/download cycle, so that a host busy
        downloading a large file is not declared dead (§3.1).
        """
        if self.failure_detector is not None:
            self.failure_detector.heartbeat(host_name)
            return True
        return False

    def confirm_ownership(self, host_name: str, data_uid: str) -> None:
        """Record that *host_name* finished downloading *data_uid*."""
        entry = self._entries.get(data_uid)
        if entry is not None:
            entry.owners.add(host_name)

    def release_ownership(self, host_name: str, data_uid: str) -> None:
        entry = self._entries.get(data_uid)
        if entry is not None:
            entry.owners.discard(host_name)
            entry.pinned_on.discard(host_name)

    # ------------------------------------------------------------------ fault tolerance
    def _on_host_failure(self, host_name: str) -> None:
        """Failure-detector callback: repair owner lists of fault-tolerant data."""
        self._host_caches.pop(host_name, None)
        for entry in self._entries.values():
            if host_name not in entry.owners:
                continue
            if entry.attribute.fault_tolerance:
                # Remove the faulty owner so the datum is re-scheduled elsewhere.
                entry.owners.discard(host_name)
                entry.pinned_on.discard(host_name)
                self.repairs_triggered += 1
            # Non-fault-tolerant data: the replica stays registered (it will be
            # available again if the host comes back), as prescribed in §3.2.

    def missing_replicas(self) -> Dict[str, int]:
        """uids whose live owner count is below the requested replica level."""
        missing: Dict[str, int] = {}
        for uid, entry in self._entries.items():
            attr = entry.attribute
            if attr.replicate_to_all:
                continue
            deficit = attr.replica - len(entry.owners)
            if deficit > 0:
                missing[uid] = deficit
        return missing
