"""Data Scheduler service (DS) — Algorithm 1 of the paper.

The DS owns the *data-driven* scheduling of BitDew: reservoir hosts
periodically synchronise with it, presenting the set of data held in their
local cache (Δk); the DS decides the new cache content (Ψk).  The host then
deletes obsolete data (Δk \\ Ψk), keeps validated data (Δk ∩ Ψk) and
downloads newly assigned data (Ψk \\ Δk).

Scheduling decisions follow the paper's attributes:

* **lifetime** — data whose absolute lifetime expired, or whose relative
  lifetime references a datum no longer managed, is dropped;
* **affinity** — a datum with an affinity towards data present in the host's
  cache is always assigned (affinity is stronger than replica);
* **replica** — a datum is assigned while its number of active owners is
  below the requested replica count (``-1`` = every host);
* **fault tolerance** — owners are tracked per datum; when the failure
  detector declares a host dead, the host is removed from the owner lists of
  fault-tolerant data only, which makes the runtime re-schedule them
  elsewhere (non-fault-tolerant replicas simply stay unavailable while the
  host is down, §3.2);
* at most ``max_data_schedule`` new data are assigned per synchronisation.

**Indexing.**  The naive reading of Algorithm 1 scans all of Θ on every
synchronisation and resolves affinity references with a linear search.  This
implementation instead maintains reverse indexes so per-sync work is
proportional to what is actually assignable:

* ``name → uids`` and ``attribute-name → uids`` make reference resolution
  (affinity, relative lifetime) O(1) per lookup;
* ``reference → dependent uids`` maps (affinity and relative-lifetime
  dependents) turn "which data follows the data this host holds?" into a
  set union over the host's cache instead of a scan over Θ;
* a **replica-deficit set** holds exactly the non-affinity data whose owner
  count is below its replica target (or that replicates to all), i.e. the
  data assignable by the replica rule;
* an ``owner → uids`` index makes the failure-detector callback O(data
  owned by the failed host);
* a **lifetime-expiry heap** (plus an unresolved-reference set maintained
  incrementally) lets :meth:`expire_lifetimes` drop exactly the expired
  entries and cascade through relative-lifetime dependents with a worklist,
  instead of rescanning Θ to a fixpoint.

``compute_schedule`` walks a candidate heap in Θ-insertion order, so its
decisions — including the one-forward-pass treatment of affinity chains —
are identical to the reference full-scan implementation.

Note: line 21 of the paper's pseudo-code reads ``replica < |Ω|``; given the
prose ("schedule new data transfers to hosts if the number of owners is less
than the number of replica") this is a typo for ``|Ω| < replica``, which is
what this implementation does.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

try:  # numpy only accelerates the batched placement path; it is optional
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

from repro.core.attributes import Attribute, DEFAULT_ATTRIBUTE
from repro.core.data import Data
from repro.core.exceptions import SchedulingError
from repro.sim.kernel import Environment
from repro.services.heartbeat import FailureDetector
from repro.storage.database import Database

__all__ = ["DataSchedulerService", "ScheduledEntry", "SyncResult"]


@dataclass
class ScheduledEntry:
    """One datum under the scheduler's management (an element of Θ)."""

    data: Data
    attribute: Attribute
    scheduled_at: float
    #: active owners Ω(D): hosts believed to hold a live replica
    owners: Set[str] = field(default_factory=set)
    #: hosts that pinned the datum (it must stay with them; never reclaimed)
    pinned_on: Set[str] = field(default_factory=set)
    #: Θ-insertion sequence number; preserves the reference scan order
    seq: int = 0
    #: bumped when the attribute is replaced (invalidates expiry-heap rows)
    generation: int = 0

    @property
    def uid(self) -> str:
        return self.data.uid


@dataclass
class SyncResult:
    """What a reservoir host receives from one synchronisation."""

    host_name: str
    #: full new cache content Ψk: (data, attribute) pairs
    assigned: List[Tuple[Data, Attribute]]
    #: uids the host should delete (Δk \\ Ψk)
    to_delete: List[str]
    #: uids the host should download (Ψk \\ Δk)
    to_download: List[str]
    time: float = 0.0


class DataSchedulerService:
    """Interprets data attributes and generates transfer orders (Algorithm 1)."""

    def __init__(
        self,
        env: Environment,
        database: Optional[Database] = None,
        failure_detector: Optional[FailureDetector] = None,
        max_data_schedule: int = 16,
        sync_cost_statements: int = 1,
    ):
        self.env = env
        self.database = database
        self.failure_detector = failure_detector
        if self.failure_detector is not None:
            self.failure_detector.on_failure(self._on_host_failure)
        self.max_data_schedule = int(max_data_schedule)
        self.sync_cost_statements = int(sync_cost_statements)
        #: Θ: uid -> entry (insertion-ordered)
        self._entries: Dict[str, ScheduledEntry] = {}
        self._seq = itertools.count()
        #: per-host cache view from the last synchronisation
        self._host_caches: Dict[str, Set[str]] = {}
        # -- reverse indexes over Θ ----------------------------------------
        #: data name -> uids
        self._by_name: Dict[str, Set[str]] = {}
        #: attribute name -> uids
        self._by_attr: Dict[str, Set[str]] = {}
        #: host name -> uids the host owns
        self._owner_index: Dict[str, Set[str]] = {}
        #: non-affinity uids assignable by the replica rule
        self._replica_deficit: Set[str] = set()
        #: the deficit ordered by Θ position: (seq, uid) rows with lazy
        #: deletion, so one sync pops only the candidates it examines
        #: instead of ordering the whole deficit set
        self._deficit_heap: List[Tuple[int, str]] = []
        #: affinity reference -> uids whose attribute.affinity names it
        self._affinity_dependents: Dict[str, Set[str]] = {}
        #: lifetime reference -> uids whose relative_lifetime names it
        self._lifetime_dependents: Dict[str, Set[str]] = {}
        #: uids whose relative-lifetime reference currently resolves to nothing
        self._unresolved: Set[str] = set()
        #: managed entries carrying any lifetime attribute; the batched
        #: placement fast path requires this to be zero (see
        #: :meth:`compute_schedule_batch`)
        self._lifetime_count = 0
        #: (expire_at, seq, uid, generation) rows; validated lazily on pop
        self._expiry_heap: List[Tuple[float, int, str, int]] = []
        #: uids frozen during a shard migration: compute_schedule makes no
        #: *new* assignments of these (existing owners keep their copies)
        self._quiesced: Set[str] = set()
        #: migration dirty-tracking callback (set by the rebalance
        #: coordinator while this shard is a migration source): called with
        #: the uid of every Θ mutation that happens outside the router's
        #: tracked request path — scheduler-internal owner changes from
        #: syncs, failure-detector repairs, expiries
        self._mutation_hook = None
        #: statistics
        self.sync_count = 0
        self.assignments = 0
        self.repairs_triggered = 0
        #: Θ-entries examined during step 2 of compute_schedule (the scan the
        #: indexes are meant to shrink; scheduler tests pin this)
        self.entries_examined = 0

    # ------------------------------------------------------------------ indexing
    def _reference_resolves(self, reference: str) -> bool:
        """True if *reference* designates at least one managed entry."""
        return bool(reference in self._entries
                    or self._by_name.get(reference)
                    or self._by_attr.get(reference))

    def _mark_unresolved_dependents(self, reference: str) -> None:
        """A provider of *reference* disappeared; re-check its dependents."""
        deps = self._lifetime_dependents.get(reference)
        if not deps or self._reference_resolves(reference):
            return
        for dep_uid in deps:
            if dep_uid in self._entries:
                self._unresolved.add(dep_uid)

    def _resolve_dependents(self, reference: str) -> None:
        """A provider of *reference* appeared; its dependents resolve again."""
        deps = self._lifetime_dependents.get(reference)
        if not deps:
            return
        self._unresolved.difference_update(deps)
        for dep_uid in deps:
            # A dependent evicted from the deficit while its reference was
            # dangling becomes assignable again.
            entry = self._entries.get(dep_uid)
            if entry is not None:
                self._update_deficit(entry)

    def _update_deficit(self, entry: ScheduledEntry) -> None:
        attr = entry.attribute
        assignable = (not attr.has_affinity) and (
            attr.replicate_to_all or len(entry.owners) < attr.replica)
        uid = entry.uid
        if assignable:
            if uid not in self._replica_deficit:
                self._replica_deficit.add(uid)
                heapq.heappush(self._deficit_heap, (entry.seq, uid))
        else:
            self._replica_deficit.discard(uid)

    def _attach_attribute(self, entry: ScheduledEntry) -> None:
        """Index the attribute-derived facts of *entry* (call after setting it)."""
        uid = entry.uid
        attr = entry.attribute
        self._by_attr.setdefault(attr.name, set()).add(uid)
        # The new attribute name may satisfy dangling relative lifetimes.
        self._resolve_dependents(attr.name)
        if attr.has_affinity:
            self._affinity_dependents.setdefault(attr.affinity, set()).add(uid)
        if attr.relative_lifetime is not None:
            self._lifetime_dependents.setdefault(
                attr.relative_lifetime, set()).add(uid)
            if not self._reference_resolves(attr.relative_lifetime):
                self._unresolved.add(uid)
        if attr.absolute_lifetime is not None:
            heapq.heappush(self._expiry_heap,
                           (entry.scheduled_at + attr.absolute_lifetime,
                            entry.seq, uid, entry.generation))
        if attr.absolute_lifetime is not None or attr.relative_lifetime is not None:
            self._lifetime_count += 1
        self._update_deficit(entry)

    def _detach_attribute(self, entry: ScheduledEntry) -> None:
        """Un-index the attribute-derived facts of *entry*."""
        uid = entry.uid
        attr = entry.attribute
        holders = self._by_attr.get(attr.name)
        if holders is not None:
            holders.discard(uid)
            if not holders:
                del self._by_attr[attr.name]
        self._mark_unresolved_dependents(attr.name)
        if attr.has_affinity:
            deps = self._affinity_dependents.get(attr.affinity)
            if deps is not None:
                deps.discard(uid)
                if not deps:
                    del self._affinity_dependents[attr.affinity]
        if attr.relative_lifetime is not None:
            deps = self._lifetime_dependents.get(attr.relative_lifetime)
            if deps is not None:
                deps.discard(uid)
                if not deps:
                    del self._lifetime_dependents[attr.relative_lifetime]
        self._unresolved.discard(uid)
        self._replica_deficit.discard(uid)
        if attr.absolute_lifetime is not None or attr.relative_lifetime is not None:
            self._lifetime_count -= 1
        entry.generation += 1   # expiry-heap rows for the old attribute die

    def _remove_entry(self, uid: str) -> Optional[ScheduledEntry]:
        entry = self._entries.pop(uid, None)
        if entry is None:
            return None
        self._detach_attribute(entry)
        holders = self._by_name.get(entry.data.name)
        if holders is not None:
            holders.discard(uid)
            if not holders:
                del self._by_name[entry.data.name]
        for host in entry.owners:
            owned = self._owner_index.get(host)
            if owned is not None:
                owned.discard(uid)
                if not owned:
                    del self._owner_index[host]
        # References this entry provided may now be dangling.
        self._mark_unresolved_dependents(uid)
        self._mark_unresolved_dependents(entry.data.name)
        if self._mutation_hook is not None:
            self._mutation_hook(uid)
        return entry

    def _add_owner(self, entry: ScheduledEntry, host_name: str) -> None:
        if host_name in entry.owners:
            return
        entry.owners.add(host_name)
        self._owner_index.setdefault(host_name, set()).add(entry.uid)
        self._update_deficit(entry)
        if self._mutation_hook is not None:
            self._mutation_hook(entry.uid)

    def _remove_owner(self, entry: ScheduledEntry, host_name: str) -> None:
        if host_name not in entry.owners:
            return
        entry.owners.discard(host_name)
        owned = self._owner_index.get(host_name)
        if owned is not None:
            owned.discard(entry.uid)
            if not owned:
                del self._owner_index[host_name]
        self._update_deficit(entry)
        if self._mutation_hook is not None:
            self._mutation_hook(entry.uid)

    # ------------------------------------------------------------------ Θ management
    def schedule(self, data: Data, attribute: Optional[Attribute] = None) -> ScheduledEntry:
        """Associate *data* with *attribute* and put it under management."""
        attr = attribute if attribute is not None else DEFAULT_ATTRIBUTE
        entry = self._entries.get(data.uid)
        if entry is None:
            entry = ScheduledEntry(data=data, attribute=attr,
                                   scheduled_at=self.env.now,
                                   seq=next(self._seq))
            self._entries[data.uid] = entry
            self._by_name.setdefault(data.name, set()).add(data.uid)
            # A new provider may satisfy dangling relative lifetimes.
            self._resolve_dependents(data.uid)
            self._resolve_dependents(data.name)
            self._attach_attribute(entry)
        else:
            self._detach_attribute(entry)
            entry.attribute = attr
            self._attach_attribute(entry)
        if self.database is not None:
            self.database.raw_upsert("ds.entries", data.uid, {
                "data": data, "attribute": attr, "at": self.env.now})
        if self._mutation_hook is not None:
            self._mutation_hook(data.uid)
        return entry

    def pin(self, data: Data, host_name: str,
            attribute: Optional[Attribute] = None) -> ScheduledEntry:
        """Schedule *data* and record that *host_name* owns it (paper §3.3)."""
        entry = self.schedule(data, attribute)
        entry.pinned_on.add(host_name)
        self._add_owner(entry, host_name)
        return entry

    def unschedule(self, data_uid: str) -> bool:
        """Remove a datum from management; hosts drop it at their next sync."""
        removed = self._remove_entry(data_uid)
        if self.database is not None:
            self.database.raw_delete("ds.entries", data_uid)
        return removed is not None

    def entry(self, data_uid: str) -> Optional[ScheduledEntry]:
        return self._entries.get(data_uid)

    def entries(self) -> List[ScheduledEntry]:
        return list(self._entries.values())  # detlint: ignore[DET004] — Θ is keyed by registration order (event-deterministic); accessor preserves it

    def owners_of(self, data_uid: str) -> Set[str]:
        entry = self._entries.get(data_uid)
        return set(entry.owners) if entry else set()

    @property
    def managed_count(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ lifetime
    def _lifetime_valid(self, entry: ScheduledEntry) -> bool:
        attr = entry.attribute
        if attr.absolute_lifetime is not None:
            if self.env.now > entry.scheduled_at + attr.absolute_lifetime:
                return False
        if attr.relative_lifetime is not None:
            if not self._reference_resolves(attr.relative_lifetime):
                return False
        return True

    def expire_lifetimes(self) -> List[str]:
        """Drop entries whose lifetime expired; returns the dropped uids.

        Absolute expiries pop off a time-ordered heap (rows are validated
        against the entry's generation, so attribute replacement invalidates
        stale rows lazily).  Relative lifetimes are resolved transitively
        through the dependents index: deleting the Collector obsoletes every
        datum whose lifetime references it (§5), which may dangle further
        references — the unresolved set acts as the cascade worklist.
        """
        dropped: List[str] = []
        now = self.env.now
        heap = self._expiry_heap
        while heap and heap[0][0] < now:
            _expire_at, seq, uid, generation = heapq.heappop(heap)
            entry = self._entries.get(uid)
            if entry is None or entry.seq != seq \
                    or entry.generation != generation:
                # Unscheduled, re-registered (a fresh entry restarts its
                # generation, so the seq — unique per incarnation — is what
                # detects rows from a previous life), or re-scheduled with a
                # different attribute since the push.
                continue
            self._remove_entry(uid)
            dropped.append(uid)
        while self._unresolved:
            # Drain in sorted order: set.pop() would emit `dropped` in
            # hash order, which varies across processes.  A while-loop
            # (not a snapshot) because _remove_entry can mark further
            # dependents unresolved.
            uid = min(self._unresolved)
            self._unresolved.discard(uid)
            if uid in self._entries:
                self._remove_entry(uid)
                dropped.append(uid)
        return dropped

    # ------------------------------------------------------------------ Algorithm 1
    def _affinity_satisfied(self, reference: str, psi: Dict[str, ScheduledEntry],
                            cached_uids: Set[str]) -> bool:
        """True if the affinity *reference* designates data the host holds."""
        if reference in self._entries:
            return reference in psi or reference in cached_uids
        for index in (self._by_name, self._by_attr):
            for uid in index.get(reference, ()):
                if uid in psi or uid in cached_uids:
                    return True
        return False

    def _push_affinity_candidates(self, provider: ScheduledEntry,
                                  heap: List[Tuple[int, str]],
                                  pushed: Set[str],
                                  min_seq: Optional[int]) -> None:
        """Queue the entries whose affinity references *provider*.

        ``min_seq`` reproduces the reference implementation's single forward
        pass: data assigned at position *s* can only pull in affinity
        dependents that appear later in Θ than *s* within the same
        synchronisation (earlier ones wait for the host's next sync).
        """
        dependents = self._affinity_dependents
        for reference in (provider.uid, provider.data.name,
                          provider.attribute.name):
            for dep_uid in dependents.get(reference, ()):
                if dep_uid in pushed:
                    continue
                dep = self._entries.get(dep_uid)
                if dep is None:
                    continue
                if min_seq is not None and dep.seq <= min_seq:
                    continue
                pushed.add(dep_uid)
                heapq.heappush(heap, (dep.seq, dep_uid))

    def compute_schedule(self, host_name: str, cached_uids: Set[str],
                         reservoir: bool = True,
                         max_new: Optional[int] = None) -> SyncResult:
        """Pure scheduling decision (no simulated cost): Algorithm 1.

        ``reservoir`` distinguishes the paper's two volatile roles (§3.1):
        reservoir hosts offer their storage and are targets for replica
        placement; client hosts only receive data through affinity to data
        they already hold (e.g. results flowing to the master's Collector).

        ``max_new`` overrides ``MaxDataSchedule`` for this synchronisation
        (hosts with plenty of bandwidth — typically the master collecting
        results — may ask for a larger batch).

        Step 2 examines only *candidates*: the replica-deficit set plus the
        affinity dependents of data the host holds, walked in Θ-insertion
        order via a heap — never all of Θ.
        """
        limit = self.max_data_schedule if max_new is None else int(max_new)
        theta = self._entries
        psi: Dict[str, ScheduledEntry] = {}
        candidate_heap: List[Tuple[int, str]] = []
        pushed: Set[str] = set()

        # -- Step 1: keep cached data that is still managed and still alive.
        # Every managed cached datum (valid or not) is also an affinity
        # *provider*: its uid being in Δk is what the reference scan tests.
        # Sorted: Δk arrives as a set, and its iteration order fixes the
        # insertion order of Ψ (and thus the assigned-pairs list).
        for uid in sorted(cached_uids):
            entry = theta.get(uid)
            if entry is None:
                continue
            if self._lifetime_valid(entry):
                psi[uid] = entry
                self._add_owner(entry, host_name)
            if limit > 0:
                self._push_affinity_candidates(entry, candidate_heap, pushed,
                                               min_seq=None)

        # -- Step 2: assign new data, walking candidates in Θ order.  Two
        # seq-ordered sources are merged: the affinity candidates triggered
        # by this host's cache, and (for reservoir hosts) the shared
        # replica-deficit heap.  Deficit rows popped here are re-queued
        # afterwards unless the assignment satisfied the replica target —
        # the sets are disjoint, since affinity-constrained data is never in
        # the deficit.
        new_uids: List[str] = []
        deficit_heap = self._deficit_heap if (limit > 0 and reservoir) else None
        deficit_set = self._replica_deficit
        deficit_requeue: List[Tuple[int, str]] = []

        while True:
            if len(new_uids) >= limit:
                break
            if deficit_heap is not None:
                # Drop rows whose uid left the deficit, and rows from a
                # previous incarnation of a re-registered uid (their stale,
                # smaller seq would break the Θ-insertion-order walk).
                while deficit_heap and (
                        deficit_heap[0][1] not in deficit_set
                        or theta[deficit_heap[0][1]].seq != deficit_heap[0][0]):
                    heapq.heappop(deficit_heap)
            affinity_head = candidate_heap[0] if candidate_heap else None
            deficit_head = deficit_heap[0] if deficit_heap else None
            if affinity_head is None and deficit_head is None:
                break
            if deficit_head is not None and (
                    affinity_head is None or deficit_head[0] < affinity_head[0]):
                seq, uid = heapq.heappop(deficit_heap)
                deficit_requeue.append((seq, uid))
            else:
                seq, uid = heapq.heappop(candidate_heap)
            entry = theta.get(uid)
            if entry is None:
                continue
            self.entries_examined += 1
            if uid in psi or uid in cached_uids:
                continue
            if self._quiesced and uid in self._quiesced:
                # Frozen for migration: no new placements until the key's
                # new shard takes over (it stays in the deficit for later).
                continue
            if not self._lifetime_valid(entry):
                # Dead candidates leave the deficit so later syncs stop
                # re-examining them (the final requeue filter checks
                # membership).  An absolute expiry re-enters only through a
                # fresh attribute; a dangling relative reference re-enters
                # via _resolve_dependents when a provider appears.
                deficit_set.discard(uid)
                continue
            attr = entry.attribute
            assigned = False

            # Affinity resolution: schedule wherever the referenced data lives.
            if attr.has_affinity and self._affinity_satisfied(
                    attr.affinity, psi, cached_uids):
                assigned = True

            # Replica placement (reservoir hosts only).  Affinity-constrained
            # data is *only* placed by affinity.
            if not assigned and reservoir and not attr.has_affinity:
                if attr.replicate_to_all or len(entry.owners) < attr.replica:
                    assigned = True

            if assigned:
                psi[uid] = entry
                self._add_owner(entry, host_name)
                new_uids.append(uid)
                self.assignments += 1
                # The assignment may satisfy affinities later in Θ.
                self._push_affinity_candidates(entry, candidate_heap, pushed,
                                               min_seq=seq)

        for row in deficit_requeue:
            if row[1] in deficit_set:
                heapq.heappush(self._deficit_heap, row)

        to_delete = sorted(uid for uid in cached_uids if uid not in psi)
        assigned_pairs = [(e.data, e.attribute) for e in psi.values()]  # detlint: ignore[DET004] — Ψ insertion order is sorted Δk then heap-pop order, both deterministic
        self._host_caches[host_name] = set(psi.keys())
        return SyncResult(host_name=host_name, assigned=assigned_pairs,
                          to_delete=to_delete, to_download=sorted(new_uids),
                          time=self.env.now)

    def synchronize(self, host_name: str, cached_uids: Set[str],
                    reservoir: bool = True, max_new: Optional[int] = None):
        """Generator: the remote synchronisation call (heartbeat + Algorithm 1).

        This is what volatile hosts invoke periodically; it counts as a
        heartbeat for the failure detector and pays one database statement.
        """
        self.sync_count += 1
        if self.failure_detector is not None:
            self.failure_detector.heartbeat(host_name)
        if self.database is not None:
            result = yield from self.database.execute(
                lambda: self.compute_schedule(host_name, set(cached_uids),
                                              reservoir=reservoir,
                                              max_new=max_new),
                statements=self.sync_cost_statements,
            )
        else:
            yield self.env.timeout(0.0)
            result = self.compute_schedule(host_name, set(cached_uids),
                                           reservoir=reservoir, max_new=max_new)
        return result

    # ------------------------------------------------------------------ batched Algorithm 1
    def _batch_result(self, host_name: str, cached_uids: Set[str],
                      psi: Dict[str, ScheduledEntry], new_uids: List[str],
                      now: float) -> SyncResult:
        """Assemble one host's :class:`SyncResult` (batch path)."""
        to_delete = sorted(uid for uid in cached_uids if uid not in psi)
        assigned_pairs = [(e.data, e.attribute) for e in psi.values()]  # detlint: ignore[DET004] — Ψ insertion order is sorted Δk then seq-walk order, both deterministic
        self._host_caches[host_name] = set(psi.keys())
        return SyncResult(host_name=host_name, assigned=assigned_pairs,
                          to_delete=to_delete, to_download=sorted(new_uids),
                          time=now)

    def compute_schedule_batch(
        self,
        host_names: Sequence[str],
        cached_uids_per_host: Sequence[Set[str]],
        reservoir: bool = True,
        max_new: Optional[Union[int, Sequence[Optional[int]]]] = None,
    ) -> List[SyncResult]:
        """Evaluate Algorithm 1 for a whole cohort of hosts in one pass.

        Returns exactly what ``[compute_schedule(h, c, ...) for h, c in
        zip(host_names, cached_uids_per_host)]`` would — the same per-host
        schedules *and* the same observable scheduler state afterwards
        (owners, replica deficit, ``assignments``/``entries_examined``
        deltas, mutation-hook calls in the same order; pinned by the
        hypothesis oracle in ``tests/test_data_scheduler_batch.py``) — but
        amortises candidate materialisation over the cohort: the
        replica-deficit heap is drained **once**, stale rows are filtered
        **once**, and each host walks a shared seq-ordered candidate array
        instead of re-popping and re-queuing O(log n) heap rows.

        The one-pass walk requires the regime where replica placement is
        the whole story: no affinity dependents, no quiesced uids, no
        lifetime-bearing attributes, reservoir hosts, a positive assignment
        limit.  Outside it the method transparently falls back to the
        sequential loop (still correct, just not batched).  Within it, when
        additionally every host cache is disjoint from the candidate set,
        no host already owns a candidate and the limit is one new datum per
        sync — the scale-grid regime — the per-host walk itself collapses
        into a numpy prefix-sum fill over the candidate capacities
        (:func:`numpy.searchsorted` over the capacity cumsum assigns every
        host its candidate in O(cohort · log candidates) C-level work).

        ``max_new`` may be a per-host sequence (``None`` entries take the
        scheduler default) — the fabric router's batched scatter needs this
        because its rotating-remainder budget split gives cohort neighbours
        different per-shard limits.  A uniform sequence collapses to the
        scalar fast paths; a mixed one walks the shared candidate array
        with each host's own limit.
        """
        per_host: Optional[List[int]] = None
        if max_new is None or isinstance(max_new, int):
            limit = self.max_data_schedule if max_new is None else int(max_new)
            limits: Optional[List[int]] = None
        else:
            per_host = [self.max_data_schedule if m is None else int(m)
                        for m in max_new]
            if per_host and min(per_host) == max(per_host):
                # Uniform budgets collapse to the scalar fast paths.
                limit, limits = per_host[0], None
            else:
                limit, limits = max(per_host, default=0), per_host
        if (self._affinity_dependents or self._quiesced
                or self._lifetime_count or not reservoir or limit <= 0):
            return [
                self.compute_schedule(
                    host, set(cached), reservoir=reservoir,
                    max_new=max_new if per_host is None else per_host[k])
                for k, (host, cached)
                in enumerate(zip(host_names, cached_uids_per_host))
            ]

        theta = self._entries
        deficit_set = self._replica_deficit
        heap = self._deficit_heap

        # Candidate rows are drained from the deficit heap *lazily*: only
        # the prefix the cohort actually touches is materialised (heap pops
        # are ascending in (seq, uid), so ``drained`` stays sorted), and
        # the whole batch shares it — draining the entire deficit per call
        # would cost O(|deficit|) even when the cohort assigns a handful.
        # ``pop_live`` applies the exact stale filter the sequential walk
        # applies: rows whose uid left the deficit and rows from a
        # previous incarnation of a re-registered uid are dropped;
        # duplicate live rows (a uid that left and re-entered the deficit)
        # are kept — the sequential walk examines each of them.
        drained: List[Tuple[int, str]] = []

        def pop_live() -> Optional[Tuple[int, str]]:
            while heap:
                row = heap[0]
                if row[1] not in deficit_set or theta[row[1]].seq != row[0]:
                    heapq.heappop(heap)
                    continue
                return heapq.heappop(heap)
            return None

        now = self.env.now
        n_hosts = len(host_names)
        results: List[SyncResult] = []

        # -- numpy prefix-sum fill: the limit==1 disjoint regime -----------
        # Materialise candidates until their combined capacity can serve
        # the whole cohort (each host takes at most one), then check the
        # prefix is disjoint from every host's cache and current holdings.
        vectorized = False
        caps_list: List[int] = []
        if (_np is not None and limit == 1 and limits is None
                and len(set(host_names)) == n_hosts):
            total_capacity = 0
            while total_capacity < n_hosts:
                row = pop_live()
                if row is None:
                    break
                drained.append(row)
                entry = theta[row[1]]
                attr = entry.attribute
                cap = (n_hosts if attr.replicate_to_all
                       else attr.replica - len(entry.owners))
                caps_list.append(cap)
                total_capacity += cap
            cand_uids = {uid for _seq, uid in drained}
            if len(cand_uids) == len(drained):   # no duplicate live rows
                vectorized = True
                for host, cached in zip(host_names, cached_uids_per_host):
                    owned = self._owner_index.get(host)
                    if not cand_uids.isdisjoint(cached) or (
                            owned and not cand_uids.isdisjoint(owned)):
                        vectorized = False
                        break

        if vectorized:
            n_rows = len(drained)
            if n_rows:
                ends = _np.cumsum(_np.asarray(caps_list, dtype=_np.int64))
                # Host k takes the first candidate whose cumulative capacity
                # exceeds k — exactly the sequential first-fit order, because
                # each host always assigns the first still-alive candidate.
                pos = _np.searchsorted(ends, _np.arange(n_hosts),
                                       side="right").tolist()
            else:
                pos = [0] * n_hosts
            # Per-candidate constants hoisted out of the per-host loop
            # (``ScheduledEntry.uid`` and ``replicate_to_all`` are derived
            # attributes — at one assignment per host they would be the
            # loop's hottest lookups).
            rows = []
            for _seq, uid in drained:
                entry = theta[uid]
                attr = entry.attribute
                rows.append((uid, entry, entry.owners,
                             attr.replicate_to_all, attr.replica))
            owner_index = self._owner_index
            host_caches = self._host_caches
            hook = self._mutation_hook
            for k, host in enumerate(host_names):
                cached = cached_uids_per_host[k]
                psi: Dict[str, ScheduledEntry] = {}
                if cached:
                    ordered = sorted(cached)
                    for uid in ordered:
                        cached_entry = theta.get(uid)
                        if cached_entry is None:
                            continue
                        psi[uid] = cached_entry
                        self._add_owner(cached_entry, host)
                    to_delete = [uid for uid in ordered if uid not in psi]
                else:
                    to_delete = []
                j = pos[k]
                if j < n_rows:
                    uid, entry, owners, rta, replica = rows[j]
                    # One candidate examined per served host: every earlier
                    # candidate was exhausted by the hosts before this one,
                    # and the sequential stale filter skips dead rows
                    # without examining them.
                    self.entries_examined += 1
                    psi[uid] = entry
                    # ``_add_owner``, inlined: the vectorized guard proved
                    # *host* owns no candidate yet, and deficit rows carry
                    # no affinity — so add the owner links, retire the
                    # candidate from the deficit once its replica count
                    # fills, and fire the mutation hook, exactly as the
                    # sequential walk would.
                    owners.add(host)
                    owned = owner_index.get(host)
                    if owned is None:
                        owner_index[host] = {uid}
                    else:
                        owned.add(uid)
                    if not rta and len(owners) >= replica:
                        deficit_set.discard(uid)
                    if hook is not None:
                        hook(uid)
                    self.assignments += 1
                    new_uids = [uid]
                else:
                    new_uids = []
                host_caches[host] = set(psi)
                results.append(SyncResult(
                    host_name=host,
                    assigned=[(e.data, e.attribute) for e in psi.values()],  # detlint: ignore[DET004] — Ψ insertion order is sorted Δk then seq-walk order, both deterministic
                    to_delete=to_delete, to_download=new_uids, time=now))
        else:
            first_alive = 0
            # ``cached`` is only read (membership + iteration), never
            # mutated — no defensive copy needed on this hot path.
            for k, (host, cached) in enumerate(
                    zip(host_names, cached_uids_per_host)):
                limit_k = limit if limits is None else limits[k]
                psi = {}
                for uid in sorted(cached):
                    entry = theta.get(uid)
                    if entry is None:
                        continue
                    psi[uid] = entry
                    self._add_owner(entry, host)
                new_uids = []
                # Candidates only die during a batch (nothing re-enters the
                # deficit in this regime), so the leading-dead prefix is
                # shared by every later host.
                while first_alive < len(drained) \
                        and drained[first_alive][1] not in deficit_set:
                    first_alive += 1
                j = first_alive
                while len(new_uids) < limit_k:
                    if j >= len(drained):
                        row = pop_live()
                        if row is None:
                            break
                        drained.append(row)
                    uid = drained[j][1]
                    j += 1
                    if uid not in deficit_set:
                        continue
                    entry = theta[uid]
                    self.entries_examined += 1
                    if uid in psi or uid in cached:
                        continue
                    # Deficit membership == assignable by the replica rule.
                    psi[uid] = entry
                    self._add_owner(entry, host)
                    new_uids.append(uid)
                    self.assignments += 1
                results.append(
                    self._batch_result(host, cached, psi, new_uids, now))

        # Re-queue one row per drained candidate still in deficit —
        # identical live-row heap content to the sequential per-host
        # requeue (exhausted candidates are dropped there too).
        for row in drained:
            if row[1] in deficit_set:
                heapq.heappush(heap, row)
        return results

    def synchronize_batch(self, host_names: Iterable[str],
                          cached_uids_per_host: Iterable[Set[str]],
                          reservoir: bool = True,
                          max_new: Optional[Union[int, Sequence[Optional[int]]]] = None):
        """Generator: one batched synchronisation RPC for a host cohort.

        ``max_new`` may be a per-host sequence (see
        :meth:`compute_schedule_batch`) — the fabric router's batched
        scatter sends each shard the cohort's rotated budget split.

        Counts one heartbeat and one sync per host, and pays the same
        *total* statement cost as the per-host calls
        (``sync_cost_statements`` × cohort size) on a single connection —
        batching saves the per-call connection setup and the N executor
        round-trips, which is the point of the cohort scatter path.
        """
        hosts = list(host_names)
        caches = [set(cached) for cached in cached_uids_per_host]
        self.sync_count += len(hosts)
        if self.failure_detector is not None:
            for host in hosts:
                self.failure_detector.heartbeat(host)
        if self.database is not None:
            results = yield from self.database.execute(
                lambda: self.compute_schedule_batch(
                    hosts, caches, reservoir=reservoir, max_new=max_new),
                statements=self.sync_cost_statements * max(1, len(hosts)))
        else:
            yield self.env.timeout(0.0)
            results = self.compute_schedule_batch(
                hosts, caches, reservoir=reservoir, max_new=max_new)
        return results

    def heartbeat(self, host_name: str) -> bool:
        """Record a liveness heartbeat from a volatile host.

        Reservoir hosts send these periodically, independently of the (possibly
        long-running) synchronisation/download cycle, so that a host busy
        downloading a large file is not declared dead (§3.1).
        """
        if self.failure_detector is not None:
            self.failure_detector.heartbeat(host_name)
            return True
        return False

    def confirm_ownership(self, host_name: str, data_uid: str) -> None:
        """Record that *host_name* finished downloading *data_uid*."""
        entry = self._entries.get(data_uid)
        if entry is not None:
            self._add_owner(entry, host_name)

    def release_ownership(self, host_name: str, data_uid: str) -> None:
        entry = self._entries.get(data_uid)
        if entry is not None:
            self._remove_owner(entry, host_name)
            entry.pinned_on.discard(host_name)

    # ------------------------------------------------------------------ fault tolerance
    def _on_host_failure(self, host_name: str) -> None:
        """Failure-detector callback: repair owner lists of fault-tolerant data.

        The owner index makes this O(data owned by the failed host) instead
        of a scan over Θ.
        """
        self._host_caches.pop(host_name, None)
        owned = self._owner_index.get(host_name)
        if not owned:
            return
        for uid in list(owned):
            entry = self._entries.get(uid)
            if entry is None:
                continue
            if entry.attribute.fault_tolerance:
                # Remove the faulty owner so the datum is re-scheduled elsewhere.
                self._remove_owner(entry, host_name)
                entry.pinned_on.discard(host_name)
                self.repairs_triggered += 1
            # Non-fault-tolerant data: the replica stays registered (it will be
            # available again if the host comes back), as prescribed in §3.2.

    # ------------------------------------------------------------------ migration
    # The elastic fabric moves Θ entries between scheduler shards by uid.
    # Export/import preserve everything Algorithm 1 can observe — attribute,
    # owners Ω, pinned hosts, the original scheduled_at (absolute lifetimes
    # keep their expiry instant) — except the Θ-insertion seq, which is
    # re-issued on the destination in deterministic import order.

    def migration_keys(self) -> List[str]:
        """Sorted uids under this shard's management (no simulated cost)."""
        return sorted(self._entries)

    def export_entry_now(self, data_uid: str) -> Optional[dict]:
        entry = self._entries.get(data_uid)
        if entry is None:
            return None
        return {
            "data": entry.data,
            "attribute": entry.attribute,
            "scheduled_at": entry.scheduled_at,
            "owners": set(entry.owners),
            "pinned_on": set(entry.pinned_on),
        }

    def export_entry(self, data_uid: str):
        """Generator: read one Θ entry out (one admin-connection statement)."""
        if self.database is not None:
            snapshot = yield from self.database.admin_execute(
                lambda: self.export_entry_now(data_uid))
        else:
            yield self.env.timeout(0.0)
            snapshot = self.export_entry_now(data_uid)
        return snapshot

    def import_entry_now(self, snapshot: dict) -> ScheduledEntry:
        data = snapshot["data"]
        if data.uid in self._entries:
            # Delta re-copy replaces the previous import wholesale.
            self._remove_entry(data.uid)
        entry = ScheduledEntry(data=data, attribute=snapshot["attribute"],
                               scheduled_at=snapshot["scheduled_at"],
                               seq=next(self._seq))
        self._entries[data.uid] = entry
        self._by_name.setdefault(data.name, set()).add(data.uid)
        self._resolve_dependents(data.uid)
        self._resolve_dependents(data.name)
        self._attach_attribute(entry)
        for host in sorted(snapshot["owners"]):
            self._add_owner(entry, host)
        entry.pinned_on.update(snapshot["pinned_on"])
        if self.database is not None:
            self.database.raw_upsert("ds.entries", data.uid, {
                "data": data, "attribute": entry.attribute,
                "at": entry.scheduled_at})
        return entry

    def import_entry(self, snapshot: dict):
        """Generator: install one Θ entry (one admin-connection statement)."""
        if self.database is not None:
            entry = yield from self.database.admin_execute(
                lambda: self.import_entry_now(snapshot))
        else:
            yield self.env.timeout(0.0)
            entry = self.import_entry_now(snapshot)
        return entry

    def drop_entry_now(self, data_uid: str) -> bool:
        """Remove a migrated-away entry from this shard's Θ.

        Unlike :meth:`unschedule` this is *not* host-visible: by the time
        the source shard drops the entry the router already sends every
        request for the uid — including the synchronisations whose Ψ decides
        deletions — to the destination shard, which manages it.
        """
        removed = self._remove_entry(data_uid)
        self._quiesced.discard(data_uid)
        if self.database is not None:
            self.database.raw_delete("ds.entries", data_uid)
        return removed is not None

    def drop_entry(self, data_uid: str):
        """Generator: drop one migrated entry (one admin-connection statement)."""
        if self.database is not None:
            removed = yield from self.database.admin_execute(
                lambda: self.drop_entry_now(data_uid))
        else:
            yield self.env.timeout(0.0)
            removed = self.drop_entry_now(data_uid)
        return removed

    def quiesce(self, uids) -> None:
        """Freeze new placements of *uids* while they migrate away."""
        self._quiesced.update(uids)

    def unquiesce(self, uids) -> None:
        self._quiesced.difference_update(uids)

    def missing_replicas(self) -> Dict[str, int]:
        """uids whose live owner count is below the requested replica level."""
        missing: Dict[str, int] = {}
        for uid, entry in self._entries.items():  # detlint: ignore[DET004] — Θ registration order is event-deterministic; result dict is consumed by deficit, not order
            attr = entry.attribute
            if attr.replicate_to_all:
                continue
            deficit = attr.replica - len(entry.owners)
            if deficit > 0:
                missing[uid] = deficit
        return missing
