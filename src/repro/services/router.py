"""Service routing: key → shard → live replica endpoint.

The paper presents BitDew as "a flexible distributed service architecture";
its prototype already distributes one service (the DHT-backed Distributed
Data Catalog, §4.2).  This module generalises that: a
:class:`ServiceRouter` decides, for every API-layer invocation, *which*
service instance serves it.

* :class:`StaticRouter` — the classic single-container deployment: every
  service has exactly one endpoint; ``invoke`` is a plain passthrough to
  :meth:`RpcChannel.invoke` (byte-identical to calling the endpoint
  directly, which keeps the default deployment's behaviour unchanged).
* :class:`FabricRouter` — the sharded deployment: the Data Catalog and the
  Data Scheduler are split into *S* shards by consistent hashing
  (:class:`ShardRing`, reusing the Chord ring math of
  :mod:`repro.dht.chord` for key → shard routing), each shard replicated on
  *k* service hosts.  Invocations resolve to the shard's first replica the
  fabric's heartbeat detector believes alive, and retry with the channel's
  failover policy — a service-host crash reroutes clients to a live replica
  within one heartbeat timeout instead of raising :class:`RpcError`
  forever.

Routing keys are extracted per (service, method): Data Catalog calls route
by data uid (or publish key), Data Scheduler calls by data uid — except
``synchronize``, which scatters the host's cache view over every scheduler
shard and gathers the per-shard :class:`SyncResult` into one, preserving
Algorithm 1's host-visible semantics — and ``synchronize_batch``, which
scatters a whole host cohort's synchronisation with **one** RPC per shard
(same per-host results and budget rotation, ``shards`` round trips per
cohort instead of ``cohort × shards``).  Methods with no key (e.g.
``find_by_name``) scatter to all shards and merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Set, Tuple

from repro.dht.chord import ChordRing, chord_hash
from repro.net.rpc import FailoverPolicy, RpcChannel, RpcEndpoint, RpcError
from repro.sim.kernel import Event
from repro.services.data_scheduler import SyncResult

__all__ = ["FabricRouter", "HandoffPlan", "KeyMove", "ServiceRouter",
           "ShardRing", "StaticRouter"]


@dataclass(frozen=True)
class KeyMove:
    """One key whose owning shard changes in a ring transition."""

    key: str
    src: int
    dst: int


@dataclass
class HandoffPlan:
    """The per-key migration plan for one ring transition.

    Produced by :meth:`ShardRing.plan_handoff`: the sorted list of keys
    whose owner differs between the old and the new ring, plus enough
    metadata to judge the plan against the theoretical minimum.  Because a
    split only *adds* vnodes (and a merge only removes the leaving shard's
    vnodes) while every surviving vnode keeps its ring position, the plan
    is minimal by construction: a key moves iff its successor vnode
    changed, which happens iff its new owner differs from its old one.
    """

    old_shards: int
    new_shards: int
    total_keys: int
    moves: List[KeyMove] = field(default_factory=list)

    @property
    def keys_moved(self) -> int:
        return len(self.moves)

    @property
    def theoretical_minimum(self) -> float:
        """Expected minimal moves for a balanced ring: K·|S'−S|/max(S,S').

        Growing S→S' shards, the new shards own (S'−S)/S' of a perfectly
        balanced keyspace, so that fraction of the K keys *must* move;
        shrinking, the leaving shards owned (S−S')/S of it.  Vnode
        placement is hash-random, so a real ring deviates from this by the
        arc-imbalance factor (shrinking with more vnodes) — the property
        suite pins the deviation, the bench reports the measured ratio.
        """
        larger = max(self.old_shards, self.new_shards)
        if larger == 0:
            return 0.0
        return (self.total_keys
                * abs(self.new_shards - self.old_shards) / larger)

    def moves_into(self, shard: int) -> List[KeyMove]:
        return [m for m in self.moves if m.dst == shard]

    def moves_out_of(self, shard: int) -> List[KeyMove]:
        return [m for m in self.moves if m.src == shard]


class ShardRing:
    """Consistent key → shard-index hashing on a Chord ring.

    Each shard joins a :class:`~repro.dht.chord.ChordRing` as ``vnodes``
    virtual nodes; a key maps to the shard whose virtual node is the Chord
    successor of the key's identifier — the exact ring math the Distributed
    Data Catalog uses for key placement (§3.4.1), reused for service
    routing.  Multiple virtual nodes per shard smooth the arc imbalance a
    single hash point per shard would give.
    """

    def __init__(self, shards: int, label: str = "shard", bits: int = 32,
                 vnodes: int = 16, seed: int = 0):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.shards = shards
        self.label = label
        self.bits = bits
        self.vnodes = vnodes
        self.seed = int(seed)
        self._ring = ChordRing(bits=bits, replication=1)
        self._index: Dict[str, int] = {}
        for i in range(shards):
            for v in range(vnodes):
                node = self._ring.join(self._vnode_name(i, v))
                self._index[node.name] = i

    def _vnode_name(self, shard: int, vnode: int) -> str:
        # seed 0 keeps the pre-elastic vnode names (and hence ring
        # positions) byte-for-byte — the default deployment's key→shard map
        # is unchanged.  Non-zero seeds salt every vnode id, giving
        # property tests an independent ring family per seed.
        base = f"{self.label}-{shard}#{vnode}"
        return base if self.seed == 0 else f"{base}~{self.seed}"

    def shard_for(self, key: str) -> int:
        """The shard index responsible for *key*."""
        if self.shards == 1:
            return 0
        node = self._ring.successor_of(chord_hash(key, self._ring.bits))
        return self._index[node.name]

    def partition(self, keys) -> Dict[int, Set[str]]:
        """Group *keys* by responsible shard (only non-empty groups)."""
        parts: Dict[int, Set[str]] = {}
        for key in keys:
            parts.setdefault(self.shard_for(key), set()).add(key)
        return parts

    # -------------------------------------------------------------- elasticity
    def with_shards(self, shards: int) -> "ShardRing":
        """A new ring over *shards* shards, same label/bits/vnodes/seed.

        Because vnode names are a pure function of (label, seed, shard
        index, vnode index), the surviving shards' vnodes land on exactly
        the same ring positions: transitioning S→S±1 only inserts (or
        removes) the tail shard's vnode arcs.
        """
        return ShardRing(shards, label=self.label, bits=self.bits,
                         vnodes=self.vnodes, seed=self.seed)

    def plan_handoff(self, new_ring: "ShardRing",
                     keys: Iterable[str]) -> HandoffPlan:
        """The deterministic per-key migration plan from this ring to *new_ring*.

        Enumerates *keys* in sorted order and records every key whose
        owner differs between the rings.  Both rings must belong to the
        same family (label/bits/vnodes/seed) or the "only owner-changed
        keys move" guarantee does not hold.
        """
        if (new_ring.label, new_ring.bits, new_ring.vnodes, new_ring.seed) \
                != (self.label, self.bits, self.vnodes, self.seed):
            raise ValueError(
                "handoff requires rings of the same family "
                f"(label/bits/vnodes/seed): {self.label!r} vs {new_ring.label!r}")
        moves: List[KeyMove] = []
        total = 0
        for key in sorted(set(keys)):
            total += 1
            src = self.shard_for(key)
            dst = new_ring.shard_for(key)
            if src != dst:
                moves.append(KeyMove(key, src, dst))
        return HandoffPlan(old_shards=self.shards, new_shards=new_ring.shards,
                           total_keys=total, moves=moves)

    def arc_share(self, shard: int) -> float:
        """Fraction of the identifier space owned by *shard*'s vnodes.

        The expected fraction of keys a shard serves — the hotspot
        monitor normalises per-shard load by this to separate "hot keys"
        from "big arc".
        """
        nodes = self._ring.nodes
        if not nodes:
            return 0.0
        modulus = self._ring.modulus
        share = 0
        previous = nodes[-1].node_id - modulus
        for node in nodes:
            if self._index[node.name] == shard:
                share += node.node_id - previous
            previous = node.node_id
        return share / modulus


class ServiceRouter:
    """Interface: resolve and invoke D* service calls for a host agent."""

    def invoke(self, channel: RpcChannel, service: str, method: str,
               *args: Any, **kwargs: Any) -> Generator[Event, Any, Any]:
        raise NotImplementedError


class StaticRouter(ServiceRouter):
    """Single-container routing: one endpoint per service, no failover."""

    def __init__(self, endpoints: Dict[str, RpcEndpoint]) -> None:
        self.endpoints = dict(endpoints)

    def invoke(self, channel: RpcChannel, service: str, method: str,
               *args: Any, **kwargs: Any) -> Generator[Event, Any, Any]:
        # Returns the channel's invocation generator directly — the call is
        # indistinguishable from pre-fabric code invoking the endpoint.
        return channel.invoke(self.endpoints[service], method, *args, **kwargs)


#: Routing-key extractors per (service, method).  ``None`` marks a
#: scatter-to-all-shards method; missing services route to their single
#: (unsharded) endpoint.
_ROUTING_KEYS: Dict[str, Dict[str, Optional[Callable[..., str]]]] = {
    "dc": {
        "register_data": lambda data, *a: data.uid,
        "get_data": lambda uid, *a: uid,
        "update_status": lambda uid, *a: uid,
        "delete_data": lambda uid, *a: uid,
        "find_by_name": None,
        "add_locator": lambda locator, *a: locator.data_uid,
        "locators_for": lambda data_uid, *a: data_uid,
        "publish_pair": lambda key, *a: key,
        "lookup_pair": lambda key, *a: key,
    },
    "ds": {
        "heartbeat": lambda host_name, *a: host_name,
        "confirm_ownership": lambda host_name, data_uid, *a: data_uid,
        "release_ownership": lambda host_name, data_uid, *a: data_uid,
        # The ActiveData API surface: Θ mutations route by data uid.
        "schedule": lambda data, *a: data.uid,
        "pin": lambda data, *a: data.uid,
        "unschedule": lambda data_uid, *a: data_uid,
        "owners_of": lambda data_uid, *a: data_uid,
    },
}

def _dedup_by_uid(rows):
    """Stable de-duplication by ``uid`` — the migration dual-read guard.

    While a shard migration is copying, a datum legitimately exists on both
    its old and its new shard; a scatter that reads both must report it
    once.  Without a migration no two shards hold the same uid, so this is
    the identity on the default path.
    """
    seen: Set[str] = set()
    out = []
    for row in rows:
        if row.uid in seen:
            continue
        seen.add(row.uid)
        out.append(row)
    return out


#: How a scatter merges per-shard returns, per (service, method).
_SCATTER_MERGE = {
    ("dc", "find_by_name"): lambda results: _dedup_by_uid(
        row for rows in results for row in rows),
}

#: Sentinel distinguishing "no extractor registered" from "scatter" (None).
_MISSING = object()


class FabricRouter(ServiceRouter):
    """Sharded + replicated routing with heartbeat-driven failover."""

    def __init__(self, fabric, policy: Optional[FailoverPolicy] = None):
        self.fabric = fabric
        self.policy = policy if policy is not None else fabric.failover_policy
        #: resolutions served by a non-primary replica — one count per
        #: resolve attempt (so blocked retries against an undetected crash
        #: count each attempt), a traffic measure rather than a count of
        #: distinct failover transitions.
        self.reroutes = 0
        self.reroutes_by_shard: Dict[str, int] = {}
        #: synchronisations routed so far; rotates the batch-limit remainder
        self._sync_rounds = 0
        #: the active :class:`~repro.services.rebalance.ShardMigration`
        #: overlay, or None.  While set, keyed invocations consult the
        #: migration for the effective shard (planned keys follow the
        #: copy → flip state machine; keys born during the migration route
        #: by the *new* ring) and scatters cover every endpoint group.
        self.migration = None
        #: in-flight invocations per (service, shard); the rebalance
        #: coordinator waits for a leaving shard's count to reach zero
        #: before retiring its endpoints.
        self.outstanding: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------ resolution
    def _live_endpoint(self, service: str, shard: int) -> RpcEndpoint:
        """The target shard's first replica believed alive.

        Liveness is heartbeat-driven: the fabric's service-host detector —
        not the host's actual ``online`` flag — decides, so a fresh crash
        keeps routing to the dead primary until the detector's timeout
        declares it (the failover policy's retries bridge that window).
        """
        endpoints = self.fabric.shard_endpoints(service, shard)
        for position, endpoint in enumerate(endpoints):
            if self.fabric.host_believed_alive(endpoint.host):
                if position > 0:
                    self.reroutes += 1
                    label = endpoint.shard or service
                    self.reroutes_by_shard[label] = (
                        self.reroutes_by_shard.get(label, 0) + 1)
                return endpoint
        raise RpcError(
            f"no live replica for service {service!r} shard "
            f"{endpoints[0].shard if endpoints else shard} "
            f"({len(endpoints)} replicas, all presumed dead)")

    def _resolver(self, service: str, shard: int):
        return lambda: self._live_endpoint(service, shard)

    # ------------------------------------------------------------------ invocation
    def _call(self, channel: RpcChannel, service: str, shard: int, method: str,
              args, kwargs):
        """Generator: one failover invocation, tracked per (service, shard)."""
        slot = (service, shard)
        self.outstanding[slot] = self.outstanding.get(slot, 0) + 1
        try:
            result = yield from channel.invoke_failover(
                self._resolver(service, shard), method, *args,
                policy=self.policy, **kwargs)
        finally:
            self.outstanding[slot] -= 1
        return result

    def invoke(self, channel: RpcChannel, service: str, method: str,
               *args: Any, **kwargs: Any) -> Generator[Event, Any, Any]:
        if service == "ds" and method == "synchronize":
            return self._invoke_synchronize(channel, *args, **kwargs)
        if service == "ds" and method == "synchronize_batch":
            return self._invoke_synchronize_batch(channel, *args, **kwargs)
        shards = self.fabric.shard_count(service)
        if shards <= 0:
            # Unsharded service (DR/DT): single replica group, shard 0.
            return self._call(channel, service, 0, method, args, kwargs)
        extractor = _ROUTING_KEYS.get(service, {}).get(method, _MISSING)
        if extractor is _MISSING:
            raise RpcError(
                f"no routing rule for {service}.{method} "
                f"(sharded service calls need a key extractor)")
        if extractor is None:
            return self._invoke_scatter(channel, service, method,
                                        *args, **kwargs)
        key = extractor(*args)
        if self.migration is not None:
            return self._invoke_migrating(channel, service, method, key,
                                          args, kwargs)
        shard = self.fabric.ring_for(service).shard_for(key)
        return self._call(channel, service, shard, method, args, kwargs)

    def _invoke_migrating(self, channel: RpcChannel, service: str, method: str,
                          key: str, args, kwargs):
        """Generator: one keyed invocation while a migration overlay is up.

        Planned keys route to their source shard until flipped, then to
        their destination — except over the sealed cutover window, where
        the call *blocks* and resumes against the new owner (the
        "forwarding" that makes the cutover lossless).  The overlay tracks
        the call so the coordinator can drain in-flight work, and marks the
        key dirty on completion so post-copy mutations are re-copied.
        """
        migration = self.migration
        yield from migration.wait_key(service, key)
        migration = self.migration    # the migration may have ended meanwhile
        if migration is None:
            shard = self.fabric.ring_for(service).shard_for(key)
            result = yield from self._call(channel, service, shard, method,
                                           args, kwargs)
            return result
        shard = migration.effective_shard(service, key)
        token = migration.note_enter(service, (key,))
        try:
            result = yield from self._call(channel, service, shard, method,
                                           args, kwargs)
        finally:
            migration.note_exit(token)
        return result

    def wait_shard_idle(self, shard: int):
        """Generator: wait until no invocation targets *shard* any more."""
        env = self.fabric.env
        while (self.outstanding.get(("dc", shard), 0)
               + self.outstanding.get(("ds", shard), 0)) > 0:
            yield env.timeout(0.01)

    def _fan_out(self, channel: RpcChannel, calls):
        """Generator: run per-shard invocations *concurrently* and gather.

        ``calls`` is a list of (service, shard, method, args, kwargs).
        Each call runs as its own simulation process, so a scatter pays
        the slowest shard's latency, not the sum.  Outcomes are collected
        explicitly (never fail-fast): a failing shard must not leave
        sibling processes' failures undelivered, and the first error — in
        shard order, deterministically — is re-raised only after every
        shard settled.  Returns the per-shard results in shard order.
        """
        env = channel.env

        def one(service, shard, method, args, kwargs):
            try:
                result = yield from self._call(channel, service, shard,
                                               method, args, kwargs)
            except RpcError as exc:
                return (False, exc)
            return (True, result)

        processes = [env.process(one(*call)) for call in calls]
        yield env.all_of(processes)
        outcomes = [process._value for process in processes]
        for ok, value in outcomes:
            if not ok:
                raise value
        return [value for _ok, value in outcomes]

    def _invoke_scatter(self, channel: RpcChannel, service: str, method: str,
                        *args, **kwargs):
        """Generator: fan a keyless call out to every shard and merge."""
        merge = _SCATTER_MERGE[(service, method)]
        count = self.fabric.shard_count(service)
        if self.migration is not None:
            # During a migration the scatter must reach every endpoint
            # group that may still hold state (the joining shard during a
            # split, the leaving shard until its drain completes); the
            # merge de-duplicates the dual reads.
            count = self.fabric.endpoint_group_count(service)
        results = yield from self._fan_out(channel, [
            (service, shard, method, args, kwargs)
            for shard in range(count)])
        return merge(results)

    def _invoke_synchronize(self, channel: RpcChannel, host_name: str,
                            cached_uids, reservoir: bool = True,
                            max_new: Optional[int] = None,
                            payload_kb: float = 1.0):
        """Generator: scatter one synchronisation over the scheduler shards.

        The host's cache view Δk is partitioned by the scheduler ring; each
        shard runs Algorithm 1 on its slice *concurrently* (the gather
        waits for every shard, then merges into one :class:`SyncResult`).
        ``max_new`` (or the fabric's MaxDataSchedule default) is divided
        exactly across the shards — floor(limit/S) each plus one extra on
        (limit mod S) shards — so a sharded synchronisation assigns at
        most the same batch size as the centralized scheduler.  The
        remainder shards *rotate* with every synchronisation: with more
        shards than budget, every shard still gets its turn instead of a
        fixed prefix starving the rest forever.
        """
        if self.migration is not None:
            result = yield from self._sync_migrating(
                channel, host_name, set(cached_uids), reservoir, max_new,
                payload_kb)
            return result
        ring = self.fabric.ring_for("ds")
        parts = ring.partition(set(cached_uids))
        limit = int(max_new if max_new is not None
                    else self.fabric.max_data_schedule)
        shards = self.fabric.shard_count("ds")
        base, extra = divmod(limit, shards)
        offset = self._sync_rounds % shards
        self._sync_rounds += 1
        calls = []
        for shard in range(shards):
            per_shard = base + (1 if (shard - offset) % shards < extra else 0)
            calls.append(("ds", shard, "synchronize",
                          (host_name, parts.get(shard, set())),
                          {"reservoir": reservoir, "max_new": per_shard,
                           "payload_kb": payload_kb}))
        results = yield from self._fan_out(channel, calls)
        return self._merge_sync(channel, host_name, results)

    def _invoke_synchronize_batch(self, channel: RpcChannel,
                                  host_names: Iterable[str],
                                  cached_uids_per_host: Iterable[Set[str]],
                                  reservoir: bool = True,
                                  max_new: Optional[int] = None,
                                  payload_kb: float = 1.0):
        """Generator: scatter a whole cohort's synchronisation at once.

        The per-host scatter path pays ``cohort × shards`` RPCs per sync
        round; at 100k hosts that round-trip count dominates the scale
        harness long before Algorithm 1 does.  This path sends **one**
        ``synchronize_batch`` RPC per shard carrying every host's cache
        slice (the request's payload scales with the cohort, so the
        channel still charges the marshalled kilobytes honestly), and the
        shard evaluates its slice of the whole cohort in one
        :meth:`~repro.services.data_scheduler.DataSchedulerService.compute_schedule_batch`
        pass.

        Per-shard budgets keep the per-host rotation semantics: host *i*
        of the cohort gets exactly the ``base``/``base+1`` split the *i*-th
        sequential :meth:`_invoke_synchronize` call would have computed
        (``_sync_rounds`` advances by the cohort size), so the remainder
        shards keep rotating across batched and per-host callers alike.
        Shard state also evolves identically: each shard sees the cohort's
        hosts in cohort order, which is the order N sequential scatters
        would have delivered.  ``payload_kb`` is the *per-host* request
        payload, as in the per-host path.

        Under a live migration overlay the batch falls back to concurrent
        per-host synchronisations — the overlay's seal/forwarding protocol
        is per-key, and correctness there beats batching.
        """
        hosts = list(host_names)
        caches = [set(cached) for cached in cached_uids_per_host]
        if not hosts:
            return []
        if self.migration is not None:
            results = yield from self._sync_batch_fallback(
                channel, hosts, caches, reservoir, max_new, payload_kb)
            return results
        ring = self.fabric.ring_for("ds")
        shards = self.fabric.shard_count("ds")
        limit = int(max_new if max_new is not None
                    else self.fabric.max_data_schedule)
        base, extra = divmod(limit, shards)
        start = self._sync_rounds
        self._sync_rounds += len(hosts)
        parts_per_host = [ring.partition(cached) for cached in caches]
        calls = []
        for shard in range(shards):
            budgets = [
                base + (1 if (shard - (start + i)) % shards < extra else 0)
                for i in range(len(hosts))]
            calls.append(("ds", shard, "synchronize_batch",
                          (hosts, [parts.get(shard, set())
                                   for parts in parts_per_host]),
                          {"reservoir": reservoir, "max_new": budgets,
                           "payload_kb": payload_kb * len(hosts)}))
        per_shard = yield from self._fan_out(channel, calls)
        return [self._merge_sync(channel, host,
                                 [shard_results[i]
                                  for shard_results in per_shard])
                for i, host in enumerate(hosts)]

    def _sync_batch_fallback(self, channel: RpcChannel, hosts: List[str],
                             caches: List[Set[str]], reservoir: bool,
                             max_new: Optional[int], payload_kb: float):
        """Generator: per-host syncs run concurrently, gathered in order.

        Mirrors :meth:`_fan_out`'s outcome collection (never fail-fast,
        first error re-raised deterministically in host order) so a
        migration-window failure cannot strand sibling processes.
        """
        env = channel.env

        def one(host, cached):
            try:
                result = yield from self._invoke_synchronize(
                    channel, host, cached, reservoir=reservoir,
                    max_new=max_new, payload_kb=payload_kb)
            except RpcError as exc:
                return (False, exc)
            return (True, result)

        processes = [env.process(one(host, cached))
                     for host, cached in zip(hosts, caches)]
        yield env.all_of(processes)
        outcomes = [process._value for process in processes]
        for ok, value in outcomes:
            if not ok:
                raise value
        return [value for _ok, value in outcomes]

    def _merge_sync(self, channel: RpcChannel, host_name: str, results):
        assigned: List = []
        to_delete: List[str] = []
        to_download: List[str] = []
        for result in results:
            assigned.extend(result.assigned)
            to_delete.extend(result.to_delete)
            to_download.extend(result.to_download)
        return SyncResult(host_name=host_name, assigned=assigned,
                          to_delete=sorted(to_delete),
                          to_download=sorted(to_download),
                          time=channel.env.now)

    def _sync_migrating(self, channel: RpcChannel, host_name: str,
                        cached_uids: Set[str], reservoir: bool,
                        max_new: Optional[int], payload_kb: float):
        """Generator: one synchronisation while a migration overlay is up.

        The cache view is partitioned by *effective* owner (planned uids
        follow the migration state machine, new uids the new ring) over
        every endpoint group, the whole synchronisation blocks while any
        of its uids sits in the sealed cutover window, and the planned
        uids it carries are tracked/dirty-marked like keyed invocations —
        a sync's step-1 owner registration mutates scheduler state.
        """
        migration = self.migration
        yield from migration.wait_keys("ds", cached_uids)
        migration = self.migration
        if migration is None:
            # The migration ended while this sync was parked at the seal;
            # run it as a plain post-migration synchronisation.
            result = yield from self._invoke_synchronize(
                channel, host_name, cached_uids, reservoir=reservoir,
                max_new=max_new, payload_kb=payload_kb)
            return result
        shards = self.fabric.endpoint_group_count("ds")
        parts: Dict[int, Set[str]] = {}
        # Sorted so the per-shard partition (a dict keyed by shard) is
        # built in a reproducible order regardless of set hash order.
        for uid in sorted(cached_uids):
            parts.setdefault(migration.effective_shard("ds", uid),
                             set()).add(uid)
        limit = int(max_new if max_new is not None
                    else self.fabric.max_data_schedule)
        base, extra = divmod(limit, shards)
        offset = self._sync_rounds % shards
        self._sync_rounds += 1
        calls = []
        for shard in range(shards):
            per_shard = base + (1 if (shard - offset) % shards < extra else 0)
            calls.append(("ds", shard, "synchronize",
                          (host_name, parts.get(shard, set())),
                          {"reservoir": reservoir, "max_new": per_shard,
                           "payload_kb": payload_kb}))
        token = migration.note_enter("ds", cached_uids)
        try:
            results = yield from self._fan_out(channel, calls)
        finally:
            migration.note_exit(token)
        return self._merge_sync(channel, host_name, results)
