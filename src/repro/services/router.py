"""Service routing: key → shard → live replica endpoint.

The paper presents BitDew as "a flexible distributed service architecture";
its prototype already distributes one service (the DHT-backed Distributed
Data Catalog, §4.2).  This module generalises that: a
:class:`ServiceRouter` decides, for every API-layer invocation, *which*
service instance serves it.

* :class:`StaticRouter` — the classic single-container deployment: every
  service has exactly one endpoint; ``invoke`` is a plain passthrough to
  :meth:`RpcChannel.invoke` (byte-identical to calling the endpoint
  directly, which keeps the default deployment's behaviour unchanged).
* :class:`FabricRouter` — the sharded deployment: the Data Catalog and the
  Data Scheduler are split into *S* shards by consistent hashing
  (:class:`ShardRing`, reusing the Chord ring math of
  :mod:`repro.dht.chord` for key → shard routing), each shard replicated on
  *k* service hosts.  Invocations resolve to the shard's first replica the
  fabric's heartbeat detector believes alive, and retry with the channel's
  failover policy — a service-host crash reroutes clients to a live replica
  within one heartbeat timeout instead of raising :class:`RpcError`
  forever.

Routing keys are extracted per (service, method): Data Catalog calls route
by data uid (or publish key), Data Scheduler calls by data uid — except
``synchronize``, which scatters the host's cache view over every scheduler
shard and gathers the per-shard :class:`SyncResult` into one, preserving
Algorithm 1's host-visible semantics.  Methods with no key (e.g.
``find_by_name``) scatter to all shards and merge.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.dht.chord import ChordRing, chord_hash
from repro.net.rpc import FailoverPolicy, RpcChannel, RpcEndpoint, RpcError
from repro.services.data_scheduler import SyncResult

__all__ = ["FabricRouter", "ServiceRouter", "ShardRing", "StaticRouter"]


class ShardRing:
    """Consistent key → shard-index hashing on a Chord ring.

    Each shard joins a :class:`~repro.dht.chord.ChordRing` as ``vnodes``
    virtual nodes; a key maps to the shard whose virtual node is the Chord
    successor of the key's identifier — the exact ring math the Distributed
    Data Catalog uses for key placement (§3.4.1), reused for service
    routing.  Multiple virtual nodes per shard smooth the arc imbalance a
    single hash point per shard would give.
    """

    def __init__(self, shards: int, label: str = "shard", bits: int = 32,
                 vnodes: int = 16):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.shards = shards
        self.label = label
        self._ring = ChordRing(bits=bits, replication=1)
        self._index: Dict[str, int] = {}
        for i in range(shards):
            for v in range(vnodes):
                node = self._ring.join(f"{label}-{i}#{v}")
                self._index[node.name] = i

    def shard_for(self, key: str) -> int:
        """The shard index responsible for *key*."""
        if self.shards == 1:
            return 0
        node = self._ring.successor_of(chord_hash(key, self._ring.bits))
        return self._index[node.name]

    def partition(self, keys) -> Dict[int, Set[str]]:
        """Group *keys* by responsible shard (only non-empty groups)."""
        parts: Dict[int, Set[str]] = {}
        for key in keys:
            parts.setdefault(self.shard_for(key), set()).add(key)
        return parts


class ServiceRouter:
    """Interface: resolve and invoke D* service calls for a host agent."""

    def invoke(self, channel: RpcChannel, service: str, method: str,
               *args, **kwargs):
        raise NotImplementedError


class StaticRouter(ServiceRouter):
    """Single-container routing: one endpoint per service, no failover."""

    def __init__(self, endpoints: Dict[str, RpcEndpoint]):
        self.endpoints = dict(endpoints)

    def invoke(self, channel: RpcChannel, service: str, method: str,
               *args, **kwargs):
        # Returns the channel's invocation generator directly — the call is
        # indistinguishable from pre-fabric code invoking the endpoint.
        return channel.invoke(self.endpoints[service], method, *args, **kwargs)


#: Routing-key extractors per (service, method).  ``None`` marks a
#: scatter-to-all-shards method; missing services route to their single
#: (unsharded) endpoint.
_ROUTING_KEYS: Dict[str, Dict[str, Optional[Callable[..., str]]]] = {
    "dc": {
        "register_data": lambda data, *a: data.uid,
        "get_data": lambda uid, *a: uid,
        "update_status": lambda uid, *a: uid,
        "delete_data": lambda uid, *a: uid,
        "find_by_name": None,
        "add_locator": lambda locator, *a: locator.data_uid,
        "locators_for": lambda data_uid, *a: data_uid,
        "publish_pair": lambda key, *a: key,
        "lookup_pair": lambda key, *a: key,
    },
    "ds": {
        "heartbeat": lambda host_name, *a: host_name,
        "confirm_ownership": lambda host_name, data_uid, *a: data_uid,
        "release_ownership": lambda host_name, data_uid, *a: data_uid,
        # The ActiveData API surface: Θ mutations route by data uid.
        "schedule": lambda data, *a: data.uid,
        "pin": lambda data, *a: data.uid,
        "unschedule": lambda data_uid, *a: data_uid,
        "owners_of": lambda data_uid, *a: data_uid,
    },
}

#: How a scatter merges per-shard returns, per (service, method).
_SCATTER_MERGE = {
    ("dc", "find_by_name"): lambda results: [row for rows in results
                                             for row in rows],
}

#: Sentinel distinguishing "no extractor registered" from "scatter" (None).
_MISSING = object()


class FabricRouter(ServiceRouter):
    """Sharded + replicated routing with heartbeat-driven failover."""

    def __init__(self, fabric, policy: Optional[FailoverPolicy] = None):
        self.fabric = fabric
        self.policy = policy if policy is not None else fabric.failover_policy
        #: resolutions served by a non-primary replica — one count per
        #: resolve attempt (so blocked retries against an undetected crash
        #: count each attempt), a traffic measure rather than a count of
        #: distinct failover transitions.
        self.reroutes = 0
        self.reroutes_by_shard: Dict[str, int] = {}
        #: synchronisations routed so far; rotates the batch-limit remainder
        self._sync_rounds = 0

    # ------------------------------------------------------------------ resolution
    def _live_endpoint(self, service: str, shard: int) -> RpcEndpoint:
        """The target shard's first replica believed alive.

        Liveness is heartbeat-driven: the fabric's service-host detector —
        not the host's actual ``online`` flag — decides, so a fresh crash
        keeps routing to the dead primary until the detector's timeout
        declares it (the failover policy's retries bridge that window).
        """
        endpoints = self.fabric.shard_endpoints(service, shard)
        for position, endpoint in enumerate(endpoints):
            if self.fabric.host_believed_alive(endpoint.host):
                if position > 0:
                    self.reroutes += 1
                    label = endpoint.shard or service
                    self.reroutes_by_shard[label] = (
                        self.reroutes_by_shard.get(label, 0) + 1)
                return endpoint
        raise RpcError(
            f"no live replica for service {service!r} shard "
            f"{endpoints[0].shard if endpoints else shard} "
            f"({len(endpoints)} replicas, all presumed dead)")

    def _resolver(self, service: str, shard: int):
        return lambda: self._live_endpoint(service, shard)

    # ------------------------------------------------------------------ invocation
    def invoke(self, channel: RpcChannel, service: str, method: str,
               *args, **kwargs):
        if service == "ds" and method == "synchronize":
            return self._invoke_synchronize(channel, *args, **kwargs)
        shards = self.fabric.shard_count(service)
        if shards <= 0:
            # Unsharded service (DR/DT): single replica group, shard 0.
            return channel.invoke_failover(
                self._resolver(service, 0), method, *args,
                policy=self.policy, **kwargs)
        extractor = _ROUTING_KEYS.get(service, {}).get(method, _MISSING)
        if extractor is _MISSING:
            raise RpcError(
                f"no routing rule for {service}.{method} "
                f"(sharded service calls need a key extractor)")
        if extractor is None:
            return self._invoke_scatter(channel, service, method,
                                        *args, **kwargs)
        shard = self.fabric.ring_for(service).shard_for(extractor(*args))
        return channel.invoke_failover(
            self._resolver(service, shard), method, *args,
            policy=self.policy, **kwargs)

    def _fan_out(self, channel: RpcChannel, calls):
        """Generator: run per-shard invocations *concurrently* and gather.

        ``calls`` is a list of (service, shard, method, args, kwargs).
        Each call runs as its own simulation process, so a scatter pays
        the slowest shard's latency, not the sum.  Outcomes are collected
        explicitly (never fail-fast): a failing shard must not leave
        sibling processes' failures undelivered, and the first error — in
        shard order, deterministically — is re-raised only after every
        shard settled.  Returns the per-shard results in shard order.
        """
        env = channel.env

        def one(service, shard, method, args, kwargs):
            try:
                result = yield from channel.invoke_failover(
                    self._resolver(service, shard), method, *args,
                    policy=self.policy, **kwargs)
            except RpcError as exc:
                return (False, exc)
            return (True, result)

        processes = [env.process(one(*call)) for call in calls]
        yield env.all_of(processes)
        outcomes = [process._value for process in processes]
        for ok, value in outcomes:
            if not ok:
                raise value
        return [value for _ok, value in outcomes]

    def _invoke_scatter(self, channel: RpcChannel, service: str, method: str,
                        *args, **kwargs):
        """Generator: fan a keyless call out to every shard and merge."""
        merge = _SCATTER_MERGE[(service, method)]
        results = yield from self._fan_out(channel, [
            (service, shard, method, args, kwargs)
            for shard in range(self.fabric.shard_count(service))])
        return merge(results)

    def _invoke_synchronize(self, channel: RpcChannel, host_name: str,
                            cached_uids, reservoir: bool = True,
                            max_new: Optional[int] = None,
                            payload_kb: float = 1.0):
        """Generator: scatter one synchronisation over the scheduler shards.

        The host's cache view Δk is partitioned by the scheduler ring; each
        shard runs Algorithm 1 on its slice *concurrently* (the gather
        waits for every shard, then merges into one :class:`SyncResult`).
        ``max_new`` (or the fabric's MaxDataSchedule default) is divided
        exactly across the shards — floor(limit/S) each plus one extra on
        (limit mod S) shards — so a sharded synchronisation assigns at
        most the same batch size as the centralized scheduler.  The
        remainder shards *rotate* with every synchronisation: with more
        shards than budget, every shard still gets its turn instead of a
        fixed prefix starving the rest forever.
        """
        ring = self.fabric.ring_for("ds")
        parts = ring.partition(set(cached_uids))
        limit = int(max_new if max_new is not None
                    else self.fabric.max_data_schedule)
        shards = self.fabric.shard_count("ds")
        base, extra = divmod(limit, shards)
        offset = self._sync_rounds % shards
        self._sync_rounds += 1
        calls = []
        for shard in range(shards):
            per_shard = base + (1 if (shard - offset) % shards < extra else 0)
            calls.append(("ds", shard, "synchronize",
                          (host_name, parts.get(shard, set())),
                          {"reservoir": reservoir, "max_new": per_shard,
                           "payload_kb": payload_kb}))
        results = yield from self._fan_out(channel, calls)
        assigned: List = []
        to_delete: List[str] = []
        to_download: List[str] = []
        for result in results:
            assigned.extend(result.assigned)
            to_delete.extend(result.to_delete)
            to_download.extend(result.to_download)
        return SyncResult(host_name=host_name, assigned=assigned,
                          to_delete=sorted(to_delete),
                          to_download=sorted(to_download),
                          time=channel.env.now)
