"""Data Transfer service (DT, paper §3.4.2).

The DT "launches out-of-band transfers and ensures their reliability":

* transfers are always initiated towards the DT by a reservoir or client
  host;
* the transfer itself is performed by a pluggable protocol (FTP, HTTP,
  BitTorrent) resolved through the protocol registry;
* reliability is *receiver driven*: the DT periodically probes the receiver,
  which can verify the size and MD5 of what it has received; a transfer is
  declared finished only at the probe following the protocol's completion;
* faulty transfers are retried (resumed) a configurable number of times
  before being reported failed;
* the monitoring traffic itself consumes bandwidth on the service host.
  Each supervised transfer adds ``monitor_message_kb`` every
  ``monitor_period_s`` in both directions; this is the BitDew protocol
  overhead that Figures 3b/3c quantify.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.data import Data
from repro.core.exceptions import TransferAbortedError
from repro.net.flows import Network
from repro.net.host import Host
from repro.sim.kernel import Environment
from repro.transfer.oob import (
    OOBTransfer,
    TransferEndpoint,
    TransferHandle,
    TransferState,
)
from repro.transfer.registry import ProtocolRegistry

__all__ = ["DataTransferService", "SupervisedTransfer"]

_transfer_counter = itertools.count(1)


@dataclass
class SupervisedTransfer:
    """The DT's view of one supervised (monitored, retried) transfer."""

    tid: int
    data: Data
    protocol: str
    source: TransferEndpoint
    destination: TransferEndpoint
    handle: Optional[TransferHandle] = None
    attempts: int = 0
    monitor_polls: int = 0
    submitted_at: float = 0.0
    completed_at: Optional[float] = None
    failed: bool = False
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.completed_at is not None or self.failed

    @property
    def elapsed(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class DataTransferService:
    """Launches, monitors and retries out-of-band transfers."""

    def __init__(
        self,
        env: Environment,
        host: Host,
        network: Network,
        registry: ProtocolRegistry,
        monitor_period_s: float = 0.5,
        monitor_message_kb: float = 8.0,
        max_retries: int = 3,
        account_monitor_bandwidth: bool = True,
    ):
        self.env = env
        self.host = host
        self.network = network
        self.registry = registry
        self.monitor_period_s = float(monitor_period_s)
        self.monitor_message_kb = float(monitor_message_kb)
        self.max_retries = int(max_retries)
        self.account_monitor_bandwidth = bool(account_monitor_bandwidth)
        self.transfers: Dict[int, SupervisedTransfer] = {}
        #: statistics used for overhead accounting
        self.requests = 0
        self.monitor_messages = 0
        self.retries = 0
        self.total_mb_moved = 0.0

    # -- bandwidth accounting of the monitoring traffic ----------------------------
    @property
    def _monitor_rate_mbps(self) -> float:
        """Control-plane rate of one supervised transfer on the DT's uplink."""
        # request + response every monitor period
        return 2.0 * (self.monitor_message_kb / 1024.0) / self.monitor_period_s

    def _reserve_monitor_bandwidth(self) -> None:
        if self.account_monitor_bandwidth:
            self.network.add_background_load(self.host, "up", self._monitor_rate_mbps)
            self.network.add_background_load(self.host, "down", self._monitor_rate_mbps)

    def _release_monitor_bandwidth(self) -> None:
        if self.account_monitor_bandwidth:
            self.network.remove_background_load(self.host, "up", self._monitor_rate_mbps)
            self.network.remove_background_load(self.host, "down", self._monitor_rate_mbps)

    # -- the service protocol ---------------------------------------------------------
    def register_transfer(self, data: Data, protocol: str,
                          source: TransferEndpoint,
                          destination: TransferEndpoint) -> SupervisedTransfer:
        """Register a transfer with the DT (the client then waits on it)."""
        self.requests += 1
        record = SupervisedTransfer(
            tid=next(_transfer_counter), data=data, protocol=protocol,
            source=source, destination=destination, submitted_at=self.env.now,
        )
        self.transfers[record.tid] = record
        return record

    def start(self, record: SupervisedTransfer):
        """Generator: run the transfer under supervision until success/failure.

        Returns the record; raises :class:`TransferAbortedError` after the
        retry budget is exhausted.
        """
        protocol = self.registry.get(record.protocol)
        self._reserve_monitor_bandwidth()
        try:
            last_error = "unknown error"
            for attempt in range(1, self.max_retries + 1):
                record.attempts = attempt
                if attempt > 1:
                    self.retries += 1
                try:
                    content = self._content_of(record)
                except TransferAbortedError as exc:
                    record.failed = True
                    record.error = str(exc)
                    raise
                handle = protocol.create_handle(
                    content=content,
                    source=record.source, destination=record.destination,
                )
                record.handle = handle
                protocol.non_blocking_receive(handle)
                result = yield from self._monitor(record, handle, protocol)
                if result and not self._matches_catalog_checksum(record):
                    # The bytes arrived intact from the source, but the source
                    # itself does not match the datum's registered MD5
                    # signature (corrupted or tampered copy): reject it.
                    result = False
                    handle.error = ("received content does not match the "
                                    "datum's MD5 signature")
                if result:
                    record.completed_at = self.env.now
                    self.total_mb_moved += handle.content.size_mb
                    return record
                last_error = handle.error or "transfer failed"
                if not record.destination.host.online:
                    # No point retrying towards a dead host.
                    break
            record.failed = True
            record.error = last_error
            raise TransferAbortedError(
                f"transfer #{record.tid} of {record.data.name!r} to "
                f"{record.destination.host.name} failed after "
                f"{record.attempts} attempt(s): {last_error}"
            )
        finally:
            self._release_monitor_bandwidth()

    def submit(self, data: Data, protocol: str, source: TransferEndpoint,
               destination: TransferEndpoint):
        """Generator: register + start in one call (the common client path)."""
        record = self.register_transfer(data, protocol, source, destination)
        result = yield from self.start(record)
        return result

    def _matches_catalog_checksum(self, record: SupervisedTransfer) -> bool:
        """Receiver-driven integrity check against the datum's registered MD5."""
        data = record.data
        if not data.has_content:
            return True  # nothing registered to check against
        if not record.destination.exists():
            return False
        return data.matches_content(record.destination.read())

    def _content_of(self, record: SupervisedTransfer):
        source = record.source
        if not source.exists():
            raise TransferAbortedError(
                f"source content for {record.data.name!r} is missing on "
                f"{source.host.name}")
        return source.read()

    def _monitor(self, record: SupervisedTransfer, handle: TransferHandle,
                 protocol: OOBTransfer):
        """Generator: receiver-driven polling until the transfer settles."""
        while True:
            yield self.env.timeout(self.monitor_period_s)
            record.monitor_polls += 1
            self.monitor_messages += 2  # request towards the receiver + reply
            state = protocol.probe(handle)
            if state is TransferState.COMPLETE:
                return True
            if state in (TransferState.FAILED, TransferState.CANCELLED):
                return False
            if not record.destination.host.online:
                handle.cancel("receiver went offline")
                return False

    # -- reporting --------------------------------------------------------------------
    def pending_transfers(self) -> List[SupervisedTransfer]:
        return [t for t in self.transfers.values() if not t.finished]

    def completed_transfers(self) -> List[SupervisedTransfer]:
        return [t for t in self.transfers.values() if t.completed_at is not None]

    def bandwidth_report(self) -> Dict[str, float]:
        """Aggregate throughput statistics (the DT 'reports on bandwidth')."""
        completed = self.completed_transfers()
        if not completed:
            return {"transfers": 0, "total_mb": 0.0, "mean_throughput_mbps": 0.0}
        throughputs = []
        for record in completed:
            elapsed = record.elapsed
            if elapsed and elapsed > 0:
                throughputs.append(record.data.size_mb / elapsed)
        return {
            "transfers": float(len(completed)),
            "total_mb": self.total_mb_moved,
            "mean_throughput_mbps": (
                sum(throughputs) / len(throughputs) if throughputs else 0.0
            ),
        }
