"""Data Catalog service (DC, paper §3.4.1).

The DC indexes every datum's meta-information (name, checksum, size, flags,
status) and the *locators* of its permanent copies — copies living on stable
repository hosts.  Replica locations on volatile hosts are **not** stored
here; they go to the Distributed Data Catalog (the DHT), which keeps the
DC's critical path short and load-balances replica look-ups.

All protocol-facing methods are generators: they pay the database engine's
simulated costs, which is exactly what the Table 2 micro-benchmark measures
(one remote data creation is an object creation on the client, an RMI
round-trip and a database write to serialise the object).  Cost-free
``*_now`` variants back the unit tests and internal bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.data import Data, DataStatus, Locator
from repro.core.exceptions import DataNotFoundError
from repro.storage.database import Database

__all__ = ["DataCatalogService"]

_DATA = "dc.data"
_LOCATORS = "dc.locators"
_KV = "dc.keyvalue"


class DataCatalogService:
    """Central index of data meta-information and permanent-copy locators."""

    def __init__(self, database: Database):
        self.database = database
        #: protocol statistics (used by the overhead accounting)
        self.requests = 0

    # ------------------------------------------------------------------ data
    def register_data(self, data: Data):
        """Generator: create the data slot in the catalog (one DB write)."""
        self.requests += 1
        yield from self.database.upsert(_DATA, data.uid, data)
        return data

    def register_data_now(self, data: Data) -> Data:
        self.database.raw_upsert(_DATA, data.uid, data)
        return data

    def get_data(self, uid: str):
        """Generator: fetch one datum by uid (one DB read)."""
        self.requests += 1
        data = yield from self.database.get(_DATA, uid)
        if data is None:
            raise DataNotFoundError(f"no data with uid {uid!r} in the catalog")
        return data

    def get_data_now(self, uid: str) -> Optional[Data]:
        return self.database.raw_get(_DATA, uid)

    def find_by_name(self, name: str):
        """Generator: all data whose label equals *name* (one DB query)."""
        self.requests += 1
        rows = yield from self.database.query(_DATA, lambda d: d.name == name)
        return rows

    def find_by_name_now(self, name: str) -> List[Data]:
        return self.database.raw_query(_DATA, lambda d: d.name == name)

    def update_status(self, uid: str, status: DataStatus):
        """Generator: update a datum's life-cycle status."""
        self.requests += 1

        def _update():
            data = self.database.raw_get(_DATA, uid)
            if data is None:
                raise DataNotFoundError(f"no data with uid {uid!r} in the catalog")
            data.status = status
            self.database.raw_upsert(_DATA, uid, data)
            return data

        result = yield from self.database.execute(_update, statements=2)
        return result

    def delete_data(self, uid: str):
        """Generator: remove a datum and its locators from the catalog."""
        self.requests += 1

        def _delete():
            removed = self.database.raw_delete(_DATA, uid)
            for loc in self.database.raw_query(_LOCATORS,
                                               lambda l: l.data_uid == uid):
                self.database.raw_delete(_LOCATORS, loc.uid)
            return removed

        removed = yield from self.database.execute(_delete, statements=2)
        return removed

    def all_data_now(self) -> List[Data]:
        return self.database.raw_query(_DATA)

    @property
    def data_count(self) -> int:
        return self.database.size(_DATA)

    # ------------------------------------------------------------------ locators
    def add_locator(self, locator: Locator):
        """Generator: register a permanent copy's location."""
        self.requests += 1
        yield from self.database.upsert(_LOCATORS, locator.uid, locator)
        return locator

    def add_locator_now(self, locator: Locator) -> Locator:
        self.database.raw_upsert(_LOCATORS, locator.uid, locator)
        return locator

    def locators_for(self, data_uid: str):
        """Generator: all known locators of a datum."""
        self.requests += 1
        rows = yield from self.database.query(
            _LOCATORS, lambda l: l.data_uid == data_uid)
        return rows

    def locators_for_now(self, data_uid: str) -> List[Locator]:
        return self.database.raw_query(_LOCATORS, lambda l: l.data_uid == data_uid)

    # ------------------------------------------------------------------ key/value
    def publish_pair(self, key: str, value):
        """Generator: the centralized counterpart of the DDC publish (Table 3)."""
        self.requests += 1

        def _insert():
            existing = self.database.raw_get(_KV, key) or set()
            existing = set(existing)
            existing.add(value)
            self.database.raw_upsert(_KV, key, existing)
            return existing

        result = yield from self.database.execute(_insert)
        return result

    def lookup_pair(self, key: str):
        """Generator: read back the values published under *key*."""
        self.requests += 1
        values = yield from self.database.get(_KV, key, set())
        return set(values) if values else set()

    def lookup_pair_now(self, key: str) -> set:
        values = self.database.raw_get(_KV, key, set())
        return set(values) if values else set()

    # ------------------------------------------------------------------ migration
    # The elastic fabric (services/rebalance.py) moves catalog state between
    # shards one *routing key* at a time.  A routing key K bundles everything
    # the router ever sends to this shard under K: the datum with uid K, the
    # locators of data_uid K, and the key/value set published under K.

    def migration_keys(self) -> List[str]:
        """Sorted routing keys with any state on this shard (no DB cost)."""
        keys = set(self.database.collection(_DATA))
        keys.update(self.database.collection(_KV))
        for locator in self.database.raw_query(_LOCATORS):
            keys.add(locator.data_uid)
        return sorted(keys)

    def export_key_now(self, key: str) -> dict:
        """Everything stored under routing key *key* (cost-free snapshot)."""
        return {
            "data": self.database.raw_get(_DATA, key),
            "locators": sorted(
                self.database.raw_query(_LOCATORS,
                                        lambda l: l.data_uid == key),
                key=lambda l: l.uid),
            "kv": self.database.raw_get(_KV, key),
        }

    def export_key(self, key: str):
        """Generator: read one routing key's state out (one admin-connection statement)."""
        self.requests += 1
        snapshot = yield from self.database.admin_execute(
            lambda: self.export_key_now(key))
        return snapshot

    def import_key_now(self, key: str, snapshot: dict) -> None:
        """Install *snapshot* under *key*, replacing any previous state."""
        self.drop_key_now(key)
        if snapshot.get("data") is not None:
            self.database.raw_upsert(_DATA, key, snapshot["data"])
        for locator in snapshot.get("locators", ()):
            self.database.raw_upsert(_LOCATORS, locator.uid, locator)
        if snapshot.get("kv") is not None:
            self.database.raw_upsert(_KV, key, set(snapshot["kv"]))

    def import_key(self, key: str, snapshot: dict):
        """Generator: install one routing key's state (one admin-connection statement)."""
        self.requests += 1
        yield from self.database.admin_execute(
            lambda: self.import_key_now(key, snapshot))

    def drop_key_now(self, key: str) -> None:
        """Remove every record under routing key *key* (migration clean-up)."""
        self.database.raw_delete(_DATA, key)
        for locator in self.database.raw_query(_LOCATORS,
                                               lambda l: l.data_uid == key):
            self.database.raw_delete(_LOCATORS, locator.uid)
        self.database.raw_delete(_KV, key)

    def drop_key(self, key: str):
        """Generator: drop one routing key's state (one admin-connection statement)."""
        self.requests += 1
        yield from self.database.admin_execute(lambda: self.drop_key_now(key))
