"""Elastic fabric: live shard split/merge with zero-loss key migration.

The fabric's shard count is fixed at deployment (PR 5); production traffic
is bursty.  This module rebalances a *running* fabric: it moves the catalog
and scheduler state owned by the consistent-hash arcs that change hands in
an S → S±1 ring transition, while client traffic keeps flowing, with

* **zero lost requests** — every client call issued during the migration
  completes against the shard that authoritatively owns its key at that
  instant, and
* **zero duplicated effects** — a key's state is mutated on exactly one
  authoritative shard; dual reads during the overlap are de-duplicated by
  the scatter merge.

The protocol is the classic four-phase live migration:

``prepare``
    Build the new ring (same vnode family, so only the joining/leaving
    shard's arcs change hands), enumerate the routing keys on every shard
    (paying the RPC + database cost), and take an atomic key snapshot from
    which the :class:`~repro.services.router.HandoffPlan` per service is
    computed.  For a split the new shard's services, database and
    endpoints come up now (:meth:`ServiceFabric.add_shard`).  The routing
    overlay (:class:`ShardMigration`) is installed atomically with the
    plan: planned keys keep routing to their source shard; keys born later
    route by the *new* ring from their first request.

``copy``
    Every planned key is exported from its source and imported into its
    destination shard through ordinary failover RPC (a service-host crash
    mid-copy reroutes to a replica; export/import/drop are idempotent, so
    even a lost response is safely retried).  Client traffic continues;
    any operation or scheduler-internal mutation touching a copied key
    marks it *dirty*.

``cutover``
    New placements of the moving scheduler entries are quiesced, the
    planned keys are **sealed** (new client calls on them park on an
    event), in-flight calls drain, and dirty keys are re-copied until
    clean — convergence is guaranteed because sealed keys take no client
    writes and quiesced entries take no new placements; only failure-
    detector repairs can re-dirty, and each re-copy round picks those up.
    Then every planned key *flips* to its destination and the seal lifts:
    parked calls resume against the new owner (the forwarding that makes
    the window lossless).  The sealed wall-clock is recorded.

``drain``
    Moved state is dropped from the source shards (requests already route
    to the destinations; scatters still dual-read until the drop lands and
    de-duplicate by uid), the rings are committed fabric-wide, and — for a
    merge — the leaving shard waits for its last in-flight invocation
    before its endpoints and services retire.

:class:`RebalanceCoordinator` drives the protocol as a simulation process
and records a :class:`MigrationStats` per transition (keys moved vs the
theoretical minimum, dirty re-copy rounds, sealed duration) — the numbers
the ``fabric-rebalance`` bench reports.  ``on_phase`` is the chaos-test
hook: it fires at every phase boundary so tests can crash service hosts at
the worst possible instants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.rpc import RpcChannel, RpcError, RpcResponseLostError
from repro.services.router import FabricRouter, HandoffPlan

__all__ = ["MigrationStats", "RebalanceCoordinator", "ShardMigration"]

_SERVICES = ("dc", "ds")


@dataclass
class MigrationStats:
    """What one live ring transition cost."""

    kind: str                     #: "split" or "merge"
    old_shards: int
    new_shards: int
    started_at: float
    finished_at: float = 0.0
    #: per service: keys in the handoff plan / on any shard / re-copied
    keys_planned: Dict[str, int] = field(default_factory=dict)
    total_keys: Dict[str, int] = field(default_factory=dict)
    keys_recopied: Dict[str, int] = field(default_factory=dict)
    #: per service: the balanced-ring minimum the plan is judged against
    theoretical_minimum: Dict[str, float] = field(default_factory=dict)
    dirty_rounds: int = 0
    sealed_s: float = 0.0

    @property
    def keys_moved(self) -> int:
        return sum(self.keys_planned.values())

    @property
    def minimum_moves(self) -> float:
        return sum(self.theoretical_minimum.values())

    @property
    def move_ratio(self) -> float:
        """Keys moved over the balanced-ring minimum (≤ 1+ε for a good ring)."""
        minimum = self.minimum_moves
        return self.keys_moved / minimum if minimum else 0.0


class ShardMigration:
    """The routing overlay for one in-flight ring transition.

    Owns the migration state machine the router consults on every keyed
    invocation: which keys are planned to move, which have flipped to
    their destination, whether the cutover seal is up, how many tracked
    calls are in flight, and which copied keys were dirtied by later
    mutations.
    """

    def __init__(self, env, kind: str,
                 old_rings: Dict[str, "ShardRing"],
                 new_rings: Dict[str, "ShardRing"],
                 plans: Dict[str, HandoffPlan]):
        self.env = env
        self.kind = kind
        self.old_rings = dict(old_rings)
        self.new_rings = dict(new_rings)
        self.plans = dict(plans)
        #: service -> key -> KeyMove
        self.planned = {service: {move.key: move
                                  for move in plans[service].moves}
                        for service in _SERVICES}
        self.flipped: Dict[str, Set[str]] = {s: set() for s in _SERVICES}
        self.dirty: Dict[str, Set[str]] = {s: set() for s in _SERVICES}
        self.sealed = False
        self.sealed_at: Optional[float] = None
        self.sealed_s = 0.0
        self._unseal_event = None
        self._inflight = 0
        self._drain_event = None

    # ------------------------------------------------------------------ routing
    def effective_shard(self, service: str, key: str) -> int:
        """The shard that authoritatively owns *key* right now."""
        move = self.planned[service].get(key)
        if move is not None:
            return move.dst if key in self.flipped[service] else move.src
        # Not planned ⇒ the key had no state when the plan snapshot was
        # taken; it lives wherever the *new* ring puts it from birth (for
        # keys on unchanged arcs that is also the old owner).
        return self.new_rings[service].shard_for(key)

    def is_blocked(self, service: str, key: str) -> bool:
        return (self.sealed and key in self.planned[service]
                and key not in self.flipped[service])

    def wait_key(self, service: str, key: str):
        """Generator: park while *key* sits in the sealed cutover window."""
        while self.is_blocked(service, key):
            yield self._unseal_event

    def wait_keys(self, service: str, keys):
        """Generator: park while *any* of *keys* is sealed."""
        while self.sealed and any(self.is_blocked(service, key)
                                  for key in keys):
            yield self._unseal_event

    # ------------------------------------------------------------------ tracking
    def note_enter(self, service: str, keys) -> Tuple[str, List[str]]:
        """Track a call touching *keys*; returns the token for note_exit."""
        tracked = [key for key in keys
                   if key in self.planned[service]
                   and key not in self.flipped[service]]
        self._inflight += len(tracked)
        return (service, tracked)

    def note_exit(self, token: Tuple[str, List[str]]) -> None:
        service, tracked = token
        for key in tracked:
            if key not in self.flipped[service]:
                # The completed call may have mutated source-shard state
                # copied earlier; re-copy before the flip.
                self.dirty[service].add(key)
        self._inflight -= len(tracked)
        if (self._inflight <= 0 and self._drain_event is not None
                and not self._drain_event.triggered):
            self._drain_event.succeed()

    def note_dirty_from(self, service: str, shard: int, key: str) -> None:
        """Scheduler-internal mutation on *shard*: dirty if it is the source."""
        move = self.planned[service].get(key)
        if (move is not None and move.src == shard
                and key not in self.flipped[service]):
            self.dirty[service].add(key)

    def has_dirty(self) -> bool:
        return any(self.dirty[service] for service in _SERVICES)

    def take_dirty(self) -> List[Tuple[str, str]]:
        """Drain the dirty sets into a deterministic re-copy worklist."""
        work = [(service, key) for service in _SERVICES
                for key in sorted(self.dirty[service])]
        for service in _SERVICES:
            self.dirty[service].clear()
        return work

    # ------------------------------------------------------------------ cutover
    def seal(self) -> None:
        self.sealed = True
        self.sealed_at = self.env.now
        self._unseal_event = self.env.event()

    def wait_drained(self):
        """Generator: wait until no tracked call is in flight."""
        while self._inflight > 0:
            self._drain_event = self.env.event()
            yield self._drain_event
        self._drain_event = None

    def flip_all(self) -> None:
        for service in _SERVICES:
            self.flipped[service].update(self.planned[service])

    def unseal(self) -> None:
        self.sealed = False
        if self.sealed_at is not None:
            self.sealed_s += self.env.now - self.sealed_at
            self.sealed_at = None
        event, self._unseal_event = self._unseal_event, None
        if event is not None and not event.triggered:
            event.succeed()


class RebalanceCoordinator:
    """Drives live shard splits and merges against a running fabric."""

    #: re-copy rounds before the coordinator declares non-convergence
    MAX_DIRTY_ROUNDS = 64

    def __init__(self, fabric, router: FabricRouter,
                 channel: Optional[RpcChannel] = None,
                 on_phase: Optional[Callable] = None):
        self.fabric = fabric
        self.router = router
        self.env = fabric.env
        self.channel = channel if channel is not None else fabric.channel()
        self.on_phase = on_phase
        #: completed transitions, in order
        self.history: List[MigrationStats] = []

    # ------------------------------------------------------------------ public
    def split(self):
        """Generator: grow the fabric by one shard, live."""
        result = yield from self._run("split", self.fabric.shards + 1)
        return result

    def merge(self):
        """Generator: shrink the fabric by one shard (the tail), live."""
        if self.fabric.shards <= 1:
            raise ValueError("cannot merge below one shard")
        result = yield from self._run("merge", self.fabric.shards - 1)
        return result

    # ------------------------------------------------------------------ RPC plumbing
    def _call(self, service: str, shard: int, method: str, *args):
        """Generator: coordinator RPC with failover *and* lost-response retry.

        Every migration RPC (enumerate/export/import/drop) is idempotent,
        so — unlike client traffic, where at-most-once forbids it — a
        response lost to a crash is safe to retry against a replica.
        """
        attempts = 0
        while True:
            try:
                result = yield from self.channel.invoke_failover(
                    self.router._resolver(service, shard), method, *args,
                    policy=self.router.policy)
                return result
            except RpcResponseLostError:
                attempts += 1
                if attempts > 8:
                    raise
                yield self.env.timeout(self.router.policy.backoff_s)

    def _phase(self, phase: str, migration: Optional[ShardMigration]) -> None:
        if self.on_phase is not None:
            self.on_phase(phase, migration)

    def _copy_one(self, service: str, key: str, src: int, dst: int):
        """Generator: move one key's state src → dst (replace semantics)."""
        if service == "dc":
            snapshot = yield from self._call("dc", src, "export_key", key)
            if (snapshot["data"] is None and not snapshot["locators"]
                    and snapshot["kv"] is None):
                # The key lost its state since it was planned (deleted);
                # make the destination match.
                yield from self._call("dc", dst, "drop_key", key)
            else:
                yield from self._call("dc", dst, "import_key", key, snapshot)
        else:
            snapshot = yield from self._call("ds", src, "export_entry", key)
            if snapshot is None:
                yield from self._call("ds", dst, "drop_entry", key)
            else:
                yield from self._call("ds", dst, "import_entry", snapshot)

    # ------------------------------------------------------------------ the protocol
    def _run(self, kind: str, new_shards: int):
        fabric = self.fabric
        router = self.router
        if router.migration is not None:
            raise RpcError("a shard migration is already in progress")
        old_shards = fabric.shards
        stats = MigrationStats(kind=kind, old_shards=old_shards,
                               new_shards=new_shards,
                               started_at=self.env.now)

        # ---------------------------------------------------------- prepare
        self._phase("prepare", None)
        new_rings = {service: fabric.ring_for(service).with_shards(new_shards)
                     for service in _SERVICES}
        old_rings = {service: fabric.ring_for(service)
                     for service in _SERVICES}
        if kind == "split":
            fabric.add_shard()
        # Pay the enumeration cost: one catalog/scheduler scan per shard.
        for service in _SERVICES:
            for shard in range(old_shards):
                yield from self._call(service, shard, "migration_keys")
        # Atomic snapshot + plan + overlay install (no yields in between):
        # every key written before this instant is either in the plan or on
        # an unchanged arc; every key born after it routes by the new ring.
        services = {"dc": fabric.catalog_shards, "ds": fabric.scheduler_shards}
        plans: Dict[str, HandoffPlan] = {}
        for service in _SERVICES:
            keys: List[str] = []
            for shard in range(old_shards):
                keys.extend(services[service][shard].migration_keys())
            plans[service] = old_rings[service].plan_handoff(
                new_rings[service], keys)
            stats.keys_planned[service] = plans[service].keys_moved
            stats.total_keys[service] = plans[service].total_keys
            stats.theoretical_minimum[service] = (
                plans[service].theoretical_minimum)
        migration = ShardMigration(self.env, kind, old_rings, new_rings,
                                   plans)
        router.migration = migration
        fabric.data_catalog.migration = migration
        fabric.data_scheduler.migration = migration
        for shard in range(old_shards):
            fabric.scheduler_shards[shard]._mutation_hook = (
                lambda uid, _shard=shard: migration.note_dirty_from(
                    "ds", _shard, uid))

        ds_by_src: Dict[int, Set[str]] = {}
        for move in plans["ds"].moves:
            ds_by_src.setdefault(move.src, set()).add(move.key)
        try:
            # ------------------------------------------------------- copy
            self._phase("copy", migration)
            for service in _SERVICES:
                for move in plans[service].moves:
                    yield from self._copy_one(service, move.key,
                                              move.src, move.dst)

            # ---------------------------------------------------- cutover
            self._phase("cutover", migration)
            for shard, uids in sorted(ds_by_src.items()):
                fabric.scheduler_shards[shard].quiesce(uids)
            migration.seal()
            yield from migration.wait_drained()
            recopied = {service: 0 for service in _SERVICES}
            while migration.has_dirty():
                stats.dirty_rounds += 1
                if stats.dirty_rounds > self.MAX_DIRTY_ROUNDS:
                    raise RpcError(
                        f"shard migration failed to converge after "
                        f"{self.MAX_DIRTY_ROUNDS} re-copy rounds")
                for service, key in migration.take_dirty():
                    move = migration.planned[service][key]
                    yield from self._copy_one(service, key,
                                              move.src, move.dst)
                    recopied[service] += 1
            stats.keys_recopied = recopied
            migration.flip_all()
            migration.unseal()

            # ------------------------------------------------------ drain
            self._phase("drain", migration)
            for service in _SERVICES:
                drop = "drop_key" if service == "dc" else "drop_entry"
                for move in plans[service].moves:
                    yield from self._call(service, move.src, drop, move.key)
            for shard, uids in sorted(ds_by_src.items()):
                fabric.scheduler_shards[shard].unquiesce(uids)
            fabric.commit_transition(new_rings["dc"], new_rings["ds"],
                                     new_shards)
            if kind == "merge":
                # The leaving shard serves no keys any more (planned keys
                # flipped; new keys route by the committed ring), but a
                # straggler call may still hold its resolver — retire only
                # once idle.
                yield from router.wait_shard_idle(new_shards)
        finally:
            # Unwind the overlay even on a failed migration: lift the seal
            # (parked calls must not hang), unfreeze placements, drop the
            # dirty hooks, and restore plain ring routing.  After an
            # aborted copy the sources remain authoritative — stale
            # destination copies are reads-only duplicates the scatter
            # merge already de-duplicates.
            if migration.sealed:
                migration.unseal()
            for shard, uids in sorted(ds_by_src.items()):
                fabric.scheduler_shards[shard].unquiesce(uids)
            for shard in range(min(old_shards, len(fabric.scheduler_shards))):
                fabric.scheduler_shards[shard]._mutation_hook = None
            router.migration = None
            fabric.data_catalog.migration = None
            fabric.data_scheduler.migration = None
        if kind == "merge":
            fabric.retire_tail_shard()
        stats.sealed_s = migration.sealed_s
        stats.finished_at = self.env.now
        self.history.append(stats)
        return stats
