"""Data Repository service (DR, paper §3.4.2).

The DR has two responsibilities: interfacing with persistent storage and
providing remote access to data.  It "acts as a wrapper around legacy file
server or file system" — here it wraps the stable service host's
:class:`~repro.storage.filesystem.LocalFileSystem` and hands out
:class:`~repro.core.data.Locator` objects plus the protocol description the
Data Transfer service needs to move the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.data import Data, Locator
from repro.core.exceptions import DataNotFoundError
from repro.net.host import Host
from repro.storage.filesystem import FileContent, LocalFileSystem
from repro.transfer.oob import TransferEndpoint

__all__ = ["DataRepositoryService", "ProtocolDescription"]


@dataclass(frozen=True)
class ProtocolDescription:
    """What a client needs to set up the file transfer service (§3.4.1)."""

    protocol: str
    host_name: str
    reference: str
    supports_resume: bool = True


class DataRepositoryService:
    """Persistent storage with remote access, on a stable host."""

    def __init__(self, env, host: Host, filesystem: Optional[LocalFileSystem] = None,
                 default_protocol: str = "http",
                 access_overhead_s: float = 0.0005):
        self.env = env
        self.host = host
        self.filesystem = filesystem if filesystem is not None else LocalFileSystem(
            owner=host.name)
        self.default_protocol = default_protocol
        self.access_overhead_s = float(access_overhead_s)
        #: data_uid -> repository path
        self._paths: Dict[str, str] = {}
        self.requests = 0

    # -- storage ------------------------------------------------------------------
    def path_for(self, data: Data) -> str:
        return f"repository/{data.uid}/{data.name}"

    def store_now(self, data: Data, content: FileContent) -> Locator:
        """Write content into the repository and return its permanent locator."""
        if not data.matches_content(content):
            raise ValueError(
                f"content checksum/size does not match data {data.name!r}")
        path = self.path_for(data)
        self.filesystem.write(path, content)
        self._paths[data.uid] = path
        return Locator(data_uid=data.uid, host_name=self.host.name,
                       reference=path, protocol=self.default_protocol,
                       permanent=True)

    def has(self, data_uid: str) -> bool:
        path = self._paths.get(data_uid)
        return path is not None and self.filesystem.exists(path)

    def retrieve_now(self, data_uid: str) -> FileContent:
        path = self._paths.get(data_uid)
        if path is None or not self.filesystem.exists(path):
            raise DataNotFoundError(
                f"repository on {self.host.name} holds no content for {data_uid!r}")
        return self.filesystem.read(path)

    def delete_now(self, data_uid: str) -> bool:
        path = self._paths.pop(data_uid, None)
        if path is None:
            return False
        return self.filesystem.delete(path)

    def register_upload(self, data: Data) -> Locator:
        """Acknowledge content uploaded out-of-band into the repository path.

        Used by clients that push content with the Data Transfer service: the
        bytes land at :meth:`path_for`; this records the path and returns the
        permanent locator to register in the Data Catalog.
        """
        path = self.path_for(data)
        if not self.filesystem.exists(path):
            raise DataNotFoundError(
                f"no uploaded content at {path!r} on {self.host.name}")
        content = self.filesystem.read(path)
        if not data.matches_content(content):
            raise ValueError(
                f"uploaded content does not match data {data.name!r} "
                "(checksum/size mismatch)")
        self._paths[data.uid] = path
        return Locator(data_uid=data.uid, host_name=self.host.name,
                       reference=path, protocol=self.default_protocol,
                       permanent=True)

    def endpoint_for(self, data_uid: str) -> TransferEndpoint:
        """The repository-side endpoint of a transfer of *data_uid*."""
        path = self._paths.get(data_uid)
        if path is None:
            raise DataNotFoundError(
                f"repository on {self.host.name} holds no content for {data_uid!r}")
        return TransferEndpoint(host=self.host, filesystem=self.filesystem,
                                path=path)

    @property
    def stored_count(self) -> int:
        return len(self._paths)

    @property
    def used_mb(self) -> float:
        return self.filesystem.used_mb

    # -- remote-access protocol (generators: costed when called over RPC) -----------
    def describe_protocol(self, data_uid: str, protocol: Optional[str] = None):
        """Generator: the protocol description for downloading *data_uid*."""
        self.requests += 1
        yield self.env.timeout(self.access_overhead_s)
        path = self._paths.get(data_uid)
        if path is None:
            raise DataNotFoundError(
                f"repository on {self.host.name} holds no content for {data_uid!r}")
        return ProtocolDescription(
            protocol=(protocol or self.default_protocol),
            host_name=self.host.name,
            reference=path,
        )

    def store(self, data: Data, content: FileContent):
        """Generator: remote store (upload landing in the repository)."""
        self.requests += 1
        yield self.env.timeout(self.access_overhead_s)
        return self.store_now(data, content)

    def retrieve(self, data_uid: str):
        """Generator: remote read of the repository content."""
        self.requests += 1
        yield self.env.timeout(self.access_overhead_s)
        return self.retrieve_now(data_uid)
