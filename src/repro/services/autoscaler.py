"""SLO-driven autoscaling over the elastic fabric.

The rebalance coordinator (:mod:`repro.services.rebalance`) makes the shard
count a *runtime* knob; this module decides when to turn it.  Three pieces:

* :class:`SloTracker` — the client-side latency SLO.  The workload driver
  feeds it one observation per completed request; a polling process keeps a
  sliding window, computes the windowed p99 and integrates **violation
  seconds** — the wall-clock time the fabric spent above its p99 target.
  The integral is the scenario's figure of merit: the ``fabric-autoscale``
  bench reports it with and without the autoscaler on the same diurnal
  trace.

* :class:`HotspotMonitor` — where the latency is coming from.  PR 5's RPC
  channels account calls and latency per endpoint label (one label per
  shard replica set, e.g. ``"DataCatalog[dc-1]"``); the monitor diffs those
  counters between control-loop ticks, so each scaling decision records the
  *hot* shard over the last interval, not over all history.

* :class:`SloAutoscaler` — the control loop.  Every ``interval_s`` it reads
  the windowed p99 and, outside the post-action ``cooldown_s``, asks the
  rebalance coordinator for a live split (p99 above target, below
  ``max_shards``) or a live merge (p99 under ``merge_below`` × target,
  above ``min_shards``).  The asymmetric thresholds are the hysteresis
  band that keeps the loop from flapping around the target; the cooldown
  gives a fresh shard time to absorb load before the next measurement is
  trusted.  Every tick appends a :class:`ScaleDecision`, so a bench run
  yields the full decision trace, deterministically.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HotspotMonitor",
    "ScaleDecision",
    "SloAutoscaler",
    "SloTracker",
]


class SloTracker:
    """Sliding-window latency percentiles and the SLO-violation integral.

    ``observe`` is O(1); the percentile sorts the window on demand.  The
    violation integral advances in :meth:`run`'s polling steps: a poll that
    sees the windowed p99 above ``target_p99_s`` charges the whole
    ``poll_s`` step to ``violation_seconds`` (rectangle rule — identical
    for every deployment compared on the same trace, which is all the
    with/without comparison needs).
    """

    def __init__(self, env, target_p99_s: float, window_s: float = 10.0,
                 poll_s: float = 0.5):
        if target_p99_s <= 0:
            raise ValueError("target_p99_s must be positive")
        if window_s <= 0 or poll_s <= 0:
            raise ValueError("window_s and poll_s must be positive")
        self.env = env
        self.target_p99_s = float(target_p99_s)
        self.window_s = float(window_s)
        self.poll_s = float(poll_s)
        #: (completion time, latency) pairs inside the sliding window
        self._samples: Deque[Tuple[float, float]] = deque()
        self.observed = 0
        self.max_latency_s = 0.0
        #: seconds the windowed p99 spent above target (the SLO integral)
        self.violation_seconds = 0.0
        #: polls above target / total polls
        self.violation_polls = 0
        self.polls = 0
        self.worst_p99_s = 0.0

    # ------------------------------------------------------------------ feeding
    def observe(self, latency_s: float) -> None:
        """Record one completed client request's latency."""
        self.observed += 1
        if latency_s > self.max_latency_s:
            self.max_latency_s = latency_s
        self._samples.append((self.env.now, latency_s))

    def _evict(self) -> None:
        horizon = self.env.now - self.window_s
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    # ------------------------------------------------------------------ reading
    def percentile(self, q: float) -> Optional[float]:
        """Windowed latency percentile (None while the window is empty)."""
        self._evict()
        if not self._samples:
            return None
        ordered = sorted(latency for _at, latency in self._samples)
        index = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[index]

    def p99(self) -> Optional[float]:
        return self.percentile(0.99)

    @property
    def in_violation(self) -> bool:
        p99 = self.p99()
        return p99 is not None and p99 > self.target_p99_s

    # ------------------------------------------------------------------ integral
    def run(self, for_s: Optional[float] = None):
        """Generator process: poll the window and integrate violations."""
        started = self.env.now
        while for_s is None or self.env.now - started < for_s:
            yield self.env.timeout(self.poll_s)
            self.polls += 1
            p99 = self.p99()
            if p99 is not None and p99 > self.worst_p99_s:
                self.worst_p99_s = p99
            if p99 is not None and p99 > self.target_p99_s:
                self.violation_polls += 1
                self.violation_seconds += self.poll_s


class HotspotMonitor:
    """Per-shard load deltas from the channels' per-label RPC accounting.

    Channels accumulate ``calls_by_label``/``latency_by_label`` forever;
    scaling wants the load *since the last look*.  :meth:`delta` returns
    per-label (calls, latency) increments since the previous call and
    :meth:`hottest` names the label that accumulated the most latency over
    the interval — deterministic (ties break on the label).
    """

    def __init__(self, channels: Sequence):
        self.channels = list(channels)
        self._last_calls: Dict[str, int] = {}
        self._last_latency: Dict[str, float] = {}

    def _totals(self) -> Tuple[Dict[str, int], Dict[str, float]]:
        calls: Dict[str, int] = {}
        latency: Dict[str, float] = {}
        for channel in self.channels:
            for label, count in channel.calls_by_label.items():
                calls[label] = calls.get(label, 0) + count
            for label, cost in channel.latency_by_label.items():
                latency[label] = latency.get(label, 0.0) + cost
        return calls, latency

    def delta(self) -> Dict[str, Tuple[int, float]]:
        """(calls, latency) accumulated per label since the previous delta."""
        calls, latency = self._totals()
        out = {}
        for label in sorted(calls):
            d_calls = calls[label] - self._last_calls.get(label, 0)
            d_latency = latency.get(label, 0.0) - self._last_latency.get(
                label, 0.0)
            if d_calls > 0 or d_latency > 0:
                out[label] = (d_calls, d_latency)
        self._last_calls = calls
        self._last_latency = latency
        return out

    @staticmethod
    def hottest(delta: Dict[str, Tuple[int, float]]) -> Optional[str]:
        """The label with the most latency in *delta* (None when idle)."""
        if not delta:
            return None
        return max(sorted(delta), key=lambda label: delta[label][1])


@dataclass(frozen=True)
class ScaleDecision:
    """One control-loop tick's outcome."""

    at: float
    action: str                    #: "split" | "merge" | "hold"
    p99_s: Optional[float]
    shards: int
    hot_label: Optional[str] = None
    reason: str = ""


class SloAutoscaler:
    """Holds a p99 latency target by splitting/merging live shards.

    ``cooldown_s`` counts from the *completion* of the previous rebalance
    and should exceed the tracker's ``window_s``: the cutover seal parks
    requests for a few hundred milliseconds, and those self-inflicted
    latency spikes must age out of the sliding window before the next
    measurement is trusted — otherwise a merge's own seal re-triggers a
    split and the loop flaps.
    """

    def __init__(self, fabric, router, tracker: SloTracker,
                 coordinator=None, monitor: Optional[HotspotMonitor] = None,
                 interval_s: float = 2.0, cooldown_s: float = 8.0,
                 min_shards: int = 1, max_shards: int = 8,
                 merge_below: float = 0.4):
        from repro.services.rebalance import RebalanceCoordinator
        if not 0.0 < merge_below < 1.0:
            raise ValueError("merge_below must be in (0, 1) — it is the "
                             "hysteresis band under the split threshold")
        if min_shards < 1 or max_shards < min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        self.fabric = fabric
        self.router = router
        self.tracker = tracker
        self.coordinator = (coordinator if coordinator is not None
                            else RebalanceCoordinator(fabric, router))
        self.monitor = monitor
        self.env = fabric.env
        self.interval_s = float(interval_s)
        self.cooldown_s = float(cooldown_s)
        self.min_shards = int(min_shards)
        self.max_shards = int(max_shards)
        self.merge_below = float(merge_below)
        self.decisions: List[ScaleDecision] = []
        self.splits = 0
        self.merges = 0
        self._last_action_at: Optional[float] = None

    # ------------------------------------------------------------------ loop
    def _decide(self, p99: Optional[float]) -> Tuple[str, str]:
        target = self.tracker.target_p99_s
        in_cooldown = (
            self._last_action_at is not None
            and self.env.now - self._last_action_at < self.cooldown_s)
        if self.router.migration is not None:
            return "hold", "migration in flight"
        if in_cooldown:
            return "hold", "cooldown"
        if p99 is None:
            return "hold", "no samples"
        if p99 > target:
            if self.fabric.shards >= self.max_shards:
                return "hold", "p99 above target but at max_shards"
            return "split", (f"p99 {p99 * 1e3:.1f}ms > target "
                             f"{target * 1e3:.1f}ms")
        if p99 < self.merge_below * target:
            if self.fabric.shards <= self.min_shards:
                return "hold", "idle but at min_shards"
            return "merge", (f"p99 {p99 * 1e3:.1f}ms < "
                             f"{self.merge_below:.0%} of target")
        return "hold", "inside hysteresis band"

    def run(self, for_s: Optional[float] = None):
        """Generator process: the control loop."""
        started = self.env.now
        while for_s is None or self.env.now - started < for_s:
            yield self.env.timeout(self.interval_s)
            p99 = self.tracker.p99()
            action, reason = self._decide(p99)
            hot = None
            if self.monitor is not None:
                hot = self.monitor.hottest(self.monitor.delta())
            self.decisions.append(ScaleDecision(
                at=self.env.now, action=action, p99_s=p99,
                shards=self.fabric.shards, hot_label=hot, reason=reason))
            if action == "split":
                self.splits += 1
                yield from self.coordinator.split()
                self._last_action_at = self.env.now
            elif action == "merge":
                self.merges += 1
                yield from self.coordinator.merge()
                self._last_action_at = self.env.now

    # ------------------------------------------------------------------ report
    def decision_trace(self) -> List[dict]:
        """The non-hold decisions, JSON-ready (the bench's audit trail)."""
        return [
            {"at_s": d.at, "action": d.action,
             "p99_ms": None if d.p99_s is None else d.p99_s * 1e3,
             "shards": d.shards, "hot_label": d.hot_label,
             "reason": d.reason}
            for d in self.decisions if d.action != "hold"]
