"""The BitDew service layer (paper §3.4): the D* services.

Stable nodes run four independent services which together form the runtime
environment:

* :mod:`repro.services.data_catalog` — **Data Catalog (DC)**: indexes data
  meta-information and locators; the permanent copies' critical path.
* :mod:`repro.services.data_repository` — **Data Repository (DR)**: the
  interface to persistent storage with remote access (a wrapper around a
  file server / file system).
* :mod:`repro.services.data_transfer` — **Data Transfer (DT)**: launches
  out-of-band transfers, supervises them (receiver-driven probing), resumes
  faulty transfers and reports bandwidth.
* :mod:`repro.services.data_scheduler` — **Data Scheduler (DS)**: interprets
  data attributes and generates transfer orders (Algorithm 1); owns the
  fault-tolerance logic for volatile reservoir hosts.

plus two supporting modules:

* :mod:`repro.services.heartbeat` — the timeout-based failure detector used
  for volatile nodes (failures detected after 3 missed heartbeats in the
  paper's experiments).
* :mod:`repro.services.container` — the service container that instantiates
  and wires the D* services on a stable host.
"""

from repro.services.data_catalog import DataCatalogService
from repro.services.data_repository import DataRepositoryService
from repro.services.data_scheduler import DataSchedulerService, SyncResult
from repro.services.data_transfer import DataTransferService
from repro.services.heartbeat import FailureDetector
from repro.services.container import ServiceContainer

__all__ = [
    "DataCatalogService",
    "DataRepositoryService",
    "DataSchedulerService",
    "DataTransferService",
    "FailureDetector",
    "ServiceContainer",
    "SyncResult",
]
