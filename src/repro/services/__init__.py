"""The BitDew service layer (paper §3.4): the D* services.

Stable nodes run four independent services which together form the runtime
environment:

* :mod:`repro.services.data_catalog` — **Data Catalog (DC)**: indexes data
  meta-information and locators; the permanent copies' critical path.
* :mod:`repro.services.data_repository` — **Data Repository (DR)**: the
  interface to persistent storage with remote access (a wrapper around a
  file server / file system).
* :mod:`repro.services.data_transfer` — **Data Transfer (DT)**: launches
  out-of-band transfers, supervises them (receiver-driven probing), resumes
  faulty transfers and reports bandwidth.
* :mod:`repro.services.data_scheduler` — **Data Scheduler (DS)**: interprets
  data attributes and generates transfer orders (Algorithm 1); owns the
  fault-tolerance logic for volatile reservoir hosts.

plus the deployment modules:

* :mod:`repro.services.heartbeat` — the timeout-based failure detector used
  for volatile nodes (failures detected after 3 missed heartbeats in the
  paper's experiments) and, in the fabric, for the service hosts.
* :mod:`repro.services.container` — the classic single-host deployment: the
  service container that instantiates and wires the D* services on one
  stable host.
* :mod:`repro.services.fabric` — the distributed deployment: the Data
  Catalog and Data Scheduler sharded by consistent hashing and replicated
  over N service hosts.
* :mod:`repro.services.router` — key → shard → live-replica routing with
  heartbeat-driven failover (the client side of the fabric).
"""

from repro.services.data_catalog import DataCatalogService
from repro.services.data_repository import DataRepositoryService
from repro.services.data_scheduler import DataSchedulerService, SyncResult
from repro.services.data_transfer import DataTransferService
from repro.services.fabric import ServiceFabric, ShardedDataCatalog, ShardedDataScheduler
from repro.services.heartbeat import FailureDetector
from repro.services.container import ServiceContainer
from repro.services.router import FabricRouter, ServiceRouter, ShardRing, StaticRouter

__all__ = [
    "DataCatalogService",
    "DataRepositoryService",
    "DataSchedulerService",
    "DataTransferService",
    "FabricRouter",
    "FailureDetector",
    "ServiceContainer",
    "ServiceFabric",
    "ServiceRouter",
    "ShardRing",
    "ShardedDataCatalog",
    "ShardedDataScheduler",
    "StaticRouter",
    "SyncResult",
]
