"""Service fabric: the D* services sharded and replicated over N hosts.

The classic deployment (:class:`~repro.services.container.ServiceContainer`)
co-hosts the four D* services on one stable node — the hard scalability
ceiling the paper's "flexible distributed service architecture" is meant to
avoid.  :class:`ServiceFabric` is the multi-host deployment:

* the **Data Catalog** and **Data Scheduler** are split into *S* shards by
  consistent hashing (key → shard via the Chord ring math, see
  :class:`~repro.services.router.ShardRing`); each shard gets its own
  database back-end, so aggregate service throughput scales with the shard
  count (the centralized database serialises statements — the very
  bottleneck Table 2 measures);
* each shard is **replicated** on *k* service hosts: the shard's state is a
  replicated state machine (modelled as the replicas sharing the shard's
  service instance) and each replica is an RPC endpoint on a distinct
  host, so a host crash leaves k-1 live endpoints;
* the **Data Repository** and **Data Transfer** services stay single-
  instance on the primary host (they bind to the repository's physical
  storage and the transfer monitor, which the paper keeps on the stable
  file server);
* a dedicated heartbeat **failure detector over the service hosts** drives
  failover: every service host heartbeats while online, and the
  :class:`~repro.services.router.FabricRouter` routes each shard to its
  first replica the detector believes alive — so a crash reroutes clients
  within one heartbeat timeout.

The single-host, single-shard default deployment does *not* go through this
module: :class:`~repro.core.runtime.BitDewEnvironment` keeps building the
classic container, byte-identical to the pre-fabric runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.net.flows import Network
from repro.net.host import Host
from repro.net.rpc import ChannelKind, FailoverPolicy, RpcChannel, RpcEndpoint
from repro.services.data_catalog import DataCatalogService
from repro.services.data_repository import DataRepositoryService
from repro.services.data_scheduler import DataSchedulerService
from repro.services.data_transfer import DataTransferService
from repro.services.heartbeat import FailureDetector
from repro.services.router import ShardRing
from repro.sim.kernel import Environment
from repro.storage.database import ConnectionPool, Database, DatabaseEngine, EmbeddedSQLEngine
from repro.storage.filesystem import LocalFileSystem
from repro.transfer.registry import ProtocolRegistry, default_registry

__all__ = ["ServiceFabric", "ShardedDataCatalog", "ShardedDataScheduler"]


class ShardedDataCatalog:
    """Facade over the catalog shards: routes by key, aggregates the rest.

    Gives harness code one object with the :class:`DataCatalogService`
    bookkeeping surface whether the catalog is centralized or sharded.
    """

    def __init__(self, shards: Sequence[DataCatalogService], ring: ShardRing):
        self.shards = list(shards)
        self.ring = ring
        #: the active ShardMigration overlay, if a rebalance is in flight —
        #: cost-free facade access follows the same effective routing as
        #: the RPC router so harness bookkeeping reads the right shard.
        self.migration = None

    def _shard(self, key: str) -> DataCatalogService:
        if self.migration is not None:
            return self.shards[self.migration.effective_shard("dc", key)]
        return self.shards[self.ring.shard_for(key)]

    # -- keyed pass-throughs (cost-free bookkeeping variants) ---------------
    def register_data_now(self, data):
        return self._shard(data.uid).register_data_now(data)

    def get_data_now(self, uid: str):
        return self._shard(uid).get_data_now(uid)

    def add_locator_now(self, locator):
        return self._shard(locator.data_uid).add_locator_now(locator)

    def locators_for_now(self, data_uid: str):
        return self._shard(data_uid).locators_for_now(data_uid)

    def lookup_pair_now(self, key: str) -> set:
        return self._shard(key).lookup_pair_now(key)

    # -- aggregates ---------------------------------------------------------
    def find_by_name_now(self, name: str):
        return [row for shard in self.shards
                for row in shard.find_by_name_now(name)]

    def all_data_now(self):
        return [row for shard in self.shards for row in shard.all_data_now()]

    @property
    def data_count(self) -> int:
        return sum(shard.data_count for shard in self.shards)

    @property
    def requests(self) -> int:
        return sum(shard.requests for shard in self.shards)


class ShardedDataScheduler:
    """Facade over the scheduler shards: Θ is partitioned by data uid."""

    def __init__(self, shards: Sequence[DataSchedulerService], ring: ShardRing):
        self.shards = list(shards)
        self.ring = ring
        #: the active ShardMigration overlay, if a rebalance is in flight
        self.migration = None

    def _shard(self, uid: str) -> DataSchedulerService:
        if self.migration is not None:
            return self.shards[self.migration.effective_shard("ds", uid)]
        return self.shards[self.ring.shard_for(uid)]

    # -- keyed pass-throughs ------------------------------------------------
    def schedule(self, data, attribute=None):
        return self._shard(data.uid).schedule(data, attribute)

    def pin(self, data, host_name: str, attribute=None):
        return self._shard(data.uid).pin(data, host_name, attribute)

    def unschedule(self, data_uid: str) -> bool:
        return self._shard(data_uid).unschedule(data_uid)

    def entry(self, data_uid: str):
        return self._shard(data_uid).entry(data_uid)

    def owners_of(self, data_uid: str) -> Set[str]:
        return self._shard(data_uid).owners_of(data_uid)

    def confirm_ownership(self, host_name: str, data_uid: str) -> None:
        self._shard(data_uid).confirm_ownership(host_name, data_uid)

    def release_ownership(self, host_name: str, data_uid: str) -> None:
        self._shard(data_uid).release_ownership(host_name, data_uid)

    def heartbeat(self, host_name: str) -> bool:
        # The shards share one failure detector; any shard records it.
        return self.shards[0].heartbeat(host_name)

    # -- aggregates ---------------------------------------------------------
    def entries(self):
        return [entry for shard in self.shards for entry in shard.entries()]

    def missing_replicas(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for shard in self.shards:
            merged.update(shard.missing_replicas())
        return merged

    @property
    def managed_count(self) -> int:
        return sum(shard.managed_count for shard in self.shards)

    @property
    def sync_count(self) -> int:
        return sum(shard.sync_count for shard in self.shards)

    @property
    def assignments(self) -> int:
        return sum(shard.assignments for shard in self.shards)

    @property
    def entries_examined(self) -> int:
        return sum(shard.entries_examined for shard in self.shards)

    @property
    def repairs_triggered(self) -> int:
        return sum(shard.repairs_triggered for shard in self.shards)


class ServiceFabric:
    """The D* services deployed over *N* stable hosts, sharded × replicated.

    Exposes the :class:`ServiceContainer` attribute surface
    (``host``, ``data_repository``, ``data_transfer``, ``data_catalog``,
    ``data_scheduler``, ``failure_detector``, ``start``/``stop``,
    ``channel``) so the runtime and harness code treat both deployments
    uniformly; ``data_catalog``/``data_scheduler`` are the sharded facades.
    """

    def __init__(
        self,
        env: Environment,
        hosts: Sequence[Host],
        network: Network,
        shards: int = 1,
        replicas: int = 1,
        engine: Optional[DatabaseEngine] = None,
        use_connection_pool: bool = True,
        pool_size: int = 8,
        registry: Optional[ProtocolRegistry] = None,
        heartbeat_period_s: float = 1.0,
        timeout_multiplier: float = 3.0,
        monitor_period_s: float = 0.5,
        max_data_schedule: int = 16,
        account_monitor_bandwidth: bool = True,
        host_heartbeat_period_s: float = 1.0,
        host_timeout_multiplier: float = 3.0,
        host_sweep_period_s: float = 0.25,
        failover_policy: Optional[FailoverPolicy] = None,
        ring_vnodes: int = 16,
        ring_seed: int = 0,
        domain: Optional[str] = None,
    ):
        hosts = list(hosts)
        if not hosts:
            raise ValueError("the service fabric needs at least one host")
        for host in hosts:
            if not host.stable:
                raise ValueError(
                    f"service fabric host {host.name} must be stable")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if not 1 <= replicas <= len(hosts):
            raise ValueError(
                f"replicas must be between 1 and the host count "
                f"({len(hosts)}), got {replicas}")
        self.env = env
        self.hosts = hosts
        self.host = hosts[0]          #: primary host (runs DR and DT)
        self.network = network
        self.shards = shards
        self.replicas = replicas
        self.max_data_schedule = int(max_data_schedule)
        #: administrative-domain id qualifying every endpoint label (None =
        #: single-domain deployment, historical labels unchanged)
        self.domain = domain

        engine = engine if engine is not None else EmbeddedSQLEngine()
        self.engine = engine
        self.registry = registry if registry is not None else default_registry(env, network)
        # Saved so add_shard() can build a new shard's database identically.
        self._use_connection_pool = use_connection_pool
        self._pool_size = pool_size

        # Service-host failure detection drives shard failover; it sweeps
        # faster than the volatile-host detector so reroutes land promptly.
        self.host_detector = FailureDetector(
            env, heartbeat_period_s=host_heartbeat_period_s,
            timeout_multiplier=host_timeout_multiplier,
            sweep_period_s=host_sweep_period_s)
        self.failover_policy = (
            failover_policy if failover_policy is not None
            else FailoverPolicy(
                max_attempts=max(
                    4, int(self.host_detector.timeout_s
                           / max(host_sweep_period_s, 1e-9)) + 4),
                backoff_s=host_sweep_period_s))
        # Volatile-host failure detection is a fabric-level (logically
        # replicated) service shared by every scheduler shard, exactly like
        # the container's detector — except that its timeout must also
        # cover the *failover blackout*: while a crashed service host goes
        # undetected, clients' heartbeats block in failover retries for up
        # to the detection window, and a live volatile host must not be
        # declared dead over that gap.
        blackout_s = (self.host_detector.timeout_s
                      + 2 * self.host_detector.sweep_period_s
                      + self.failover_policy.backoff_s)
        min_multiplier = (heartbeat_period_s + blackout_s) / heartbeat_period_s + 1.0
        self.failure_detector = FailureDetector(
            env, heartbeat_period_s=heartbeat_period_s,
            timeout_multiplier=max(timeout_multiplier, min_multiplier))

        # -- unsharded services on the primary host -------------------------
        self.data_repository = DataRepositoryService(
            env, self.host,
            filesystem=LocalFileSystem(owner=f"{self.host.name}:repository"))
        self.data_transfer = DataTransferService(
            env, self.host, network, self.registry,
            monitor_period_s=monitor_period_s,
            account_monitor_bandwidth=account_monitor_bandwidth)

        # -- sharded services ----------------------------------------------
        self.dc_ring = ShardRing(shards, label="dc", vnodes=ring_vnodes,
                                 seed=ring_seed)
        self.ds_ring = ShardRing(shards, label="ds", vnodes=ring_vnodes,
                                 seed=ring_seed)
        self.shard_databases: List[Database] = []
        self.catalog_shards: List[DataCatalogService] = []
        self.scheduler_shards: List[DataSchedulerService] = []
        self._endpoints: Dict[str, List[List[RpcEndpoint]]] = {
            "dc": [], "ds": []}
        for index in range(shards):
            self._build_shard(index)
        self._endpoints["dr"] = [[
            RpcEndpoint(self.data_repository, host=self.host,
                        name="DataRepository", domain=domain)]]
        self._endpoints["dt"] = [[
            RpcEndpoint(self.data_transfer, host=self.host,
                        name="DataTransfer", domain=domain)]]

        self.data_catalog = ShardedDataCatalog(self.catalog_shards,
                                               self.dc_ring)
        self.data_scheduler = ShardedDataScheduler(self.scheduler_shards,
                                                   self.ds_ring)
        # Note: no ``persistence`` facade — a PersistenceManager over a
        # single shard's database would silently miss the other shards'
        # records; code needing persistence walks ``shard_databases``.
        self._started = False
        #: bumped by every start(); heartbeat loops exit on a stale epoch,
        #: so stop()+start() never leaves two loops beating per host.
        self._epoch = 0

    # ------------------------------------------------------------------ shard construction
    def _build_shard(self, index: int) -> None:
        """Build shard *index*'s database, services and replica endpoints."""
        pool = (ConnectionPool(self.env, self.engine, size=self._pool_size)
                if self._use_connection_pool else None)
        database = Database(self.env, engine=self.engine, pool=pool)
        self.shard_databases.append(database)
        catalog = DataCatalogService(database)
        scheduler = DataSchedulerService(
            self.env, database=database,
            failure_detector=self.failure_detector,
            max_data_schedule=self.max_data_schedule)
        self.catalog_shards.append(catalog)
        self.scheduler_shards.append(scheduler)
        replica_hosts = self._replica_hosts(index)
        self._endpoints["dc"].append([
            RpcEndpoint(catalog, host=h, name="DataCatalog",
                        shard=f"dc-{index}", domain=self.domain)
            for h in replica_hosts])
        self._endpoints["ds"].append([
            RpcEndpoint(scheduler, host=h, name="DataScheduler",
                        shard=f"ds-{index}", domain=self.domain)
            for h in replica_hosts])

    # ------------------------------------------------------------------ elasticity
    def add_shard(self) -> int:
        """Bring up the services/database/endpoints for one new tail shard.

        Routing does **not** change here: ``self.shards`` and the rings are
        only committed by :meth:`commit_transition` once the rebalance
        coordinator has copied the new shard's keys over.  Until then the
        shard exists as endpoint group ``index`` that only the migration
        overlay routes to.
        """
        index = len(self.catalog_shards)
        self._build_shard(index)
        self.data_catalog.shards.append(self.catalog_shards[index])
        self.data_scheduler.shards.append(self.scheduler_shards[index])
        return index

    def commit_transition(self, dc_ring: ShardRing, ds_ring: ShardRing,
                          shards: int) -> None:
        """Make the new rings/shard count authoritative fabric-wide."""
        self.dc_ring = dc_ring
        self.ds_ring = ds_ring
        self.shards = shards
        self.data_catalog.ring = dc_ring
        self.data_scheduler.ring = ds_ring

    def retire_tail_shard(self) -> None:
        """Tear down the (drained, idle) tail shard after a merge."""
        self.shard_databases.pop()
        self.catalog_shards.pop()
        self.scheduler_shards.pop()
        self._endpoints["dc"].pop()
        self._endpoints["ds"].pop()
        self.data_catalog.shards.pop()
        self.data_scheduler.shards.pop()

    def endpoint_group_count(self, service: str) -> int:
        """Endpoint groups currently up for *service* — during a split this
        exceeds ``shard_count`` by the joining shard until commit."""
        groups = self._endpoints.get(service)
        return len(groups) if groups else 1

    # ------------------------------------------------------------------ placement
    def _replica_hosts(self, shard_index: int) -> List[Host]:
        """Primary-first replica placement: k consecutive hosts on the list
        (always distinct, since the constructor enforces k ≤ host count)."""
        count = len(self.hosts)
        return [self.hosts[(shard_index + offset) % count]
                for offset in range(self.replicas)]

    # ------------------------------------------------------------------ router surface
    def shard_count(self, service: str) -> int:
        """Shards of *service* (0 marks an unsharded, single-group service)."""
        return self.shards if service in ("dc", "ds") else 0

    def ring_for(self, service: str) -> ShardRing:
        return self.dc_ring if service == "dc" else self.ds_ring

    def shard_endpoints(self, service: str, shard: int) -> List[RpcEndpoint]:
        return self._endpoints[service][shard]

    def host_believed_alive(self, host: Optional[Host]) -> bool:
        """Heartbeat-driven liveness; a never-heartbeated host is presumed alive."""
        if host is None:
            return True
        entry = self.host_detector.liveness(host.name)
        return entry.alive if entry is not None else True

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the detectors and the service hosts' heartbeat loops."""
        if self._started:
            return
        self._started = True
        self._epoch += 1
        self.failure_detector.start()
        self.host_detector.start()
        for host in self.hosts:
            self.env.process(self._host_heartbeat_loop(host, self._epoch))

    def stop(self) -> None:
        self.failure_detector.stop()
        self.host_detector.stop()
        self._started = False

    def _host_heartbeat_loop(self, host: Host, epoch: int):
        period = self.host_detector.heartbeat_period_s
        while self._started and self._epoch == epoch:
            if host.online:
                self.host_detector.heartbeat(host.name)
            yield self.env.timeout(period)

    # ------------------------------------------------------------------ channels
    def channel(self, kind: ChannelKind = ChannelKind.RMI_REMOTE) -> RpcChannel:
        """A fresh communication channel towards the fabric's services."""
        return RpcChannel(self.env, kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ServiceFabric(hosts={len(self.hosts)}, "
                f"shards={self.shards}, replicas={self.replicas})")
