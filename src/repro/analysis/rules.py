"""Rule base class and registry for detlint.

Rules self-register via :func:`register`; the engine instantiates every
registered rule (or a caller-chosen subset) and feeds each parsed module
through them.  Registration order is import order, but reports are
sorted by location, so rule order never shows.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.module import ParsedModule

__all__ = ["Rule", "all_rules", "make_rules", "register"]


class Rule:
    """One statically checkable policy. Subclass and :func:`register`."""

    #: e.g. "DET001"; unique across the registry.
    rule_id: str = ""
    #: one-line summary shown by ``--list-rules``.
    title: str = ""

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        doc = (cls.__doc__ or "").strip().splitlines()
        return doc[0] if doc else cls.title


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, importing the built-in rule modules on first use."""
    # Imported lazily to avoid a cycle (rule modules import this one).
    from repro.analysis import arch, det  # noqa: F401
    return dict(_REGISTRY)


def make_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate every registered rule (or the ids listed in *only*)."""
    registry = all_rules()
    if only is None:
        ids = sorted(registry)
    else:
        unknown = sorted(set(only) - set(registry))
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(unknown)}")
        ids = sorted(set(only))
    return [registry[rule_id]() for rule_id in ids]
