"""The detlint engine: walk files, run rules, apply pragmas and baseline.

:func:`run_checks` is the library entry point (the CLI in
:mod:`repro.analysis.cli` is a thin wrapper).  The engine itself obeys
the rules it enforces: files are visited in sorted order and nothing
here reads a clock or ambient RNG, so a lint run over the same tree is
byte-identical every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.config import LintConfig, default_config
from repro.analysis.findings import Baseline, Finding, sort_findings
from repro.analysis.module import ParsedModule, parse_module
from repro.analysis.rules import Rule, make_rules

__all__ = ["LintReport", "default_scan_root", "run_checks"]


@dataclass
class LintReport:
    """The outcome of one lint run."""

    root: Path
    #: violations not covered by a pragma or the baseline — these fail CI.
    findings: List[Finding] = field(default_factory=list)
    #: violations suppressed by a well-formed pragma on their line.
    suppressed: List[Finding] = field(default_factory=list)
    #: violations matched (and forgiven) by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def default_scan_root() -> Path:
    """The installed ``repro`` package directory (works from anywhere).

    Located relative to this file rather than by importing ``repro`` —
    the analysis layer sits at the bottom of the layer DAG and must not
    import the package root it lints.
    """
    return Path(__file__).resolve().parent.parent


def _iter_sources(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def _apply_pragmas(module: ParsedModule, raw: List[Finding]
                   ) -> "tuple[List[Finding], List[Finding]]":
    """Split raw findings into (kept, suppressed) using line pragmas, and
    append LINT001/LINT002 findings for malformed or unused pragmas."""
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        pragma = module.pragmas.get(finding.line)
        if pragma is not None and pragma.well_formed \
                and finding.rule in pragma.rules:
            pragma.used_rules.add(finding.rule)
            suppressed.append(finding)
        else:
            kept.append(finding)
    for line in sorted(module.pragmas):
        pragma = module.pragmas[line]
        if not pragma.well_formed:
            what = ("no rule ids" if not pragma.rules
                    else "no reason — a suppression must say why")
            kept.append(Finding(
                rule="LINT001", path=module.rel, line=line, col=0,
                message=f"malformed detlint pragma ({what}); expected "
                        f"`# detlint: ignore[RULE] — reason`",
                snippet=module.snippet(line)))
            continue
        unused = sorted(set(pragma.rules) - pragma.used_rules)
        if unused:
            kept.append(Finding(
                rule="LINT002", path=module.rel, line=line, col=0,
                message=f"pragma suppresses nothing on this line "
                        f"(unused rule ids: {', '.join(unused)}) — "
                        f"delete it or move it to the offending line",
                snippet=module.snippet(line)))
    return kept, suppressed


def run_checks(root: Optional[Path] = None, *,
               config: Optional[LintConfig] = None,
               rules: Optional[Sequence[str]] = None,
               baseline: Optional[Baseline] = None) -> LintReport:
    """Lint every ``.py`` file under *root* (default: the repro package).

    Returns a :class:`LintReport`; ``report.ok`` is the CI gate.  Pass
    ``rules=["DET001", ...]`` to restrict the rule set and *baseline* to
    forgive previously recorded findings (regressions still fail).
    """
    scan_root = Path(root) if root is not None else default_scan_root()
    active_config = config if config is not None else default_config()
    active_rules: List[Rule] = make_rules(rules)
    report = LintReport(root=scan_root)

    for path in _iter_sources(scan_root):
        rel = (path.name if scan_root.is_file()
               else path.relative_to(scan_root).as_posix())
        try:
            module = parse_module(path, rel)
        except (SyntaxError, ValueError) as exc:
            report.findings.append(Finding(
                rule="LINT000", path=rel,
                line=getattr(exc, "lineno", 1) or 1, col=0,
                message=f"file does not parse: {exc}"))
            report.files_scanned += 1
            continue
        raw: List[Finding] = []
        for rule in active_rules:
            raw.extend(rule.check(module, active_config))
        kept, suppressed = _apply_pragmas(module, sort_findings(raw))
        report.findings.extend(kept)
        report.suppressed.extend(suppressed)
        report.files_scanned += 1

    report.findings = sort_findings(report.findings)
    report.suppressed = sort_findings(report.suppressed)
    if baseline is not None:
        report.findings, report.baselined = baseline.partition(
            report.findings)
    return report
