"""Static analysis for the reproduction: determinism + architecture linting.

Every benchmark in this tree rests on one contract — *same seed,
byte-identical output* — and until now that contract was enforced only
dynamically (double-run byte-compares in CI).  A single ``time.time()``,
unseeded ``random`` call, set iteration or ``id()``-derived ordering
slipping into a hot path breaks it silently.  ``repro.analysis`` closes
that gap statically, in the "determinism by design, not by inspection"
spirit of *Federated Computing as Code* (PAPERS.md): the contract is a
checkable policy, not a convention.

Two rule families (run ``python -m repro lint --list-rules``):

* **DET0xx — determinism.**  No wall clock outside a documented
  allowlist, no ambient ``random``/``numpy.random`` (RNG flows through
  :mod:`repro.sim.rng` streams), no iteration over sets, no unordered
  ``dict`` iteration in the ordering-sensitive hot modules, no ``id()``
  / builtin ``hash()`` / ``uuid4`` / ``os.urandom`` feeding ordering,
  keys or output.

* **ARCH0xx — architecture.**  A declarative layer DAG over the
  ``repro.*`` packages (violations reported as the offending import
  edge), and a kernel-surface rule pinning the only
  ``sim.kernel``/``sim.scheduler`` attributes non-sim code may touch —
  which is exactly the interface a future real-time asyncio backend
  must implement (ROADMAP).

Findings can be suppressed line-by-line with a *reasoned* pragma::

    t0 = time.perf_counter()  # detlint: ignore[DET001] — progress line only

A pragma without a reason, or one that suppresses nothing, is itself a
finding (LINT0xx).  A baseline file (``--write-baseline`` /
``--baseline``) lets CI fail only on regressions while a cleanup is in
flight; this tree's baseline is empty — ``python -m repro lint`` exits
0 with zero unsuppressed findings.
"""

from __future__ import annotations

from repro.analysis.config import LintConfig, default_config
from repro.analysis.engine import LintReport, run_checks
from repro.analysis.findings import Baseline, Finding

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintReport",
    "default_config",
    "run_checks",
]
