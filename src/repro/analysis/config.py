"""Declarative policy for detlint: layers, allowlists, kernel surface.

Everything a rule needs to know about *this* tree lives here, so the rule
implementations in :mod:`repro.analysis.det` / :mod:`repro.analysis.arch`
stay generic and the policy is reviewable in one place.  Tests build
their own :class:`LintConfig` to point the same rules at fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

__all__ = [
    "ENV_SURFACE",
    "LAYER_GROUPS",
    "LayerGroup",
    "LintConfig",
    "SIM_IMPORT_SURFACE",
    "default_config",
]


@dataclass(frozen=True)
class LayerGroup:
    """One rank of the layer DAG: a set of peer packages.

    A module may import packages in strictly lower groups and its own
    package; ``allow_intra`` additionally permits imports between the
    *different* packages of the same group (used for the application
    layer, where experiments/bench/apps legitimately compose each other).
    """

    packages: FrozenSet[str]
    allow_intra: bool = False


#: The layer DAG, lowest first.  The empty-string package stands for
#: top-level modules (``repro/__init__.py``, ``repro/__main__.py``) which
#: are composition roots and sit in the application layer.
LAYER_GROUPS: Tuple[LayerGroup, ...] = (
    # Foundation: the simulation substrate, and the (repro-independent)
    # static-analysis tooling.  Neither may import any other repro layer.
    LayerGroup(frozenset({"sim", "analysis"})),
    # Substrate peers: virtual network, storage, DHT math.  Peers — none
    # may import another.
    LayerGroup(frozenset({"net", "storage", "dht"})),
    # Mechanisms composed from the substrate.
    LayerGroup(frozenset({"transfer", "workloads"})),
    # The BitDew data model and runtime.
    LayerGroup(frozenset({"core"})),
    # The D* services (catalog, scheduler, repository, transfer, fabric).
    LayerGroup(frozenset({"services"})),
    # Multi-domain federation over the services.
    LayerGroup(frozenset({"federation"})),
    # Application layer: scenario harnesses, registry, apps, CLI.
    LayerGroup(frozenset({"experiments", "bench", "apps", ""}),
               allow_intra=True),
)


#: Explicitly sanctioned edges that violate the DAG, keyed by
#: (source path relative to the scan root, imported package).  Every
#: entry carries its justification; remove the edge, remove the entry.
LAYER_EXEMPTIONS: Dict[Tuple[str, str], str] = {
    ("core/runtime.py", "services"):
        "composition root: BitDewEnvironment wires the service deployment "
        "(container vs sharded fabric); scheduled to invert behind the "
        "pluggable backend interface of the ROADMAP asyncio item",
}


#: The only names non-sim code may import from the simulation substrate.
#: This *is* the interface spec for the future real-time asyncio backend
#: (ROADMAP): an alternative backend must provide exactly these types.
#: Keyed by module; ``repro.sim`` re-exports the union.
SIM_IMPORT_SURFACE: Dict[str, FrozenSet[str]] = {
    "repro.sim": frozenset({
        "AllOf", "AnyOf", "Container", "Environment", "Event", "Interrupt",
        "PriorityStore", "Process", "RandomStreams", "Resource",
        "SimulationError", "Store", "Timeout", "Timer", "derive_seed",
    }),
    "repro.sim.kernel": frozenset({
        "AllOf", "AnyOf", "Environment", "Event", "Interrupt", "Process",
        "SimulationError", "Timeout", "Timer",
    }),
    "repro.sim.resources": frozenset({
        "Container", "PriorityStore", "Request", "Resource", "Store",
    }),
    "repro.sim.rng": frozenset({"RandomStreams", "derive_seed"}),
    # The event-queue strategy is a sim-internal implementation detail:
    # outside code selects one by *name* via Environment(scheduler="...").
    "repro.sim.scheduler": frozenset(),
}


#: The Environment attributes non-sim code may touch.  Everything else —
#: peek/step (loop driving), _schedule/_scheduler/_counter (internals) —
#: is owned by the sim backend.  This list + SIM_IMPORT_SURFACE is the
#: clock/transport interface both backends must implement.
ENV_SURFACE: FrozenSet[str] = frozenset({
    "all_of", "any_of", "call_later", "event", "now", "process",
    "processed_events", "run", "settle", "timeout",
})


#: Modules (path prefixes relative to the scan root) where wall-clock
#: reads are the *product*, not a hazard.  Each entry documents why the
#: determinism contract is preserved.
WALLCLOCK_ALLOWLIST: Dict[str, str] = {
    "bench/":
        "wall-clock timing is the measured quantity; the experiment "
        "runner scrubs volatile keys before deterministic --out JSON",
    "experiments/executor.py":
        "per-point elapsed-time progress lines go to stderr only and "
        "never enter result JSON",
    "experiments/cache.py":
        "cache bookkeeping (entry mtimes for ls/stats) lives outside "
        "scenario results",
    "__main__.py":
        "the CLI '# stats:' perf line reports wall clock to stderr; "
        "--out JSON is produced before it",
}


#: Ordering-sensitive hot paths: modules whose iteration order can leak
#: into event order, placement, replication or emitted output.  DET004
#: (unordered dict iteration) applies only here; DET003 (set iteration)
#: applies tree-wide because set order is unordered *everywhere*.
HOT_MODULES: Tuple[str, ...] = (
    "sim/",
    "net/allocation.py",
    "net/flows.py",
    "services/data_scheduler.py",
    "services/fabric.py",
    "services/rebalance.py",
    "services/router.py",
    "federation/replication.py",
    # The cohort sync/heartbeat generators feed placement and transfer
    # order for 100k-host blocks; dict order there is event order.  (The
    # array calendar scheduler is already covered by ``sim/``.)
    "workloads/cohort.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved policy handed to every rule.

    The defaults describe ``src/repro``; tests construct permissive or
    pointed variants for fixture trees.
    """

    layer_groups: Tuple[LayerGroup, ...] = LAYER_GROUPS
    layer_exemptions: Mapping[Tuple[str, str], str] = \
        field(default_factory=lambda: dict(LAYER_EXEMPTIONS))
    sim_import_surface: Mapping[str, FrozenSet[str]] = \
        field(default_factory=lambda: dict(SIM_IMPORT_SURFACE))
    env_surface: FrozenSet[str] = ENV_SURFACE
    wallclock_allowlist: Mapping[str, str] = \
        field(default_factory=lambda: dict(WALLCLOCK_ALLOWLIST))
    hot_modules: Tuple[str, ...] = HOT_MODULES
    #: Path prefixes exempt from the *sim-internal* rules (the sim package
    #: itself may use its own private surface).
    sim_package_prefixes: Tuple[str, ...] = ("sim/",)
    #: The import-root package name the ARCH rules resolve against.
    root_package: str = "repro"

    def layer_rank(self, package: str) -> int:
        """Rank of *package* in the DAG; -1 if unknown (exempt from ARCH001)."""
        for rank, group in enumerate(self.layer_groups):
            if package in group.packages:
                return rank
        return -1

    def is_wallclock_allowed(self, rel_path: str) -> bool:
        return any(rel_path.startswith(prefix)
                   for prefix in self.wallclock_allowlist)

    def is_hot_module(self, rel_path: str) -> bool:
        return any(rel_path.startswith(prefix) for prefix in self.hot_modules)

    def is_sim_internal(self, rel_path: str) -> bool:
        return any(rel_path.startswith(prefix)
                   for prefix in self.sim_package_prefixes)


def default_config() -> LintConfig:
    """The policy for this repository's ``src/repro`` tree."""
    return LintConfig()


def permissive_config(hot: Sequence[str] = ("",)) -> LintConfig:
    """A config that applies every rule everywhere (fixture testing)."""
    return LintConfig(wallclock_allowlist={}, hot_modules=tuple(hot),
                      sim_package_prefixes=("sim/",), layer_exemptions={})
