"""Finding and baseline primitives for the detlint engine.

A :class:`Finding` pins one rule violation to a file and line.  Its
*fingerprint* hashes the rule id, the file's path and the normalised
source line text — not the line *number* — so a baseline survives code
moving up and down a file and only "new" violations count as
regressions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

__all__ = ["Baseline", "Finding", "sort_findings", "write_baseline"]


def write_baseline(path: Path, findings: "Iterable[Finding]") -> None:
    """Record *findings* as the accepted baseline at *path*.

    Full per-finding context (line, snippet) is written — not just the
    matching multiset — so a baseline file is reviewable in a diff.
    """
    payload = {
        "version": 1,
        "tool": "detlint",
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "snippet": f.snippet, "fingerprint": f.fingerprint}
            for f in sort_findings(findings)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str              #: rule id, e.g. ``DET001``
    path: str              #: path relative to the scan root, posix separators
    line: int              #: 1-based line number
    col: int               #: 0-based column offset
    message: str           #: human-readable description of the violation
    snippet: str = ""      #: the stripped source line the finding points at

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent)."""
        body = f"{self.rule}|{self.path}|{self.snippet.strip()}"
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic report order: path, then line, then column, then rule."""
    return sorted(findings, key=_sort_key)


@dataclass
class Baseline:
    """A recorded set of accepted findings: CI fails only on regressions.

    Matching is by ``(rule, path, fingerprint)`` *multiset*: two identical
    violations on different lines of the same file need two baseline
    entries, and fixing one of them removes exactly one credit.
    """

    entries: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(f"{path}: not a detlint baseline file")
        baseline = cls()
        for entry in data["findings"]:
            key = (str(entry["rule"]), str(entry["path"]),
                   str(entry["fingerprint"]))
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    def partition(self, findings: Iterable[Finding]
                  ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into (new, baselined) against this baseline."""
        credit = dict(self.entries)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in sort_findings(findings):
            key = (finding.rule, finding.path, finding.fingerprint)
            if credit.get(key, 0) > 0:
                credit[key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old
