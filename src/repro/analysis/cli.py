"""Command-line front end for detlint (``python -m repro lint``).

Exit codes: 0 — clean (no unsuppressed, non-baselined findings);
1 — findings; 2 — usage error (unknown rule id, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from repro.analysis.engine import LintReport, default_scan_root, run_checks
from repro.analysis.findings import Baseline, write_baseline
from repro.analysis.rules import all_rules

__all__ = ["add_lint_arguments", "main", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with ``python -m repro``)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is machine-readable, for CI)")
    parser.add_argument(
        "--rules", metavar="ID[,ID...]", default=None,
        help="run only these rule ids (e.g. DET001,ARCH001)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="forgive findings recorded in this baseline file; "
             "only regressions fail")
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record the current unsuppressed findings as the baseline "
             "and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe every registered rule and exit")


def _list_rules(stream: TextIO) -> int:
    for rule_id, rule_cls in sorted(all_rules().items()):
        stream.write(f"{rule_id}  {rule_cls.describe()}\n")
    return 0


def _render_text(report: LintReport, stream: TextIO) -> None:
    for finding in report.findings:
        stream.write(finding.render() + "\n")
    summary = (f"detlint: {report.files_scanned} files, "
               f"{len(report.findings)} finding"
               f"{'s' if len(report.findings) != 1 else ''}")
    extras: List[str] = []
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} suppressed by pragma")
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    stream.write(summary + "\n")


def run_lint(args: argparse.Namespace,
             stdout: Optional[TextIO] = None,
             stderr: Optional[TextIO] = None) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if args.list_rules:
        return _list_rules(out)

    rules = None
    if args.rules:
        rules = [part.strip() for part in args.rules.split(",")
                 if part.strip()]
    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            err.write(f"error: cannot read baseline {args.baseline}: "
                      f"{exc}\n")
            return 2

    roots = [Path(p) for p in args.paths] if args.paths \
        else [default_scan_root()]
    merged: Optional[LintReport] = None
    try:
        for root in roots:
            if not root.exists():
                err.write(f"error: no such path: {root}\n")
                return 2
            report = run_checks(root, rules=rules, baseline=baseline)
            if merged is None:
                merged = report
            else:
                merged.findings.extend(report.findings)
                merged.suppressed.extend(report.suppressed)
                merged.baselined.extend(report.baselined)
                merged.files_scanned += report.files_scanned
    except ValueError as exc:  # unknown rule ids
        err.write(f"error: {exc}\n")
        return 2
    assert merged is not None

    if args.write_baseline is not None:
        write_baseline(Path(args.write_baseline), merged.findings)
        err.write(f"wrote {len(merged.findings)} finding"
                  f"{'s' if len(merged.findings) != 1 else ''} to "
                  f"{args.write_baseline}\n")
        return 0

    if args.format == "json":
        out.write(json.dumps(merged.to_dict(), indent=2, sort_keys=True)
                  + "\n")
    else:
        _render_text(merged, out)
    return 0 if merged.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="detlint: determinism & architecture linter for the "
                    "repro tree (see docs/ARCHITECTURE.md)")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
