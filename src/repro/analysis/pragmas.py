"""``# detlint: ignore[...]`` pragma parsing.

Grammar (one per physical line, in a comment)::

    # detlint: ignore[DET001] — reason text
    # detlint: ignore[DET003,DET004] - reason text

The rule list is mandatory; the reason is mandatory (LINT001 otherwise)
and may be introduced by an em dash, hyphen(s) or colon.  A pragma
suppresses findings of the listed rules on its own line only; a pragma
that suppresses nothing is reported as LINT002 so stale suppressions
cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["Pragma", "collect_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*ignore\[(?P<rules>[A-Z0-9,\s]*)\]"
    r"(?:\s*(?:—|–|-+|:)\s*(?P<reason>.*))?$"
)


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int                      #: physical line the pragma sits on
    rules: Tuple[str, ...]         #: rule ids it suppresses
    reason: str                    #: justification text ("" if missing)
    used_rules: Set[str] = field(default_factory=set)

    @property
    def well_formed(self) -> bool:
        return bool(self.rules) and bool(self.reason.strip())


def collect_pragmas(source: str) -> Dict[int, Pragma]:
    """Map line number → pragma for every detlint comment in *source*.

    Tokenising (rather than regexing raw lines) keeps string literals
    that merely *mention* the pragma syntax from being parsed as one.
    """
    pragmas: Dict[int, Pragma] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments: List[Tuple[int, str]] = [
            (tok.start[0], tok.string) for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        return pragmas
    for line, text in comments:
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(",")
                      if part.strip())
        reason = (match.group("reason") or "").strip()
        pragmas[line] = Pragma(line=line, rules=rules, reason=reason)
    return pragmas
