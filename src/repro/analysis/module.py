"""Per-file parse artefacts shared by every rule.

A :class:`ParsedModule` is built once per source file and handed to each
rule: the AST, the raw source lines, the pragma map, and an import
resolution table mapping local names to fully qualified module paths
(``np`` → ``numpy``, ``datetime`` → ``datetime.datetime`` after
``from datetime import datetime``, ...).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.pragmas import Pragma, collect_pragmas

__all__ = ["ParsedModule", "parse_module", "resolve_qualified"]


@dataclass
class ParsedModule:
    """Everything a rule needs to know about one source file."""

    path: Path                     #: absolute path on disk
    rel: str                       #: posix path relative to the scan root
    package: str                   #: first path component ("" for root files)
    tree: ast.Module
    source_lines: List[str]
    pragmas: Dict[int, Pragma]
    #: local name → fully qualified origin ("np" → "numpy",
    #: "perf_counter" → "time.perf_counter").
    imports: Dict[str, str] = field(default_factory=dict)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""


class _ImportCollector(ast.NodeVisitor):
    """Build the local-name → qualified-origin table for a module."""

    def __init__(self) -> None:
        self.table: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            origin = alias.name if alias.asname else alias.name.split(".")[0]
            self.table[local] = origin

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports: resolved by the ARCH rules via rel path
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.table[local] = f"{node.module}.{alias.name}"


def resolve_qualified(module: ParsedModule,
                      node: ast.AST) -> Optional[str]:
    """Resolve an expression to a dotted origin name, if it is one.

    ``Name('np')`` → ``numpy``; ``Attribute(Name('np'), 'random')`` →
    ``numpy.random``; anything non-trivial resolves to ``None``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = module.imports.get(current.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def parse_module(path: Path, rel: str) -> ParsedModule:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    collector = _ImportCollector()
    collector.visit(tree)
    package = rel.split("/", 1)[0] if "/" in rel else ""
    return ParsedModule(
        path=path,
        rel=rel,
        package=package,
        tree=tree,
        source_lines=source.splitlines(),
        pragmas=collect_pragmas(source),
        imports=collector.table,
    )
