"""ARCH0xx — architecture rules.

* ARCH001 — the layer DAG: ``repro.*`` packages are ranked
  (see :data:`repro.analysis.config.LAYER_GROUPS`); an import may only
  reach its own package, a strictly lower group, or — for groups marked
  ``allow_intra`` — a peer in the same group.  Violations are reported
  as the offending import edge.  Sanctioned exceptions live in
  ``LAYER_EXEMPTIONS`` with a mandatory justification.

* ARCH002 — the kernel surface: outside ``repro.sim`` only the names in
  ``SIM_IMPORT_SURFACE`` may be imported from the simulation substrate,
  and only the ``ENV_SURFACE`` attributes may be touched on an
  Environment.  That pinned surface is the clock/transport interface a
  future real-time asyncio backend must implement (ROADMAP), so every
  new dependency on kernel internals has to be argued for here first.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.module import ParsedModule
from repro.analysis.rules import Rule, register

__all__ = ["LayerDagRule", "KernelSurfaceRule"]


def _finding(module: ParsedModule, rule: str, node: ast.AST,
             message: str) -> Finding:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(rule=rule, path=module.rel, line=line, col=col,
                   message=message, snippet=module.snippet(line))


def _imported_repro_package(node: ast.AST, root: str) -> Optional[str]:
    """The ``repro.<pkg>`` package an import statement reaches, if any."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == root:
                return parts[1] if len(parts) > 1 else ""
    elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
        parts = node.module.split(".")
        if parts[0] == root:
            return parts[1] if len(parts) > 1 else ""
    return None


@register
class LayerDagRule(Rule):
    """ARCH001: imports must respect the declared layer DAG."""

    rule_id = "ARCH001"
    title = "layer DAG violation (upward or cross-peer import)"

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        source_rank = config.layer_rank(module.package)
        if source_rank < 0:
            return  # unknown package: not part of the declared DAG
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            target = _imported_repro_package(node, config.root_package)
            if target is None or target == module.package:
                continue
            target_rank = config.layer_rank(target)
            if target_rank < 0:
                yield _finding(
                    module, self.rule_id, node,
                    f"import edge `{module.package or '<root>'} -> "
                    f"{target or '<root>'}`: package "
                    f"`{config.root_package}.{target}` is not in the "
                    f"declared layer DAG (analysis/config.py)")
                continue
            if target_rank < source_rank:
                continue
            if target_rank == source_rank and \
                    config.layer_groups[source_rank].allow_intra:
                continue
            if (module.rel, target) in config.layer_exemptions:
                continue
            direction = ("upward" if target_rank > source_rank
                         else "cross-peer")
            yield _finding(
                module, self.rule_id, node,
                f"{direction} import edge `{module.package or '<root>'} -> "
                f"{target or '<root>'}` violates the layer DAG "
                f"(rank {source_rank} may only import below itself); "
                f"either invert the dependency or add a justified "
                f"exemption in analysis/config.py")


@register
class KernelSurfaceRule(Rule):
    """ARCH002: non-sim code may only touch the pinned kernel surface."""

    rule_id = "ARCH002"
    title = "use of sim internals beyond the pinned kernel surface"

    #: receiver spellings treated as "an Environment" by convention.
    _ENV_NAMES = frozenset({"env", "environment"})
    _ENV_ATTRS = frozenset({"env", "_env", "environment"})

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        if config.is_sim_internal(module.rel) or module.package == "analysis":
            return
        yield from self._check_imports(module, config)
        yield from self._check_attributes(module, config)

    def _check_imports(self, module: ParsedModule,
                       config: LintConfig) -> Iterator[Finding]:
        sim_root = f"{config.root_package}.sim"
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == sim_root \
                            or alias.name.startswith(sim_root + "."):
                        yield _finding(
                            module, self.rule_id, node,
                            f"`import {alias.name}` exposes the whole sim "
                            f"module — import the named surface instead "
                            f"(see SIM_IMPORT_SURFACE)")
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and not node.level:
                if node.module != sim_root \
                        and not node.module.startswith(sim_root + "."):
                    continue
                allowed = config.sim_import_surface.get(node.module)
                if allowed is None:
                    yield _finding(
                        module, self.rule_id, node,
                        f"`{node.module}` is sim-internal; non-sim code "
                        f"may import only from "
                        f"{', '.join(sorted(config.sim_import_surface))}")
                    continue
                for alias in node.names:
                    if alias.name not in allowed:
                        yield _finding(
                            module, self.rule_id, node,
                            f"`from {node.module} import {alias.name}` is "
                            f"outside the pinned kernel surface "
                            f"{sorted(allowed)} — extend the surface "
                            f"deliberately (it is the asyncio-backend "
                            f"interface spec) or avoid the dependency")

    def _check_attributes(self, module: ParsedModule,
                          config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not self._is_env_receiver(node.value):
                continue
            if node.attr in config.env_surface:
                continue
            kind = ("private kernel attribute"
                    if node.attr.startswith("_")
                    else "attribute outside the pinned Environment surface")
            yield _finding(
                module, self.rule_id, node,
                f"`{ast.unparse(node)}`: {kind} "
                f"(allowed: {', '.join(sorted(config.env_surface))}) — "
                f"this surface is the asyncio-backend interface spec")

    def _is_env_receiver(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._ENV_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._ENV_ATTRS
        return False
