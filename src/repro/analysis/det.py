"""DET0xx — determinism rules.

The contract these defend: *same seed → byte-identical output*.  Each
rule targets one way that contract has historically been broken in
discrete-event codebases:

* DET001 — wall-clock reads leak real time into simulated results.
* DET002 — ambient ``random``/``numpy.random`` bypasses the seeded,
  named streams of :mod:`repro.sim.rng`.
* DET003 — set/frozenset iteration order varies with PYTHONHASHSEED.
* DET004 — dict iteration in ordering-sensitive hot modules must be a
  *conscious* decision (``sorted()`` or a pragma explaining why
  insertion order is deterministic).
* DET005 — ``id()``, builtin ``hash()``, ``uuid4`` and ``os.urandom``
  are per-process entropy; fed into ordering, keys or output they break
  cross-run identity (the MapReduce ``hash()`` → ``crc32`` switch in
  PR 2 is the canonical fix).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.module import ParsedModule, resolve_qualified
from repro.analysis.rules import Rule, register

__all__ = [
    "WallClockRule",
    "AmbientRngRule",
    "SetIterationRule",
    "DictIterationRule",
    "IdentityEntropyRule",
]


_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: numpy.random members that are fine: the seeded generator machinery.
_NUMPY_RNG_OK = frozenset({
    "Generator", "default_rng", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def _finding(module: ParsedModule, rule: str, node: ast.AST,
             message: str) -> Finding:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(rule=rule, path=module.rel, line=line, col=col,
                   message=message, snippet=module.snippet(line))


@register
class WallClockRule(Rule):
    """DET001: no wall-clock reads outside the documented allowlist."""

    rule_id = "DET001"
    title = "wall-clock read outside the allowlist"

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        if config.is_wallclock_allowed(module.rel):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualified = resolve_qualified(module, node)
            if qualified in _WALL_CLOCK:
                # Only report the outermost attribute of a chain once:
                # resolve_qualified on the inner Name gives a different
                # (shorter) origin, so no duplicate is possible.
                yield _finding(
                    module, self.rule_id, node,
                    f"wall-clock read `{qualified}` — simulated code must "
                    f"use Environment.now; timing harnesses belong on the "
                    f"wall-clock allowlist (analysis/config.py)")


@register
class AmbientRngRule(Rule):
    """DET002: RNG must flow through seeded ``repro.sim.rng`` streams."""

    rule_id = "DET002"
    title = "ambient random / numpy.random use"

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random":
                        yield _finding(
                            module, self.rule_id, node,
                            "`import random` — the global RNG is unseeded "
                            "per-process state; draw from a named "
                            "RandomStreams stream instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield _finding(
                        module, self.rule_id, node,
                        f"`from {node.module} import ...` — use "
                        f"RandomStreams named streams instead")
                elif node.module in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name not in _NUMPY_RNG_OK:
                            yield _finding(
                                module, self.rule_id, node,
                                f"`from numpy.random import {alias.name}` — "
                                f"module-level numpy RNG is global state; "
                                f"use a seeded Generator")
            elif isinstance(node, ast.Attribute):
                qualified = resolve_qualified(module, node)
                if (qualified is not None
                        and qualified.startswith("numpy.random.")
                        and qualified.split(".")[2] not in _NUMPY_RNG_OK):
                    yield _finding(
                        module, self.rule_id, node,
                        f"`{qualified}` draws from numpy's global RNG; "
                        f"use a seeded Generator from RandomStreams")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _set_annotation(annotation: Optional[ast.expr]) -> bool:
    """Does a ``x: Set[...]`` / ``x: set`` annotation name a set type?"""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "MutableSet", "AbstractSet")
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet",
                           "MutableSet", "AbstractSet")
    return False


def _target_key(node: ast.AST) -> Optional[str]:
    """``x`` → "x"; ``self.x`` → "self.x"; anything else → None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return f"self.{node.attr}"
    return None


class _SetBindings(ast.NodeVisitor):
    """Collect names/attributes that are (ever) bound to a set in a module.

    A deliberately coarse, whole-module scope: one binding of ``x = set()``
    anywhere marks ``x`` set-valued everywhere in the file.  That
    over-approximation is what we want — a name that is *sometimes* a set
    must never be iterated unsorted.
    """

    def __init__(self) -> None:
        self.keys: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value):
            for target in node.targets:
                key = _target_key(target)
                if key:
                    self.keys.add(key)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)):
            key = _target_key(node.target)
            if key:
                self.keys.add(key)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None and _set_annotation(node.annotation):
            self.keys.add(node.arg)


#: Consumers whose result is insensitive to their argument's iteration
#: order (``sum`` is deliberately absent: float addition is not
#: associative, so summation order is observable in the last bits).
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "min", "max", "len", "any", "all",
})


def _iteration_sites(tree: ast.Module) -> Iterator[Tuple[ast.expr, str]]:
    """Yield (iterable expression, context description) pairs.

    Two shapes are exempt by construction: the generators of a *set*
    comprehension (the result is itself unordered, so construction order
    is unobservable), and a comprehension consumed directly by an
    order-free callable such as ``sorted(x for x in s)``.
    """
    order_free: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_FREE_CONSUMERS \
                and len(node.args) == 1:
            order_free.add(id(node.args[0]))  # detlint: ignore[DET005] — AST node identity within one parse pass; never ordered, keyed across runs, or emitted
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "for-loop"
        elif isinstance(node, ast.SetComp):
            continue
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if id(node) in order_free:  # detlint: ignore[DET005] — same-parse AST node identity lookup; never crosses a process boundary
                continue
            for gen in node.generators:
                yield gen.iter, "comprehension"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple", "enumerate", "iter"):
            if len(node.args) >= 1:
                yield node.args[0], f"{node.func.id}()"


@register
class SetIterationRule(Rule):
    """DET003: iterating a set/frozenset without ``sorted()``.

    Set iteration order depends on PYTHONHASHSEED and insertion history;
    any set that is iterated must go through ``sorted()`` (or be replaced
    by an ordered container).  Applies tree-wide.
    """

    rule_id = "DET003"
    title = "unordered set iteration"

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        bindings = _SetBindings()
        bindings.visit(module.tree)
        for iterable, context in _iteration_sites(module.tree):
            if _is_set_expr(iterable):
                yield _finding(
                    module, self.rule_id, iterable,
                    f"{context} iterates a set expression — wrap it in "
                    f"sorted() or use an ordered container")
                continue
            key = _target_key(iterable)
            if key is not None and key in bindings.keys:
                yield _finding(
                    module, self.rule_id, iterable,
                    f"{context} iterates `{key}`, which is bound to a set "
                    f"in this module — wrap it in sorted() or use an "
                    f"ordered container")
        # set.pop() picks an arbitrary element.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "pop" and not node.args:
                key = _target_key(node.func.value)
                if key is not None and key in bindings.keys:
                    yield _finding(
                        module, self.rule_id, node,
                        f"`{key}.pop()` removes an arbitrary set element — "
                        f"pick deterministically (e.g. min/sorted)")


@register
class DictIterationRule(Rule):
    """DET004: dict iteration in hot modules must be sorted or justified.

    Python dicts iterate in insertion order — deterministic *if* the
    insertion sequence is.  In the kernel/scheduler/placement/replication
    hot paths that "if" is load-bearing, so every ``.items()`` /
    ``.keys()`` / ``.values()`` iteration there must either go through
    ``sorted()`` or carry a pragma explaining why insertion order is
    reproducible.
    """

    rule_id = "DET004"
    title = "unsorted dict iteration in an ordering-sensitive module"

    _DICT_METHODS = ("items", "keys", "values")

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        if not config.is_hot_module(module.rel):
            return
        for iterable, context in _iteration_sites(module.tree):
            if isinstance(iterable, ast.Call) \
                    and isinstance(iterable.func, ast.Attribute) \
                    and iterable.func.attr in self._DICT_METHODS \
                    and not iterable.args:
                yield _finding(
                    module, self.rule_id, iterable,
                    f"{context} iterates `.{iterable.func.attr}()` in an "
                    f"ordering-sensitive module — sorted(), or pragma with "
                    f"the reason insertion order is deterministic")


@register
class IdentityEntropyRule(Rule):
    """DET005: no per-process identity/entropy in ordering, keys, output."""

    rule_id = "DET005"
    title = "process-local identity or entropy source"

    def check(self, module: ParsedModule,
              config: LintConfig) -> Iterator[Finding]:
        rebound = _locally_bound_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) \
                    and node.func.id not in rebound:
                if node.func.id == "id":
                    yield _finding(
                        module, self.rule_id, node,
                        "`id()` is a per-process memory address; use a "
                        "monotonic sequence number or a stable key")
                elif node.func.id == "hash":
                    yield _finding(
                        module, self.rule_id, node,
                        "builtin `hash()` is salted by PYTHONHASHSEED for "
                        "str/bytes; use zlib.crc32 or hashlib for stable "
                        "keys (see apps/mapreduce.py)")
            qualified = resolve_qualified(module, node.func)
            if qualified in ("uuid.uuid1", "uuid.uuid4", "os.urandom"):
                yield _finding(
                    module, self.rule_id, node,
                    f"`{qualified}` is fresh entropy every run; derive "
                    f"identifiers from seeded state (uuid5 over a "
                    f"namespace, or a counter)")
            elif qualified is not None and qualified.startswith("secrets."):
                yield _finding(
                    module, self.rule_id, node,
                    f"`{qualified}` is a CSPRNG — never deterministic")


def _locally_bound_names(tree: ast.Module) -> Set[str]:
    """Names assigned/def'd in the module (so ``hash = crc32`` isn't flagged
    as the builtin)."""
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
    return bound


def _sorted_wrapped(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
        and node.func.id == "sorted"


# `sorted(...)` wrapping is honoured by construction: _iteration_sites
# yields the *outermost* iterable expression, so `for x in sorted(s)`
# yields the sorted() Call, which is neither a set expression nor a
# tracked name — no finding.  The helper above documents the intent and
# is used by tests.
_ = _sorted_wrapped
