"""Distributed Hash Table substrate and the Distributed Data Catalog.

The paper's prototype publishes data-replica locations (pairs of data
identifier / host identifier) through the DKS DHT so that information about
replicas held by volatile nodes is indexed without loading the centralized
Data Catalog (§3.4.1).  DKS itself is not available; per ``DESIGN.md`` we
substitute a Chord-style ring with the same observable properties: multi-hop
key routing (``O(log n)`` hops), per-node storage, key replication over
successors, resilience to node departure, and a publish operation that is
substantially more expensive than a call to the centralized catalog
(Table 3 measures that gap).

* :mod:`repro.dht.chord` — the ring: nodes, finger tables, iterative lookup,
  replication, join/leave/fail.
* :mod:`repro.dht.ddc` — the Distributed Data Catalog built on the ring:
  ``publish(data_id, host_id)`` / ``search(data_id)`` plus the generic
  key/value interface the paper exposes to programmers.
"""

from repro.dht.chord import ChordNode, ChordRing, LookupResult
from repro.dht.ddc import DistributedDataCatalog

__all__ = ["ChordNode", "ChordRing", "DistributedDataCatalog", "LookupResult"]
