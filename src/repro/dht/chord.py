"""Chord-style distributed hash table (the paper's DKS substrate, §3.4.1).

The paper's prototype builds its Distributed Data Catalog on the DKS DHT
("DKS provides us an efficient and reliable implementation of a DHT");
Table 3 (§4.2) measures publishing through it against the centralized
catalog.  DKS itself is unavailable, so per ``DESIGN.md`` this module
substitutes a Chord ring with the observable properties the paper relies
on: ``O(log n)`` multi-hop key routing (each hop chargeable with network
latency and per-node service time), per-node key storage, replication over
successors, and survival of node departure and failure.

A faithful, simulation-friendly Chord implementation:

* node identifiers are SHA-1 hashes truncated to ``m`` bits, arranged on a
  ring;
* every node keeps a finger table (``m`` entries) and a successor list
  (for replication and failure resilience);
* lookups route greedily through the closest preceding finger, exactly as in
  the Chord paper, and report the hop path so the simulation can charge
  per-hop latency and per-node service time;
* keys are stored as ``key -> set(values)`` on the responsible node and
  replicated to ``replication`` successors;
* nodes can join, leave gracefully (handing keys to their successor) or fail
  (keys survive on replicas).

The ring maintains finger tables eagerly (a global rebuild on membership
change) rather than running the periodic stabilisation protocol — the paper's
experiments exercise lookup/publish performance, not churn convergence, and
eager maintenance keeps the routing state exact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["ChordNode", "ChordRing", "LookupResult"]


def chord_hash(value: str, bits: int = 32) -> int:
    """SHA-1 based identifier on the ``2**bits`` ring."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def _in_interval(x: int, a: int, b: int, modulus: int,
                 inclusive_right: bool = False) -> bool:
    """True when x lies in the ring interval (a, b) (or (a, b]) modulo *modulus*."""
    x, a, b = x % modulus, a % modulus, b % modulus
    if a == b:
        # The interval covers the whole ring (single-node case).
        return inclusive_right or x != a
    if a < b:
        return a < x <= b if inclusive_right else a < x < b
    return (x > a or x <= b) if inclusive_right else (x > a or x < b)


@dataclass
class LookupResult:
    """Outcome of a key lookup: the responsible node and the route taken.

    The hop path is what the Table 3 cost model charges: the DDC bills one
    network latency plus one node service time per hop (§4.2 explains the
    DHT's publish cost by exactly this multi-hop routing).
    """

    key_id: int
    node: "ChordNode"
    hops: List["ChordNode"] = field(default_factory=list)

    @property
    def hop_count(self) -> int:
        return len(self.hops)


class ChordNode:
    """One DHT participant."""

    def __init__(self, name: str, bits: int = 32):
        self.name = name
        self.bits = bits
        self.node_id = chord_hash(name, bits)
        self.fingers: List["ChordNode"] = []
        self.successors: List["ChordNode"] = []
        self.predecessor: Optional["ChordNode"] = None
        self.storage: Dict[str, Set] = {}
        self.alive = True
        #: number of requests this node has served (lookup hops + stores)
        self.requests_served = 0

    def store(self, key: str, value) -> None:
        self.storage.setdefault(key, set()).add(value)

    def retrieve(self, key: str) -> Set:
        return set(self.storage.get(key, set()))

    def remove(self, key: str, value=None) -> bool:
        if key not in self.storage:
            return False
        if value is None:
            del self.storage[key]
            return True
        self.storage[key].discard(value)
        if not self.storage[key]:
            del self.storage[key]
        return True

    @property
    def key_count(self) -> int:
        return len(self.storage)

    def closest_preceding_finger(self, key_id: int, modulus: int) -> "ChordNode":
        for finger in reversed(self.fingers):
            if finger.alive and _in_interval(finger.node_id, self.node_id,
                                             key_id, modulus):
                return finger
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChordNode({self.name!r}, id={self.node_id})"


class ChordRing:
    """The ring: membership, routing state, lookup, storage with replication.

    Plays the role of DKS in the paper's prototype (§3.4.1): the reservoir
    nodes participating in the Distributed Data Catalog form this ring, and
    ``replication`` successors keep each key alive when volatile nodes
    leave or crash — the property Figure 4's storage scenario depends on.
    """

    def __init__(self, bits: int = 32, replication: int = 2,
                 successor_list_size: int = 4):
        if bits < 8 or bits > 62:
            raise ValueError("bits must be between 8 and 62")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        self.bits = bits
        self.modulus = 1 << bits
        self.replication = replication
        self.successor_list_size = max(successor_list_size, replication)
        self._nodes: Dict[str, ChordNode] = {}

    # -- membership ---------------------------------------------------------------
    @property
    def nodes(self) -> List[ChordNode]:
        return sorted((n for n in self._nodes.values() if n.alive),
                      key=lambda n: n.node_id)

    def __len__(self) -> int:
        return len([n for n in self._nodes.values() if n.alive])

    def get_node(self, name: str) -> ChordNode:
        return self._nodes[name]

    def join(self, name: str) -> ChordNode:
        if name in self._nodes and self._nodes[name].alive:
            raise ValueError(f"node {name!r} already in the ring")
        node = ChordNode(name, self.bits)
        if any(n.node_id == node.node_id and n.alive
               for n in self._nodes.values()):
            raise ValueError(f"identifier collision for {name!r}")
        self._nodes[name] = node
        self._rebuild()
        # The new node takes over the keys it is now responsible for.
        self._migrate_keys_to(node)
        return node

    def leave(self, name: str) -> None:
        """Graceful departure: keys are handed to the successor first."""
        node = self._nodes.get(name)
        if node is None or not node.alive:
            return
        successor = self.successor_of_node(node)
        if successor is not None and successor is not node:
            for key, values in node.storage.items():
                for value in values:
                    successor.store(key, value)
        node.alive = False
        node.storage.clear()
        del self._nodes[name]
        self._rebuild()

    def fail(self, name: str) -> None:
        """Abrupt failure: the node's local keys are lost (replicas survive)."""
        node = self._nodes.get(name)
        if node is None or not node.alive:
            return
        node.alive = False
        node.storage.clear()
        del self._nodes[name]
        self._rebuild()
        self._restore_replication()

    # -- routing state --------------------------------------------------------------
    def _rebuild(self) -> None:
        nodes = self.nodes
        count = len(nodes)
        if count == 0:
            return
        ids = [n.node_id for n in nodes]
        for index, node in enumerate(nodes):
            node.predecessor = nodes[index - 1]
            node.successors = [
                nodes[(index + 1 + k) % count]
                for k in range(min(self.successor_list_size, count - 1) or 1)
            ] or [node]
            fingers = []
            for i in range(self.bits):
                target = (node.node_id + (1 << i)) % self.modulus
                fingers.append(self._successor_of_id(target, nodes, ids))
            node.fingers = fingers

    @staticmethod
    def _successor_of_id(key_id: int, nodes: List[ChordNode],
                         ids: List[int]) -> ChordNode:
        import bisect
        index = bisect.bisect_left(ids, key_id)
        return nodes[index % len(nodes)]

    def successor_of(self, key_id: int) -> ChordNode:
        nodes = self.nodes
        if not nodes:
            raise RuntimeError("the ring is empty")
        return self._successor_of_id(key_id % self.modulus, nodes,
                                     [n.node_id for n in nodes])

    def successor_of_node(self, node: ChordNode) -> Optional[ChordNode]:
        nodes = self.nodes
        others = [n for n in nodes if n is not node]
        if not others:
            return None
        return self._successor_of_id((node.node_id + 1) % self.modulus, others,
                                     [n.node_id for n in others])

    def replicas_for(self, key_id: int) -> List[ChordNode]:
        """The responsible node followed by its replication successors."""
        nodes = self.nodes
        if not nodes:
            return []
        primary = self.successor_of(key_id)
        result = [primary]
        cursor = primary
        while len(result) < min(self.replication, len(nodes)):
            cursor = self.successor_of_node(cursor) or cursor
            if cursor in result:
                break
            result.append(cursor)
        return result

    # -- lookup --------------------------------------------------------------------
    def lookup(self, key: str, start: Optional[ChordNode] = None) -> LookupResult:
        """Route from *start* to the node responsible for *key* (greedy fingers)."""
        nodes = self.nodes
        if not nodes:
            raise RuntimeError("the ring is empty")
        key_id = chord_hash(key, self.bits)
        current = start if start is not None and start.alive else nodes[0]
        hops: List[ChordNode] = []
        target = self.successor_of(key_id)
        # Greedy finger routing, bounded to avoid pathological loops.
        for _ in range(2 * self.bits):
            current.requests_served += 1
            if current is target:
                break
            successor = self.successor_of_node(current) or current
            if _in_interval(key_id, current.node_id, successor.node_id,
                            self.modulus, inclusive_right=True):
                hops.append(successor)
                successor.requests_served += 1
                current = successor
                break
            nxt = current.closest_preceding_finger(key_id, self.modulus)
            if nxt is current:
                nxt = successor
            hops.append(nxt)
            current = nxt
        return LookupResult(key_id=key_id, node=target, hops=hops)

    # -- storage --------------------------------------------------------------------
    def put(self, key: str, value, start: Optional[ChordNode] = None) -> LookupResult:
        result = self.lookup(key, start)
        for replica in self.replicas_for(result.key_id):
            replica.store(key, value)
        return result

    def get(self, key: str, start: Optional[ChordNode] = None) -> Tuple[Set, LookupResult]:
        result = self.lookup(key, start)
        values = result.node.retrieve(key)
        if not values:
            # Fall back to replicas (the primary may have just joined or failed).
            for replica in self.replicas_for(result.key_id):
                values = replica.retrieve(key)
                if values:
                    break
        return values, result

    def delete(self, key: str, value=None,
               start: Optional[ChordNode] = None) -> LookupResult:
        result = self.lookup(key, start)
        for replica in self.replicas_for(result.key_id):
            replica.remove(key, value)
        return result

    # -- maintenance -------------------------------------------------------------------
    def _migrate_keys_to(self, node: ChordNode) -> None:
        """Move keys the new node is now responsible for from its successor."""
        successor = self.successor_of_node(node)
        if successor is None:
            return
        to_move = [
            key for key in successor.storage
            if self.successor_of(chord_hash(key, self.bits)) is node
        ]
        for key in to_move:
            for value in successor.retrieve(key):
                node.store(key, value)
        # The old holder keeps its copy as a replica; replication repair below
        # keeps the invariant tight.
        self._restore_replication()

    def _restore_replication(self) -> None:
        """Ensure every key is present on its current replica set."""
        if not self.nodes:
            return
        all_items: List[Tuple[str, object]] = []
        for node in self.nodes:
            for key, values in node.storage.items():
                for value in values:
                    all_items.append((key, value))
        for key, value in all_items:
            for replica in self.replicas_for(chord_hash(key, self.bits)):
                replica.store(key, value)

    # -- introspection -----------------------------------------------------------------
    def total_keys(self) -> int:
        seen = set()
        for node in self.nodes:
            for key in node.storage:
                seen.add(key)
        return len(seen)

    def load_distribution(self) -> Dict[str, int]:
        return {node.name: node.key_count for node in self.nodes}
