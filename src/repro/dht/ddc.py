"""Distributed Data Catalog (DDC) over the DHT (paper §3.4.1).

Replica locations held by volatile reservoir nodes are not centrally managed
by the Data Catalog; instead, every data creation or transfer completion on a
volatile node inserts a ``(data identifier, host identifier)`` pair into the
DHT.  The DDC also exposes the generic key/value publish interface the paper
mentions ("the API also gives the programmer the possibility to publish any
key/value pairs").

Cost model (what Table 3 measures): one publish is an iterative DHT lookup
(per-hop network latency plus per-node service time, the node's request
queue being served one request at a time) followed by an atomic registration
performed in ``registration_rounds`` message rounds on the responsible
replica set — DKS uses an atomic commit for its local operations, which is
why publishing to the DDC is roughly an order of magnitude slower than a
single call to the centralized catalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.sim.kernel import Environment
from repro.sim.resources import Resource
from repro.dht.chord import ChordNode, ChordRing, LookupResult

__all__ = ["DistributedDataCatalog"]


class DistributedDataCatalog:
    """Publish/search of replica locations through a DHT ring.

    The measured subject of Table 3 (§4.2): publish rate through the DHT
    versus the centralized Data Catalog — the DDC trades per-operation
    latency (multi-hop routing + atomic registration rounds) for keeping
    volatile-replica indexing load off the stable services (§3.4.1).
    """

    def __init__(
        self,
        env: Environment,
        ring: Optional[ChordRing] = None,
        per_hop_latency_s: float = 0.002,
        node_service_s: float = 0.010,
        registration_rounds: int = 2,
    ):
        self.env = env
        self.ring = ring if ring is not None else ChordRing()
        self.per_hop_latency_s = float(per_hop_latency_s)
        self.node_service_s = float(node_service_s)
        self.registration_rounds = int(registration_rounds)
        #: one service queue per DHT node: requests are served one at a time
        self._queues: Dict[str, Resource] = {}
        #: statistics
        self.publish_count = 0
        self.search_count = 0
        self.total_hops = 0

    # -- membership -------------------------------------------------------------
    def join(self, host_name: str) -> ChordNode:
        """Attach a host to the DDC (it becomes a DHT node)."""
        node = self.ring.join(host_name)
        self._queues[host_name] = Resource(self.env, capacity=1)
        return node

    def leave(self, host_name: str) -> None:
        self.ring.leave(host_name)
        self._queues.pop(host_name, None)

    def fail(self, host_name: str) -> None:
        self.ring.fail(host_name)
        self._queues.pop(host_name, None)

    def node_of(self, host_name: str) -> ChordNode:
        return self.ring.get_node(host_name)

    # -- cost helpers ---------------------------------------------------------------
    def _visit(self, node: ChordNode):
        """Generator: one request served by *node* (queueing + service time)."""
        queue = self._queues.get(node.name)
        if queue is None:
            queue = Resource(self.env, capacity=1)
            self._queues[node.name] = queue
        with queue.request() as req:
            yield req
            yield self.env.timeout(self.node_service_s)

    def _route(self, result: LookupResult):
        """Generator: charge the latency and service time of a lookup route."""
        for hop in result.hops:
            yield self.env.timeout(self.per_hop_latency_s)
            yield from self._visit(hop)
        self.total_hops += result.hop_count

    # -- the DDC operations ------------------------------------------------------------
    def publish(self, data_id: str, host_id: str,
                origin: Optional[str] = None):
        """Generator: insert the (data_id, host_id) pair into the DHT."""
        return self.publish_pair(f"data:{data_id}", host_id, origin=origin)

    def publish_pair(self, key: str, value, origin: Optional[str] = None):
        """Generator: generic key/value publish (paper §3.3, last paragraph)."""
        start = self._start_node(origin)
        result = self.ring.lookup(key, start)
        yield from self._route(result)
        # Atomic registration on the replica set (DKS-style commit rounds).
        replicas = self.ring.replicas_for(result.key_id)
        for _round in range(self.registration_rounds):
            for replica in replicas:
                yield self.env.timeout(self.per_hop_latency_s)
                yield from self._visit(replica)
        for replica in replicas:
            replica.store(key, value)
        self.publish_count += 1
        return result

    def search(self, data_id: str, origin: Optional[str] = None):
        """Generator: return the set of host identifiers owning *data_id*."""
        values = yield from self.search_pair(f"data:{data_id}", origin=origin)
        return values

    def search_pair(self, key: str, origin: Optional[str] = None):
        """Generator: generic key/value search."""
        start = self._start_node(origin)
        values, result = self.ring.get(key, start)
        yield from self._route(result)
        yield from self._visit(result.node)
        self.search_count += 1
        return values

    def unpublish(self, data_id: str, host_id: str,
                  origin: Optional[str] = None):
        """Generator: remove a replica location (host left or data deleted)."""
        key = f"data:{data_id}"
        start = self._start_node(origin)
        result = self.ring.lookup(key, start)
        yield from self._route(result)
        self.ring.delete(key, host_id, start)
        return result

    # -- synchronous views (no simulated cost; used by tests and reports) -----------------
    def owners(self, data_id: str) -> Set[str]:
        values, _ = self.ring.get(f"data:{data_id}")
        return set(values)

    def _start_node(self, origin: Optional[str]) -> Optional[ChordNode]:
        if origin is None:
            return None
        try:
            return self.ring.get_node(origin)
        except KeyError:
            return None

    @property
    def size(self) -> int:
        return len(self.ring)
