"""Property-based tests of the federation policy layer.

Two tiers:

* **Pure policy** (200+ examples each): random trust policies and
  visibility assignments against :mod:`repro.federation.policy`.  The
  admissibility functions are re-derived from first principles inside the
  test and must agree with the production functions on every input; the
  structural properties (private never leaves, allowlists exclude
  non-members, listing implies fetchability, export implies listing) are
  checked independently so a bug in both derivations would still trip.

* **Simulation-backed** (smaller example budget — each example builds a
  real multi-domain :class:`~repro.federation.deployment.Federation`):
  federated search returns *exactly* the policy-admissible set, and
  scheduled replication places copies in *exactly* the domains
  :func:`~repro.federation.policy.may_export` admits — pinned data never
  leaves home, whatever the random peer graph and policies say.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.attributes import VISIBILITIES, Attribute
from repro.federation.deployment import DomainSpec, Federation
from repro.federation.policy import (PRIVATE, PUBLIC, UNLISTED, TrustPolicy,
                                     may_export, may_fetch, may_list)
from repro.storage.filesystem import FileContent

DOMAINS = ("d0", "d1", "d2", "d3")

visibilities = st.sampled_from(VISIBILITIES)
domain_names = st.sampled_from(DOMAINS)


@st.composite
def trust_policies(draw):
    if draw(st.booleans()):
        return TrustPolicy.open_()
    peers = draw(st.frozensets(domain_names, max_size=len(DOMAINS)))
    return TrustPolicy.allowlist(peers)


# ---------------------------------------------------------------------------
# pure policy tier
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(visibility=visibilities, caller=domain_names, home=domain_names,
       trust=trust_policies())
def test_policy_matches_first_principles(visibility, caller, home, trust):
    admitted = trust.kind == "open" or caller in trust.peers
    expect_list = caller == home or (admitted and visibility == PUBLIC)
    expect_fetch = caller == home or (admitted
                                      and visibility in (PUBLIC, UNLISTED))
    assert may_list(visibility, caller, home, trust) == expect_list
    assert may_fetch(visibility, caller, home, trust) == expect_fetch


@settings(max_examples=200, deadline=None)
@given(visibility=visibilities, target=domain_names, home=domain_names,
       home_trust=trust_policies(), target_trust=trust_policies())
def test_export_matches_first_principles(visibility, target, home,
                                         home_trust, target_trust):
    expect = (target == home
              or (home_trust.admits(target) and target_trust.admits(home)
                  and visibility == PUBLIC))
    assert may_export(visibility, target, home, home_trust,
                      target_trust) == expect


@settings(max_examples=200, deadline=None)
@given(caller=domain_names, home=domain_names, trust=trust_policies(),
       target_trust=trust_policies())
def test_policy_structure(caller, home, trust, target_trust):
    # Private data is invisible cross-domain under EVERY policy.
    if caller != home:
        assert not may_list(PRIVATE, caller, home, trust)
        assert not may_fetch(PRIVATE, caller, home, trust)
        assert not may_export(PRIVATE, caller, home, trust, target_trust)
        # Unlisted is reachable by reference but never listed or exported.
        assert not may_list(UNLISTED, caller, home, trust)
        assert not may_export(UNLISTED, caller, home, trust, target_trust)
    # The home domain is always fully admitted to its own data.
    for visibility in VISIBILITIES:
        assert may_list(visibility, home, home, trust)
        assert may_fetch(visibility, home, home, trust)
    # Listing is the strictest read: whatever is listed is fetchable.
    for visibility in VISIBILITIES:
        if may_list(visibility, caller, home, trust):
            assert may_fetch(visibility, caller, home, trust)
    # An export target could also have found the datum by searching.
    for visibility in VISIBILITIES:
        if may_export(visibility, caller, home, trust, target_trust):
            assert may_list(visibility, caller, home, trust)


@settings(max_examples=200, deadline=None)
@given(caller=domain_names, trust=trust_policies())
def test_allowlist_excludes_non_members(caller, trust):
    if trust.kind == "allowlist" and caller not in trust.peers:
        for visibility in VISIBILITIES:
            assert not may_list(visibility, caller, "home", trust)
            assert not may_fetch(visibility, caller, "home", trust)


# ---------------------------------------------------------------------------
# simulation-backed tier
# ---------------------------------------------------------------------------

@st.composite
def federation_cases(draw):
    n_domains = draw(st.integers(min_value=2, max_value=3))
    names = DOMAINS[:n_domains]
    trusts = {}
    for name in names:
        if draw(st.booleans()):
            trusts[name] = ("open", ())
        else:
            peers = draw(st.frozensets(
                st.sampled_from([n for n in names if n != name]),
                max_size=n_domains - 1))
            trusts[name] = ("allowlist", tuple(sorted(peers)))
    n_data = draw(st.integers(min_value=1, max_value=5))
    data = [(draw(st.sampled_from(names)), draw(visibilities))
            for _ in range(n_data)]
    return names, trusts, data


def _build(names, trusts, data):
    federation = Federation(
        [DomainSpec(name, n_workers=0, trust=trusts[name][0],
                    trust_peers=trusts[name][1], seed=index)
         for index, name in enumerate(names)],
        wan_latency_s=0.01, wan_bandwidth_mbps=100.0)
    federation.peer_all()
    published = []
    for index, (home, visibility) in enumerate(data):
        content = FileContent.from_seed(f"prop-{index:03d}", 0.01)
        datum = federation.domain(home).publish(content, Attribute(
            name=f"prop-{index:03d}", replica=-1, protocol="http",
            visibility=visibility))
        published.append((datum, home, visibility))
    return federation, published


@settings(max_examples=25, deadline=None)
@given(case=federation_cases())
def test_federated_search_is_exactly_the_admissible_set(case):
    names, trusts, data = case
    federation, published = _build(names, trusts, data)
    env = federation.env
    for caller in names:
        gateway = federation.domain(caller).gateway
        rows, unreachable = env.run(env.process(gateway.federated_search()))
        assert unreachable == []
        got = {row["uid"] for row in rows}
        expect = set()
        for datum, home, visibility in published:
            trust = federation.domain(home).trust
            if may_list(visibility, caller, home, trust):
                expect.add(datum.uid)
        assert got == expect, (
            f"caller {caller}: search returned {got}, policy admits "
            f"{expect} (trusts={trusts}, data={data})")


@settings(max_examples=25, deadline=None)
@given(case=federation_cases())
def test_replication_places_exactly_the_exportable_set(case):
    names, trusts, data = case
    federation, published = _build(names, trusts, data)
    env = federation.env
    for name in names:
        replicator = federation.domain(name).start_replicator(period_s=0.1)
        drained = env.run(env.process(replicator.run_until_drained()))
        assert drained is True
    for datum, home, visibility in published:
        home_trust = federation.domain(home).trust
        expect = {home}
        for target in names:
            if target == home:
                continue
            target_trust = federation.domain(target).trust
            if may_export(visibility, target, home, home_trust,
                          target_trust):
                expect.add(target)
        assert set(federation.holders_of(datum.uid)) == expect, (
            f"datum {datum.uid} (home {home}, {visibility}): holders "
            f"{federation.holders_of(datum.uid)}, policy admits {expect}")
    assert federation.private_leaks() == []
