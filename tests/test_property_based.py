"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import Attribute, parse_attribute
from repro.core.data import Data
from repro.dht.chord import ChordRing, chord_hash
from repro.net.flows import Network
from repro.net.host import Host
from repro.services.data_scheduler import DataSchedulerService
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent, LocalFileSystem, StorageFullError

common_settings = settings(max_examples=40, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Attribute grammar round trip
# ---------------------------------------------------------------------------

attribute_strategy = st.builds(
    Attribute,
    name=st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True),
    replica=st.one_of(st.just(-1), st.integers(min_value=1, max_value=50)),
    fault_tolerance=st.booleans(),
    absolute_lifetime=st.one_of(st.none(),
                                st.floats(min_value=1.0, max_value=1e6,
                                          allow_nan=False, allow_infinity=False)),
    relative_lifetime=st.one_of(st.none(), st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,8}",
                                                         fullmatch=True)),
    affinity=st.one_of(st.none(), st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,8}",
                                                fullmatch=True)),
    protocol=st.sampled_from(["http", "ftp", "bittorrent"]),
)


@common_settings
@given(attribute_strategy)
def test_attribute_describe_parse_round_trip(attribute):
    """describe() always produces a definition parse_attribute() accepts,
    and parsing preserves every field."""
    parsed = parse_attribute(attribute.describe())
    assert parsed.name == attribute.name
    assert parsed.replica == attribute.replica
    assert parsed.fault_tolerance == attribute.fault_tolerance
    if attribute.absolute_lifetime is None:
        assert parsed.absolute_lifetime is None
    else:
        assert math.isclose(parsed.absolute_lifetime, attribute.absolute_lifetime,
                            rel_tol=1e-9)
    assert parsed.relative_lifetime == attribute.relative_lifetime
    assert parsed.affinity == attribute.affinity
    assert parsed.protocol == attribute.protocol


# ---------------------------------------------------------------------------
# Chord ring invariants
# ---------------------------------------------------------------------------

@common_settings
@given(
    n_nodes=st.integers(min_value=1, max_value=24),
    keys=st.lists(st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=12),
                  min_size=1, max_size=40, unique=True),
)
def test_chord_every_key_is_retrievable_and_replicated(n_nodes, keys):
    ring = ChordRing(replication=2)
    for i in range(n_nodes):
        ring.join(f"node-{i:03d}")
    for key in keys:
        ring.put(key, f"value-of-{key}")
    for key in keys:
        values, result = ring.get(key)
        assert f"value-of-{key}" in values
        # The lookup terminates on the node responsible for the key.
        assert result.node is ring.successor_of(chord_hash(key, ring.bits))
        # The key is present on min(replication, n_nodes) distinct nodes.
        holders = [n for n in ring.nodes if key in n.storage]
        assert len(holders) >= min(2, n_nodes)


@common_settings
@given(
    n_nodes=st.integers(min_value=3, max_value=20),
    fail_index=st.integers(min_value=0, max_value=19),
    keys=st.lists(st.text(alphabet="abcdef", min_size=1, max_size=8),
                  min_size=1, max_size=25, unique=True),
)
def test_chord_single_failure_never_loses_keys(n_nodes, fail_index, keys):
    ring = ChordRing(replication=2)
    for i in range(n_nodes):
        ring.join(f"node-{i:03d}")
    for key in keys:
        ring.put(key, key.upper())
    ring.fail(f"node-{fail_index % n_nodes:03d}")
    for key in keys:
        values, _ = ring.get(key)
        assert key.upper() in values


# ---------------------------------------------------------------------------
# Max-min fairness invariants
# ---------------------------------------------------------------------------

@common_settings
@given(
    uplink=st.floats(min_value=1.0, max_value=1000.0),
    downlinks=st.lists(st.floats(min_value=1.0, max_value=1000.0),
                       min_size=1, max_size=12),
)
def test_maxmin_allocation_respects_capacities(uplink, downlinks):
    env = Environment()
    network = Network(env, default_latency_s=0.0)
    server = network.add_host(Host("server", uplink_mbps=uplink,
                                   downlink_mbps=uplink))
    flows = []
    for i, down in enumerate(downlinks):
        worker = network.add_host(Host(f"w{i}", uplink_mbps=down, downlink_mbps=down))
        flows.append(network.transfer(server, worker, 10_000.0))
    env.run(until=0.001)  # let the latency-delayed flows activate
    active = network.active_flows
    assert len(active) == len(downlinks)
    total = sum(f.rate_mbps for f in active)
    # Feasibility: no constraint is exceeded.
    assert total <= uplink * (1 + 1e-9)
    for flow, down in zip(active, downlinks):
        assert flow.rate_mbps <= down * (1 + 1e-9)
    # Work conservation: either the uplink is saturated or every flow is
    # limited by its own downlink.
    saturated = math.isclose(total, uplink, rel_tol=1e-6)
    all_down_limited = all(
        math.isclose(f.rate_mbps, d, rel_tol=1e-6) or f.rate_mbps < d
        for f, d in zip(active, downlinks))
    assert saturated or all(
        math.isclose(f.rate_mbps, d, rel_tol=1e-6) for f, d in zip(active, downlinks))
    # Max-min fairness: a flow below its downlink capacity gets at least as
    # much as any other flow (no one is starved in favour of a luckier flow).
    unconstrained = [f.rate_mbps for f, d in zip(active, downlinks)
                     if f.rate_mbps < d * (1 - 1e-6)]
    if unconstrained:
        assert max(active, key=lambda f: f.rate_mbps).rate_mbps <= \
            min(unconstrained) * (1 + 1e-6) or saturated


@common_settings
@given(
    sizes=st.lists(st.floats(min_value=0.5, max_value=200.0), min_size=1,
                   max_size=8),
)
def test_all_flows_eventually_deliver_their_volume(sizes):
    env = Environment()
    network = Network(env, default_latency_s=0.0)
    server = network.add_host(Host("server", uplink_mbps=100, downlink_mbps=100))
    flows = []
    for i, size in enumerate(sizes):
        worker = network.add_host(Host(f"w{i}", uplink_mbps=50, downlink_mbps=50))
        flows.append(network.transfer(server, worker, size))
    env.run(until=env.all_of([f.done for f in flows]))
    for flow, size in zip(flows, sizes):
        assert flow.remaining_mb == 0.0
        assert flow.transferred_mb == size
    assert math.isclose(network.total_mb_delivered, sum(sizes), rel_tol=1e-9)


# ---------------------------------------------------------------------------
# Allocator equivalence oracle
# ---------------------------------------------------------------------------

host_spec_strategy = st.lists(
    st.tuples(st.floats(min_value=1.0, max_value=500.0),
              st.floats(min_value=1.0, max_value=500.0)),
    min_size=2, max_size=6)

flow_op_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),          # delay before the op
        st.sampled_from(["start", "start", "start", "abort", "fail"]),
        st.integers(min_value=0, max_value=5),            # src / victim pick
        st.integers(min_value=0, max_value=5),            # dst pick
        st.floats(min_value=0.5, max_value=50.0),         # size_mb
    ),
    min_size=1, max_size=14)


def _replay_schedule(allocator, coalesce, host_specs, ops, probe_times):
    """Run one random arrival/departure/failure schedule on one allocator."""
    env = Environment()
    network = Network(env, default_latency_s=0.001,
                      allocator=allocator, coalesce=coalesce)
    hosts = [network.add_host(Host(f"h{i}", uplink_mbps=up, downlink_mbps=down))
             for i, (up, down) in enumerate(host_specs)]
    flows = []

    def driver():
        for delay, kind, a, b, size in ops:
            yield env.timeout(delay)
            if kind == "start":
                src = hosts[a % len(hosts)]
                dst = hosts[b % len(hosts)]
                if src is not dst and src.online and dst.online:
                    flows.append(network.transfer(src, dst, size))
            elif kind == "abort":
                if flows:
                    network.abort(flows[a % len(flows)])
            else:  # fail — never kill host 0 so some flows can still run
                victim = hosts[1 + a % (len(hosts) - 1)]
                victim.fail()

    env.process(driver())
    rate_probes = []
    for t in probe_times:
        env.run(until=t)
        rate_probes.append(tuple(flow.rate_mbps for flow in flows))
    env.run()
    outcome = [
        (flow.done.ok if flow.done.triggered else None,
         flow.end_time, flow.transferred_mb)
        for flow in flows
    ]
    stats = (network.completed_flows, network.failed_flows,
             network.total_mb_delivered)
    return outcome, rate_probes, stats


@common_settings
@given(host_specs=host_spec_strategy, ops=flow_op_strategy)
def test_incremental_allocator_matches_dense_oracle(host_specs, ops):
    """Random flow arrival/departure/failure schedules produce identical
    rates and completion times on the dense (reference) allocator and the
    coalesced incremental one."""
    probe_times = [0.5, 1.5, 3.0, 6.0]
    dense = _replay_schedule("dense", False, host_specs, ops, probe_times)
    incremental = _replay_schedule("incremental", True, host_specs, ops,
                                   probe_times)
    assert incremental[0] == dense[0]     # outcome, end time, volume
    assert incremental[1] == dense[1]     # allocated rates at probe times
    assert incremental[2] == dense[2]     # network-level statistics


# ---------------------------------------------------------------------------
# Scheduler (Algorithm 1) invariants
# ---------------------------------------------------------------------------

@common_settings
@given(
    replicas=st.lists(st.one_of(st.just(-1), st.integers(min_value=1, max_value=6)),
                      min_size=1, max_size=12),
    n_hosts=st.integers(min_value=1, max_value=10),
    max_schedule=st.integers(min_value=1, max_value=8),
)
def test_scheduler_never_exceeds_replica_targets(replicas, n_hosts, max_schedule):
    env = Environment()
    scheduler = DataSchedulerService(env, max_data_schedule=max_schedule)
    datas = []
    for i, replica in enumerate(replicas):
        data = Data(name=f"d{i}")
        scheduler.schedule(data, Attribute(name=f"a{i}", replica=replica))
        datas.append((data, replica))

    caches = {f"h{j}": set() for j in range(n_hosts)}
    # Enough synchronisation rounds for every host to receive everything it is
    # entitled to, even with max_data_schedule = 1.
    for _round in range(len(replicas) + 2):
        for host, cache in caches.items():
            result = scheduler.compute_schedule(host, set(cache))
            assert len(result.to_download) <= max_schedule
            cache.difference_update(result.to_delete)
            cache.update(d.uid for d, _ in result.assigned)

    for data, replica in datas:
        owners = scheduler.owners_of(data.uid)
        assert len(owners) <= n_hosts
        if replica == -1:
            assert len(owners) == n_hosts
        else:
            assert len(owners) <= replica
    # Every owner recorded by the scheduler actually holds the datum.
    for data, _ in datas:
        for owner in scheduler.owners_of(data.uid):
            assert data.uid in caches[owner]


# ---------------------------------------------------------------------------
# Local file system capacity invariant
# ---------------------------------------------------------------------------

@common_settings
@given(
    capacity=st.floats(min_value=1.0, max_value=500.0),
    sizes=st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                   max_size=30),
)
def test_filesystem_never_exceeds_capacity(capacity, sizes):
    fs = LocalFileSystem(capacity_mb=capacity)
    stored = 0
    for i, size in enumerate(sizes):
        try:
            fs.write(f"file-{i}", FileContent.from_seed(f"file-{i}", size))
            stored += 1
        except StorageFullError:
            pass
        assert fs.used_mb <= capacity + 1e-9
    assert len(fs) == stored
    fs.purge()
    assert fs.used_mb == 0.0
