"""Unit tests for topology builders and the RPC layer."""

import pytest

from repro.net.rpc import ChannelKind, RpcChannel, RpcEndpoint, RpcError, channel_for
from repro.net.topology import (
    GRID5000_CLUSTERS,
    cluster_topology,
    dsl_lab_topology,
    grid5000_testbed,
)
from repro.sim.rng import RandomStreams


class TestClusterTopology:
    def test_basic_structure(self, env):
        topo = cluster_topology(env, n_workers=5)
        assert topo.service_host.stable
        assert len(topo.worker_hosts) == 5
        assert len(topo.all_hosts) == 6
        assert all(not w.stable for w in topo.worker_hosts)
        assert all(w.cluster == "gdx" for w in topo.worker_hosts)

    def test_negative_workers_rejected(self, env):
        with pytest.raises(ValueError):
            cluster_topology(env, n_workers=-1)

    def test_zero_workers_allowed(self, env):
        topo = cluster_topology(env, n_workers=0)
        assert topo.worker_hosts == []

    def test_workers_in_cluster(self, env):
        topo = cluster_topology(env, n_workers=3, cluster="grelon")
        assert len(topo.workers_in_cluster("grelon")) == 3
        assert topo.workers_in_cluster("gdx") == []


class TestGrid5000Testbed:
    def test_table1_cluster_catalogue(self):
        assert set(GRID5000_CLUSTERS) == {"gdx", "grelon", "grillon", "sagittaire"}
        assert GRID5000_CLUSTERS["gdx"]["cpus"] == 312
        assert GRID5000_CLUSTERS["grelon"]["cpus"] == 120
        assert GRID5000_CLUSTERS["grillon"]["cpus"] == 47
        assert GRID5000_CLUSTERS["sagittaire"]["cpus"] == 65
        assert GRID5000_CLUSTERS["gdx"]["location"] == "Orsay"
        assert GRID5000_CLUSTERS["sagittaire"]["location"] == "Lyon"

    def test_default_node_split_proportional(self, env):
        topo = grid5000_testbed(env, total_nodes=400)
        counts = {name: len(topo.workers_in_cluster(name))
                  for name in GRID5000_CLUSTERS}
        assert sum(counts.values()) == pytest.approx(400, abs=4)
        # gdx is the biggest cluster and must get the largest share.
        assert counts["gdx"] == max(counts.values())
        assert counts["grillon"] == min(counts.values())

    def test_explicit_node_split(self, env):
        topo = grid5000_testbed(env, nodes_per_cluster={"gdx": 3, "sagittaire": 2})
        assert len(topo.worker_hosts) == 5

    def test_unknown_cluster_rejected(self, env):
        with pytest.raises(ValueError):
            grid5000_testbed(env, nodes_per_cluster={"nonexistent": 2})

    def test_cpu_factors_follow_table1(self, env):
        topo = grid5000_testbed(env, nodes_per_cluster={name: 1 for name in GRID5000_CLUSTERS})
        by_cluster = {h.cluster: h for h in topo.worker_hosts}
        assert by_cluster["sagittaire"].cpu_factor > by_cluster["grelon"].cpu_factor


class TestDslLab:
    def test_structure_and_asymmetry(self, env):
        topo = dsl_lab_topology(env, n_workers=12, rng=RandomStreams(5))
        assert len(topo.worker_hosts) == 12
        for host in topo.worker_hosts:
            assert host.uplink_mbps < host.downlink_mbps
            assert 0.05 <= host.downlink_mbps <= 0.50
            assert host.cpu_factor < 1.0
            assert host.disk_mb == pytest.approx(2048.0)

    def test_heterogeneous_bandwidths(self, env):
        topo = dsl_lab_topology(env, n_workers=12, rng=RandomStreams(5))
        downs = {round(h.downlink_mbps, 4) for h in topo.worker_hosts}
        assert len(downs) > 6  # lines differ from each other

    def test_reproducible_under_seed(self, env):
        t1 = dsl_lab_topology(env, rng=RandomStreams(9))
        from repro.sim.kernel import Environment
        t2 = dsl_lab_topology(Environment(), rng=RandomStreams(9))
        assert [h.downlink_mbps for h in t1.worker_hosts] == \
               [h.downlink_mbps for h in t2.worker_hosts]


class _EchoService:
    def __init__(self):
        self.calls = 0

    def echo(self, value):
        self.calls += 1
        return value

    def fail(self):
        raise ValueError("service-side error")

    def generator_method(self, env, value):
        yield env.timeout(0.5)
        return value * 2


class TestRpcChannel:
    def test_local_channel_has_no_latency(self, env, drive):
        service = _EchoService()
        channel = RpcChannel(env, ChannelKind.LOCAL)
        endpoint = RpcEndpoint(service)
        result = drive(env, channel.invoke(endpoint, "echo", 42))
        assert result == 42
        assert env.now == 0.0

    def test_remote_channel_charges_round_trip(self, env, drive):
        service = _EchoService()
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        endpoint = RpcEndpoint(service)
        drive(env, channel.invoke(endpoint, "echo", 1))
        assert env.now == pytest.approx(channel.call_cost(1.0), rel=1e-6)
        assert channel.calls == 1

    def test_rmi_local_cheaper_than_remote(self, env):
        local = RpcChannel(env, ChannelKind.RMI_LOCAL)
        remote = RpcChannel(env, ChannelKind.RMI_REMOTE)
        assert local.call_cost() < remote.call_cost()

    def test_payload_size_increases_cost(self, env):
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        assert channel.call_cost(100) > channel.call_cost(1)

    def test_generator_methods_run_as_subprocesses(self, env, drive):
        service = _EchoService()
        channel = RpcChannel(env, ChannelKind.LOCAL)
        endpoint = RpcEndpoint(service)
        result = drive(env, channel.invoke(endpoint, "generator_method", env, 21))
        assert result == 42
        assert env.now == pytest.approx(0.5)

    def test_service_exception_propagates(self, env):
        service = _EchoService()
        channel = RpcChannel(env, ChannelKind.LOCAL)
        endpoint = RpcEndpoint(service)
        process = env.process(channel.invoke(endpoint, "fail"))
        with pytest.raises(ValueError, match="service-side error"):
            env.run(until=process)

    def test_offline_host_raises_rpc_error(self, env, simple_network, drive):
        _, server, _ = simple_network
        service = _EchoService()
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        endpoint = RpcEndpoint(service, host=server)
        server.fail()
        process = env.process(channel.invoke(endpoint, "echo", 1))
        with pytest.raises(RpcError):
            env.run(until=process)

    def test_channel_for_factory(self, env):
        assert channel_for(env, ChannelKind.LOCAL).kind is ChannelKind.LOCAL

    def test_endpoint_label(self):
        service = _EchoService()
        assert RpcEndpoint(service).label() == "_EchoService"
        assert RpcEndpoint(service, name="DC").label() == "DC"
