"""Unit tests for the Chord ring and the Distributed Data Catalog."""

import pytest

from repro.dht.chord import ChordRing, chord_hash
from repro.dht.ddc import DistributedDataCatalog


def build_ring(n=8, replication=2):
    ring = ChordRing(replication=replication)
    for i in range(n):
        ring.join(f"node{i:02d}")
    return ring


class TestChordHash:
    def test_deterministic(self):
        assert chord_hash("abc") == chord_hash("abc")

    def test_within_ring(self):
        for i in range(100):
            assert 0 <= chord_hash(f"key{i}", bits=16) < (1 << 16)


class TestRingMembership:
    def test_join_and_len(self):
        ring = build_ring(5)
        assert len(ring) == 5
        assert len(ring.nodes) == 5

    def test_double_join_rejected(self):
        ring = build_ring(3)
        with pytest.raises(ValueError):
            ring.join("node00")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChordRing(bits=4)
        with pytest.raises(ValueError):
            ChordRing(replication=0)

    def test_nodes_sorted_by_id(self):
        ring = build_ring(10)
        ids = [n.node_id for n in ring.nodes]
        assert ids == sorted(ids)

    def test_ring_structure_invariants(self):
        ring = build_ring(10)
        nodes = ring.nodes
        for i, node in enumerate(nodes):
            assert node.predecessor is nodes[i - 1]
            assert node.successors[0] is nodes[(i + 1) % len(nodes)]
            assert len(node.fingers) == ring.bits

    def test_leave_hands_over_keys(self):
        ring = build_ring(6)
        for i in range(50):
            ring.put(f"key{i}", f"value{i}")
        total_before = ring.total_keys()
        ring.leave("node03")
        assert len(ring) == 5
        assert ring.total_keys() == total_before
        for i in range(50):
            values, _ = ring.get(f"key{i}")
            assert f"value{i}" in values

    def test_fail_keeps_keys_through_replication(self):
        ring = build_ring(8, replication=3)
        for i in range(60):
            ring.put(f"key{i}", f"value{i}")
        ring.fail("node05")
        for i in range(60):
            values, _ = ring.get(f"key{i}")
            assert f"value{i}" in values, f"key{i} lost after node failure"

    def test_fail_unknown_node_is_noop(self):
        ring = build_ring(3)
        ring.fail("nonexistent")
        assert len(ring) == 3


class TestLookupAndStorage:
    def test_lookup_reaches_responsible_node(self):
        ring = build_ring(16)
        for i in range(100):
            result = ring.lookup(f"key{i}")
            expected = ring.successor_of(chord_hash(f"key{i}", ring.bits))
            assert result.node is expected

    def test_lookup_hop_count_reasonable(self):
        ring = build_ring(32)
        max_hops = max(ring.lookup(f"key{i}").hop_count for i in range(200))
        # Chord guarantees O(log n); allow generous slack on a 32-node ring.
        assert max_hops <= 12

    def test_lookup_from_specific_start(self):
        ring = build_ring(16)
        start = ring.get_node("node07")
        result = ring.lookup("some-key", start=start)
        assert result.node is ring.successor_of(chord_hash("some-key", ring.bits))

    def test_put_get_delete(self):
        ring = build_ring(8)
        ring.put("shared", "a")
        ring.put("shared", "b")
        values, _ = ring.get("shared")
        assert values == {"a", "b"}
        ring.delete("shared", "a")
        values, _ = ring.get("shared")
        assert values == {"b"}
        ring.delete("shared")
        values, _ = ring.get("shared")
        assert values == set()

    def test_replication_factor_respected(self):
        ring = build_ring(8, replication=3)
        ring.put("replicated-key", "v")
        holders = [n for n in ring.nodes if "replicated-key" in n.storage]
        assert len(holders) >= 3

    def test_empty_ring_lookup_raises(self):
        ring = ChordRing()
        with pytest.raises(RuntimeError):
            ring.lookup("key")

    def test_keys_distributed_across_nodes(self):
        ring = build_ring(16, replication=1)
        for i in range(400):
            ring.put(f"key{i}", i)
        loads = ring.load_distribution()
        populated = [n for n, count in loads.items() if count > 0]
        assert len(populated) >= 8  # consistent hashing spreads the keys


class TestDistributedDataCatalog:
    def test_publish_and_search(self, env, drive):
        ddc = DistributedDataCatalog(env)
        for i in range(10):
            ddc.join(f"host{i}")
        drive(env, ddc.publish("data-1", "hostA", origin="host0"))
        drive(env, ddc.publish("data-1", "hostB", origin="host3"))
        owners = drive(env, ddc.search("data-1", origin="host5"))
        assert owners == {"hostA", "hostB"}
        assert ddc.owners("data-1") == {"hostA", "hostB"}
        assert ddc.publish_count == 2
        assert ddc.search_count == 1

    def test_publish_costs_time(self, env, drive):
        ddc = DistributedDataCatalog(env)
        for i in range(20):
            ddc.join(f"host{i}")
        drive(env, ddc.publish("data-x", "owner"))
        assert env.now > 0

    def test_unpublish(self, env, drive):
        ddc = DistributedDataCatalog(env)
        for i in range(5):
            ddc.join(f"host{i}")
        drive(env, ddc.publish("d", "h1"))
        drive(env, ddc.publish("d", "h2"))
        drive(env, ddc.unpublish("d", "h1"))
        assert ddc.owners("d") == {"h2"}

    def test_generic_key_value_pairs(self, env, drive):
        ddc = DistributedDataCatalog(env)
        for i in range(5):
            ddc.join(f"host{i}")
        drive(env, ddc.publish_pair("checkpoint:42", "signature-abc"))
        values = drive(env, ddc.search_pair("checkpoint:42"))
        assert values == {"signature-abc"}

    def test_node_failure_preserves_published_pairs(self, env, drive):
        ddc = DistributedDataCatalog(env, ChordRing(replication=3))
        for i in range(10):
            ddc.join(f"host{i}")
        for i in range(30):
            drive(env, ddc.publish(f"data-{i}", f"owner-{i}"))
        ddc.fail("host4")
        for i in range(30):
            assert ddc.owners(f"data-{i}") == {f"owner-{i}"}

    def test_size(self, env):
        ddc = DistributedDataCatalog(env)
        for i in range(4):
            ddc.join(f"host{i}")
        assert ddc.size == 4
        ddc.leave("host2")
        assert ddc.size == 3
